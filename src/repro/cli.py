"""``repro`` command-line interface.

Every major capability is reachable without writing Python::

    repro generate  --platform theta --jobs 4000 --out theta.npz
    repro census    --dataset theta.npz
    repro noise     --dataset theta.npz
    repro taxonomy  --platform theta --jobs 3000
    repro cluster   --dataset theta.npz --clusters 10
    repro export-darshan --dataset theta.npz --out logs/ --limit 100
    repro drift     --dataset theta.npz
    repro serve-bench --models forest gbm --requests 2000
    repro serve-bench --gateway --target-ms 5
    repro serve-bench --gateway --monitor
    repro serve-bench --shards 2 --transport socket
    repro serve-bench --transports
    repro monitor-bench --requests 2000
    repro serve-net --requests 2000 --window 64
    repro serve-net --shards 2 --transport socket
    repro chaos-bench --names 25 --versions-per-name 20 --kills 6
    repro obs --requests 64 --slowest 8
    repro obs-bench --requests 2000 --sample 8

Commands accept either ``--dataset file.npz`` (a saved dataset) or
``--platform/--jobs/--seed`` to simulate one on the fly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.config import preset
from repro.data import Dataset, build_dataset, find_duplicate_sets, temporal_split
from repro.ml.metrics import dex_to_pct
from repro.taxonomy import application_bound, noise_bound
from repro.viz import format_table

__all__ = ["main", "build_parser"]


def _add_source_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", type=Path, default=None, help="saved dataset (.npz)")
    p.add_argument("--platform", default="theta", choices=("theta", "cori"))
    p.add_argument("--jobs", type=int, default=4000, help="jobs to simulate")
    p.add_argument("--seed", type=int, default=2022)


def _load(args: argparse.Namespace) -> Dataset:
    if args.dataset is not None:
        return Dataset.load(args.dataset)
    return build_dataset(preset(args.platform, n_jobs=args.jobs, seed=args.seed))


# ---------------------------------------------------------------------- #
def cmd_generate(args: argparse.Namespace) -> int:
    dataset = build_dataset(preset(args.platform, n_jobs=args.jobs, seed=args.seed))
    dataset.save(args.out)
    print(f"wrote {len(dataset)} {dataset.name} jobs to {args.out}")
    print(f"telemetry frames: {', '.join(dataset.sources)}")
    return 0


def cmd_census(args: argparse.Namespace) -> int:
    dataset = _load(args)
    dups = find_duplicate_sets(dataset.frames["posix"])
    bound = application_bound(dataset.frames["posix"], dataset.y, dups=dups)
    sizes = dups.set_sizes()
    rows = [
        ["jobs", len(dataset)],
        ["duplicate sets", dups.n_sets],
        ["duplicate jobs", dups.n_duplicates],
        ["duplicate fraction", f"{dups.fraction_of(len(dataset)):.1%}"],
        ["largest set", int(sizes.max()) if sizes.size else 0],
        ["application bound (median |err|)", f"{bound.median_abs_pct:.2f}%"],
    ]
    print(format_table(["quantity", "value"], rows,
                       title=f"Duplicate census — {dataset.name} (paper §VI.A)"))
    return 0


def cmd_noise(args: argparse.Namespace) -> int:
    dataset = _load(args)
    dups = find_duplicate_sets(dataset.frames["posix"])
    nb = noise_bound(dataset.y, dups, dataset.start_time)
    rows = [
        ["concurrent duplicate sets", nb.n_concurrent_sets],
        ["sigma (dex)", f"{nb.sigma_dex:.4f}"],
        ["68% band", f"±{nb.band_68_pct:.2f}%"],
        ["95% band", f"±{nb.band_95_pct:.2f}%"],
        ["aleatory floor (median |err|)", f"{nb.median_abs_pct:.2f}%"],
        ["share of Δt=0 sets of size 2", f"{nb.set_size_share_2:.0%}"],
    ]
    print(format_table(["quantity", "value"], rows,
                       title=f"I/O noise bounds — {dataset.name} (paper §IX)"))
    return 0


def cmd_taxonomy(args: argparse.Namespace) -> int:
    from repro.taxonomy import TaxonomyPipeline
    from repro.taxonomy.report import render_breakdown

    dataset = _load(args)
    pipeline = TaxonomyPipeline(
        ensemble_members=args.members, ensemble_epochs=args.epochs, seed=args.seed
    )
    report = pipeline.run(dataset)
    print(render_breakdown(report.breakdown))
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import cluster_workload

    dataset = _load(args)
    rep = cluster_workload(dataset, n_clusters=args.clusters, random_state=args.seed)
    rows = [
        [s.cluster_id, s.n_jobs, s.dominant_family, f"{s.family_purity:.0%}",
         f"{s.median_gib:.1f}", f"{s.median_throughput_mibps:.0f}", f"{s.duplicate_share:.0%}"]
        for s in sorted(rep.summaries, key=lambda s: -s.n_jobs)
    ]
    print(format_table(
        ["cluster", "jobs", "family", "purity", "med GiB", "med MiB/s", "dup share"],
        rows, title=f"Workload clusters — {dataset.name} (Gauge-style)"))
    return 0


def cmd_export_darshan(args: argparse.Namespace) -> int:
    from repro.telemetry.darshan_text import dump_dataset

    dataset = _load(args)
    n = dump_dataset(dataset, args.out, limit=args.limit)
    print(f"wrote {n} darshan-parser text logs to {args.out}/")
    return 0


def cmd_drift(args: argparse.Namespace) -> int:
    from repro.data import feature_matrix
    from repro.stats import DriftMonitor

    dataset = _load(args)
    X, names = feature_matrix(dataset, "posix")
    train, test = temporal_split(dataset.start_time, cutoff_frac=args.cutoff)
    monitor = DriftMonitor().fit(np.log10(1.0 + np.abs(X[train])), names=names)
    report = monitor.score(np.log10(1.0 + np.abs(X[test])))
    rows = [[name, f"{psi:.3f}"] for name, psi in report.worst(args.top)]
    print(format_table(
        ["feature", "PSI"], rows,
        title=(f"Deployment drift — {dataset.name}: {report.n_drifted} of "
               f"{len(names)} features above PSI {report.threshold}")))
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.bench import (
        record_trajectory_entry,
        run_fault_bench,
        run_gateway_bench,
        run_serve_bench,
        run_shard_bench,
        run_transport_bench,
    )

    if args.monitor and (args.shards or args.faults or args.transports):
        print("--monitor applies to gateway mode; drop --shards/--faults/--transports",
              file=sys.stderr)
        return 2

    if args.transports:
        r = run_transport_bench(
            kinds=tuple(args.models),
            n_train=args.train,
            n_trees=args.trees,
            n_requests=args.requests,
            max_batch=args.batch,
            max_delay=args.deadline_ms / 1e3,
            seed=args.seed,
        )
        rows = [
            [t, f"{r[t]['rps']:.0f}", f"{r[t]['p50_ms']:.2f}", f"{r[t]['p99_ms']:.2f}"]
            for t in ("pipe", "socket")
        ]
        st = r["steal"]
        rows += [
            [f"pipe, skew, steal {mode}", f"{st[mode]['rps']:.0f}",
             f"{st[mode]['p50_ms']:.2f}", f"{st[mode]['p99_ms']:.2f}"]
            for mode in ("off", "on")
        ]
        print(format_table(
            ["path", "req/s", "p50 ms", "p99 ms"],
            rows,
            title=(f"Shard transports — {r['n_requests']} Zipf-skewed requests "
                   f"over {len(r['names'])} names x {r['n_shards']} shards: "
                   f"socket/pipe throughput {r['socket_vs_pipe_rps']:.2f}x, "
                   f"{st['on']['steals']} steals rerouted "
                   "(bit-identical on every path)")))
        path = record_trajectory_entry({"transport": r}, args.record_dir)
        print(f"recorded transport entry in {path}")
        return 0

    if args.faults:
        r = run_fault_bench(
            kind=args.models[0],
            n_train=args.train,
            n_trees=args.trees,
            n_requests=args.requests,
            max_batch=args.batch,
            max_delay=args.deadline_ms / 1e3,
            seed=args.seed,
            n_kills=args.kills,
        )
        rows = [
            ["bare cluster", f"{r['bare_rps']:.0f}", "-"],
            ["retry-wrapped", f"{r['wrapped_rps']:.0f}",
             f"{r['overhead_pct']:+.2f}% (gate {r['max_overhead_pct']:.1f}%)"],
        ]
        print(format_table(
            ["path", "req/s", "overhead"], rows,
            title=(f"Fault injection — {r['n_requests']} requests, "
                   f"{r['n_kills']} kills over {r['n_shards']} shards: recovery "
                   f"p50 {r['recovery_p50_ms']:.1f}ms / "
                   f"p99 {r['recovery_p99_ms']:.1f}ms, "
                   f"{r['respawns']} respawns, {r['retries']} retries, "
                   f"{r['failed_fast']} failed fast")))
        path = record_trajectory_entry({"faults": r}, args.record_dir)
        print(f"recorded faults entry in {path}")
        return 0

    if args.shards:
        r = run_shard_bench(
            kinds=tuple(args.models),
            n_train=args.train,
            n_trees=args.trees,
            n_requests=args.requests,
            n_shards=args.shards,
            max_batch=args.batch,
            max_delay=args.deadline_ms / 1e3,
            seed=args.seed,
            transport=args.transport,
        )
        block_total = r["block_repeats"] * r["block_rows"]
        rows = [
            ["stream (hash-routed)", f"{r['direct_rps']:.0f}", f"{r['cluster_rps']:.0f}",
             f"{r['speedup_cluster']:.1f}x", f"{r['mean_latency_ms']:.2f}"],
            [f"block ({r['block_model']}, {r['block_rows']} rows)",
             f"{block_total / r['block_direct_s']:.0f}",
             f"{block_total / r['block_cluster_s']:.0f}",
             f"{r['speedup_block']:.1f}x", "-"],
        ]
        print(format_table(
            ["traffic", "req/s direct", "req/s cluster", "speedup", "latency ms"],
            rows,
            title=(f"Sharded serving — {r['n_requests']} requests over "
                   f"{len(r['models'])} models x {r['n_shards']} shard processes "
                   f"via {r['transport']} transport "
                   f"(per-shard load: {r['per_shard_requests']})")))
        path = record_trajectory_entry({"cluster": r}, args.record_dir)
        print(f"recorded cluster entry in {path}")
        return 0

    if args.gateway or args.monitor:
        r = run_gateway_bench(
            kinds=tuple(args.models),
            n_train=args.train,
            n_trees=args.trees,
            n_requests=args.requests,
            max_batch=args.batch,
            max_delay=args.deadline_ms / 1e3,
            seed=args.seed,
            target_latency_ms=args.target_ms,
            monitor=args.monitor,
        )
        rows = [
            [name, p["requests"], p["batches"], f"{p['mean_batch_rows']:.0f}",
             f"{p['mean_latency_ms']:.2f}", p["final_max_batch"],
             f"{p['final_max_delay_ms']:.2f}"]
            for name, p in sorted(r["per_model"].items())
        ]
        print(format_table(
            ["model", "requests", "batches", "batch rows", "latency ms",
             "tuned batch", "tuned delay ms"],
            rows,
            title=(f"Gateway serving — {r['n_requests']} requests over "
                   f"{len(r['models'])} models: {r['direct_rps']:.0f} -> "
                   f"{r['gateway_rps']:.0f} req/s ({r['speedup_gateway']:.1f}x, "
                   f"target {args.target_ms:.1f}ms)")))
        if args.monitor:
            m = r["monitor"]
            psi = ", ".join(
                f"{name}: PSI {entry.get('max_psi', 0.0):.3f}"
                for name, entry in sorted(m["per_name"].items())
            )
            print(f"monitor plane: {m['alerts']} alerts, "
                  f"{m['tap_errors']} tap errors, windowed {psi} "
                  "(bit-identity gate passed with the plane attached)")
        return 0

    rows = []
    for kind in args.models:
        r = run_serve_bench(
            kind=kind,
            n_train=args.train,
            n_trees=args.trees,
            n_requests=args.requests,
            max_batch=args.batch,
            max_delay=args.deadline_ms / 1e3,
            seed=args.seed,
        )
        rows.append([
            r["model"], r["n_requests"],
            f"{r['unbatched_rps']:.0f}", f"{r['batched_rps']:.0f}",
            f"{r['cached_rps']:.0f}", f"{r['speedup_batched']:.1f}x",
            f"{r['mean_batch_rows']:.0f}", f"{r['cache_hit_rate']:.0%}",
        ])
    print(format_table(
        ["model", "requests", "req/s direct", "req/s batched", "req/s cached",
         "speedup", "batch rows", "hit rate"],
        rows,
        title="Serving throughput — 1-row request stream (micro-batched vs direct)"))
    return 0


def cmd_monitor_bench(args: argparse.Namespace) -> int:
    from repro.serve.bench import record_trajectory_entry, run_monitor_bench

    r = run_monitor_bench(
        kind=args.model,
        n_train=args.train,
        n_trees=args.trees,
        n_requests=args.requests,
        max_batch=args.batch,
        max_delay=args.deadline_ms / 1e3,
        seed=args.seed,
        repeats=args.repeats,
        max_overhead_pct=args.max_overhead,
    )
    rows = [
        ["unmonitored", f"{r['plain_rps']:.0f}", "-"],
        ["monitored", f"{r['monitored_rps']:.0f}",
         f"{r['overhead_pct']:+.2f}% (budget {r['max_overhead_pct']:.1f}%)"],
    ]
    print(format_table(
        ["stream", "req/s", "overhead"],
        rows,
        title=(f"Monitoring plane — {r['n_requests']} requests x "
               f"{r['model']} ({r['n_trees']} trees), best of {r['repeats']}: "
               "bit-identical with the plane attached")))
    drift = "; ".join(f"{e['rule']} -> {e['action']}" for e in r["drift_events"])
    print(f"injected drift (windowed PSI {r['max_psi']:.2f}): {drift}; "
          f"production restored to v{r['rolled_back_to']}")
    path = record_trajectory_entry({"monitor": r}, args.record_dir)
    print(f"recorded monitor entry in {path}")
    return 0


def cmd_serve_net(args: argparse.Namespace) -> int:
    from repro.serve.bench import record_trajectory_entry, run_net_bench

    r = run_net_bench(
        kind=args.model,
        n_train=args.train,
        n_trees=args.trees,
        n_requests=args.requests,
        max_batch=args.batch,
        max_delay=args.deadline_ms / 1e3,
        seed=args.seed,
        window=args.window,
        overload_requests=args.overload_requests,
        overload_in_flight=args.overload_in_flight,
        shards=args.shards,
        transport=args.transport,
    )
    backend = (f"{r['shards']}-shard {r['shard_transport']} cluster"
               if r["shards"] else "gateway")
    rows = [
        [f"in-process {backend}", f"{r['inproc_rps']:.0f}", "-", "-"],
        ["network (pipelined)", f"{r['net_rps']:.0f}",
         f"{r['net_p50_ms']:.2f}", f"{r['net_p99_ms']:.2f}"],
    ]
    print(format_table(
        ["path", "req/s", "p50 ms", "p99 ms"],
        rows,
        title=(f"Network front door ({backend}) — {r['n_requests']} requests "
               f"x {r['model']} ({r['n_trees']} trees), window {r['window']}: "
               "bit-identical across the wire")))
    print(f"overload: {r['served']} served + {r['shed']} shed of "
          f"{r['overload_requests']} burst requests "
          f"(budget {r['overload_in_flight']}, shed rate {r['shed_rate']:.0%}, "
          "every shed a structured OVERLOADED, every served bit-identical)")
    path = record_trajectory_entry({"net": r}, args.record_dir)
    print(f"recorded net entry in {path}")
    return 0


def cmd_chaos_bench(args: argparse.Namespace) -> int:
    from repro.serve.bench import record_trajectory_entry
    from repro.serve.chaos import run_chaos_bench

    r = run_chaos_bench(
        n_names=args.names,
        versions_per_name=args.versions_per_name,
        n_shards=args.shards,
        n_requests=args.requests,
        n_kills=args.kills,
        max_shards=args.max_shards,
        slo_target_ms=args.slo_ms,
        source=args.source,
        seed=args.seed,
    )
    rows = [
        ["client wall", f"{r['p50_ms']:.2f}", f"{r['p99_ms']:.2f}",
         f"{r['p999_ms']:.2f}"],
        ["fleet ring", f"{r['fleet_p50_ms']:.2f}", f"{r['fleet_p99_ms']:.2f}",
         f"{r['fleet_p999_ms']:.2f}"],
    ]
    print(format_table(
        ["latency", "p50 ms", "p99 ms", "p999 ms"],
        rows,
        title=(f"Chaos soak — {r['completed']}/{r['n_requests']} requests over "
               f"{r['n_versions']} versions ({r['n_names']} names) on "
               f"{r['n_shards_initial']}->{r['n_shards_final']} shards, "
               f"{r['source']} traffic: {r['kills']} kills, {r['respawns']} "
               f"respawns, {r['churns']} churns, {r['retries']} retries")))
    print(f"survival: {r['client_errors']} client-visible errors, "
          f"{r['mismatches']} bit-identity mismatches, "
          f"{r['poison_failed_fast']}/{r['poison_sent']} poison failed fast, "
          f"{r['drift_alerts']} drift alerts, autoscaler "
          f"{r['scale_ups']} up / {r['scale_downs']} down / "
          f"{r['scale_failures']} failed")
    path = record_trajectory_entry(
        {"chaos": r}, args.record_dir, filename="BENCH_chaos.json")
    print(f"recorded chaos entry in {path}")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """End-to-end observability demo: trace one wire request through a
    traced edge + sharded cluster, then pull its span dump, the slowest
    spans, and the unified metrics snapshot back over the same wire."""
    from repro.serve.bench import make_serve_model
    from repro.serve.net import AsyncServeServer, ServeClient
    from repro.serve.obs import StructuredLogger, Tracer
    from repro.serve.registry import ModelRegistry
    from repro.serve.shard import ShardedServingCluster

    log = StructuredLogger(stream=sys.stderr if args.log_json else None)
    model = make_serve_model(args.model, args.train, 12, args.trees, args.seed)
    registry = ModelRegistry()
    registry.register(args.model, model, promote=True)
    rows = np.random.default_rng(args.seed + 1).normal(0, 1, (args.requests, 12))

    # one tracer shared by the edge and the cluster parent: their spans
    # land in one place, and the server's span collection dedups it
    tracer = Tracer()
    trace_id = f"repro-obs-{args.seed}"
    with ShardedServingCluster(
        registry, n_shards=args.shards, route="hash", transport=args.transport,
        tracer=tracer,
    ) as cluster:
        with AsyncServeServer(cluster, tracer=tracer) as server:
            log.info("server-up", host=server.host, port=server.port,
                     shards=args.shards, transport=args.transport)
            with ServeClient(server.host, server.port, timeout=30.0) as client:
                # a warm stream first, then the request under forensics —
                # its explicit trace id is never sampled away
                for row in rows[:-1]:
                    client.send(args.model, row)
                client.drain()
                client.send(args.model, rows[-1], trace_id=trace_id)
                value = client.recv()
                log.info("traced-request", trace=trace_id, value=value)

                dump = client.trace(trace_id)
                spans = sorted(dump["spans"], key=lambda s: (s["pid"], s["start"]))
                print(format_table(
                    ["pid", "component", "stage", "ms", "meta"],
                    [[s["pid"], s["component"], s["stage"],
                      f"{1e3 * (s['end'] - s['start']):.3f}",
                      "" if not s.get("meta") else str(s["meta"])]
                     for s in spans],
                    title=(f"Trace {trace_id} — {len(spans)} spans across "
                           f"{len({s['pid'] for s in spans})} processes")))

                slowest = client.slowest(args.slowest)
                print(format_table(
                    ["component", "stage", "ms", "trace"],
                    [[s["component"], s["stage"],
                      f"{1e3 * (s['end'] - s['start']):.3f}", s["trace"]]
                     for s in slowest],
                    title=f"Slowest {len(slowest)} spans (rings + exemplars)"))

                if args.metrics == "prom":
                    print(client.metrics("prom"), end="")
                else:
                    snap = client.metrics("json")
                    rows_out = []
                    for name in sorted(snap["families"]):
                        fam = snap["families"][name]
                        for suffix, labels, val in fam["samples"]:
                            label = ",".join(f"{k}={v}" for k, v in
                                             sorted(labels.items()))
                            rows_out.append([name + suffix, label, val])
                    print(format_table(
                        ["metric", "labels", "value"], rows_out,
                        title=(f"Unified metrics — {len(snap['families'])} "
                               "families (edge + cluster + spans)")))
    log.info("done", spans=len(spans), dropped=sum(dump["dropped"].values()))
    return 0


def cmd_obs_bench(args: argparse.Namespace) -> int:
    from repro.serve.bench import record_trajectory_entry, run_obs_bench

    r = run_obs_bench(
        kind=args.model,
        n_train=args.train,
        n_trees=args.trees,
        n_requests=args.requests,
        n_shards=args.shards,
        max_batch=args.batch,
        max_delay=args.deadline_ms / 1e3,
        seed=args.seed,
        repeats=args.repeats,
        max_overhead_pct=args.max_overhead,
        trace_sample=args.sample,
    )
    rows = [
        ["untraced", f"{r['plain_rps']:.0f}", "-"],
        [f"traced (1-in-{r['trace_sample']})", f"{r['traced_rps']:.0f}",
         f"{r['overhead_pct']:+.2f}% (budget {r['max_overhead_pct']:.1f}%)"],
    ]
    print(format_table(
        ["stream", "req/s", "overhead"],
        rows,
        title=(f"Observability plane — {r['n_requests']} requests x "
               f"{r['model']} ({r['n_trees']} trees), median of {r['repeats']} "
               "adjacent pairs: bit-identical with tracing attached")))
    print(f"spans: {r['spans_recorded']} recorded, {r['spans_dropped']} dropped; "
          f"cross-process trace over {r['n_shards']} socket shards reassembled "
          f"{r['distinct_stages']} stages ({', '.join(r['trace_stages'])}); "
          f"Prometheus/JSON exports agree with ClusterStats on "
          f"{len(r['metrics_agree'])} families")
    path = record_trajectory_entry({"obs": r}, args.record_dir)
    print(f"recorded obs entry in {path}")
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    from repro.scheduler import BatchScheduler, Dragonfly, PlacementPolicy

    rng = np.random.default_rng(args.seed)
    topo = Dragonfly(n_groups=args.groups, routers_per_group=16, nodes_per_router=4)
    submit = np.sort(rng.uniform(0.0, 3600.0 * 12, args.jobs))
    nodes = np.minimum(rng.geometric(0.02, args.jobs), topo.n_nodes // 2)
    wall = rng.lognormal(7.5, 1.0, args.jobs)
    rows = []
    for policy in ("contiguous", "cluster", "random"):
        sched = BatchScheduler(PlacementPolicy(topo, policy, seed=args.seed))
        jobs, stats = sched.run(submit, nodes, wall)
        loc = float(np.mean([j.locality for j in jobs]))
        rows.append([policy, f"{stats.mean_wait:.0f}s", f"{stats.backfill_share:.0%}",
                     f"{stats.utilization:.0%}", f"{loc:.2f}"])
    print(format_table(
        ["placement", "mean wait", "backfill", "utilization", "mean locality"],
        rows, title=f"Scheduler comparison — dragonfly, {topo.n_nodes} nodes"))
    return 0


# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPC I/O ML error-taxonomy reproduction (SC 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="simulate a platform and save the dataset")
    p.add_argument("--platform", default="theta", choices=("theta", "cori"))
    p.add_argument("--jobs", type=int, default=4000)
    p.add_argument("--seed", type=int, default=2022)
    p.add_argument("--out", type=Path, required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("census", help="duplicate census + application bound (§VI)")
    _add_source_args(p)
    p.set_defaults(func=cmd_census)

    p = sub.add_parser("noise", help="I/O noise bounds from concurrent duplicates (§IX)")
    _add_source_args(p)
    p.set_defaults(func=cmd_noise)

    p = sub.add_parser("taxonomy", help="run the full five-step framework (§X)")
    _add_source_args(p)
    p.add_argument("--members", type=int, default=5, help="ensemble size for Step 4")
    p.add_argument("--epochs", type=int, default=25, help="epochs per ensemble member")
    p.set_defaults(func=cmd_taxonomy)

    p = sub.add_parser("cluster", help="Gauge-style workload clustering report")
    _add_source_args(p)
    p.add_argument("--clusters", type=int, default=10)
    p.set_defaults(func=cmd_cluster)

    p = sub.add_parser("export-darshan", help="write darshan-parser text logs")
    _add_source_args(p)
    p.add_argument("--out", type=Path, required=True)
    p.add_argument("--limit", type=int, default=None)
    p.set_defaults(func=cmd_export_darshan)

    p = sub.add_parser("drift", help="feature drift across a temporal split (PSI)")
    _add_source_args(p)
    p.add_argument("--cutoff", type=float, default=0.8, help="training fraction of the span")
    p.add_argument("--top", type=int, default=8, help="features to list")
    p.set_defaults(func=cmd_drift)

    p = sub.add_parser("serve-bench", help="micro-batched serving throughput vs direct predicts")
    p.add_argument("--models", nargs="+", default=["forest", "gbm"], choices=("forest", "gbm"))
    p.add_argument("--trees", type=int, default=150, help="ensemble size to serve")
    p.add_argument("--requests", type=int, default=2000, help="single-row requests to stream")
    p.add_argument("--batch", type=int, default=256, help="micro-batch size trigger (rows)")
    p.add_argument("--deadline-ms", type=float, default=2.0, help="max queueing delay per request")
    mode = p.add_mutually_exclusive_group()
    mode.add_argument("--gateway", action="store_true",
                      help="route one interleaved stream over all models through the "
                           "multi-model ServingGateway with adaptive batch tuning")
    mode.add_argument("--shards", type=int, default=0, metavar="N",
                      help="serve through an N-process ShardedServingCluster "
                           "(hash-routed stream + replicated block fan-out) and "
                           "record a cluster entry in the serve trajectory")
    mode.add_argument("--faults", action="store_true",
                      help="fault-injection bench: RetryController overhead gate "
                           "plus kill/respawn recovery latency (p50/p99 "
                           "time-to-first-success) under a ShardSupervisor; "
                           "records a faults entry in the serve trajectory")
    mode.add_argument("--transports", action="store_true",
                      help="transport comparison bench: the same Zipf-skewed "
                           "stream over pipe vs socket shard clusters, plus "
                           "work-stealing on/off tail latency under maximal "
                           "hash skew; records a transport entry in the serve "
                           "trajectory")
    p.add_argument("--transport", default="pipe", choices=("pipe", "socket"),
                   help="parent<->worker channel for the --shards cluster")
    p.add_argument("--kills", type=int, default=5,
                   help="shard kills injected by the --faults recovery phase")
    p.add_argument("--target-ms", type=float, default=5.0,
                   help="adaptive tuner latency target (gateway mode)")
    p.add_argument("--monitor", action="store_true",
                   help="attach the online monitoring plane to the gateway run "
                        "(implies --gateway; the bit-identity gate then also "
                        "checks the plane's observational contract)")
    p.add_argument("--train", type=int, default=3000,
                   help="training rows per benched model")
    p.add_argument("--record-dir", type=Path, default=Path("benchmarks/results"),
                   help="trajectory directory for --shards/--faults entries")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_serve_bench)

    p = sub.add_parser(
        "monitor-bench",
        help="monitoring-plane overhead (monitored vs unmonitored stream, "
             "<=5%% budget) + drift-detection/auto-rollback check",
    )
    p.add_argument("--model", default="forest", choices=("forest", "gbm"))
    p.add_argument("--trees", type=int, default=150)
    p.add_argument("--requests", type=int, default=2000)
    p.add_argument("--batch", type=int, default=256)
    p.add_argument("--deadline-ms", type=float, default=50.0,
                   help="deliberately generous: keeps the batch shape identical "
                        "on both paths so the overhead number is tap cost, not "
                        "a deadline-race artifact")
    p.add_argument("--train", type=int, default=3000)
    p.add_argument("--repeats", type=int, default=7,
                   help="replays per path; best wall time wins (noise control)")
    p.add_argument("--max-overhead", type=float, default=5.0,
                   help="overhead budget in percent; exceeding it fails the bench")
    p.add_argument("--record-dir", type=Path, default=Path("benchmarks/results"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_monitor_bench)

    p = sub.add_parser(
        "serve-net",
        help="asyncio network front door: wire round-trip p50/p99 vs the "
             "in-process gateway (bit-identical) + admission-control shed rate",
    )
    p.add_argument("--model", default="forest", choices=("forest", "gbm"))
    p.add_argument("--trees", type=int, default=150)
    p.add_argument("--requests", type=int, default=2000)
    p.add_argument("--batch", type=int, default=256)
    p.add_argument("--deadline-ms", type=float, default=2.0)
    p.add_argument("--train", type=int, default=3000)
    p.add_argument("--window", type=int, default=64,
                   help="client pipeline depth (outstanding requests)")
    p.add_argument("--overload-requests", type=int, default=300,
                   help="burst size for the admission-control phase")
    p.add_argument("--overload-in-flight", type=int, default=16,
                   help="deliberately small server budget the burst must overrun")
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="front an N-process ShardedServingCluster instead of a "
                        "single-process gateway (0 = gateway)")
    p.add_argument("--transport", default="pipe", choices=("pipe", "socket"),
                   help="parent<->worker channel when --shards is set")
    p.add_argument("--record-dir", type=Path, default=Path("benchmarks/results"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_serve_net)

    p = sub.add_parser(
        "chaos-bench",
        help="storm-scale chaos soak: hundreds of versions, Zipf multi-tenant "
             "traffic, kill storms under promote/rollback churn, poison "
             "floods, drift injection, SLO autoscaler; records a chaos entry "
             "in BENCH_chaos.json",
    )
    p.add_argument("--names", type=int, default=25,
                   help="tenant model names in the registration storm")
    p.add_argument("--versions-per-name", type=int, default=20,
                   help="versions pinned per name (names x versions >= 500 "
                        "is the storm-scale gate)")
    p.add_argument("--shards", type=int, default=2,
                   help="initial fleet width (the autoscaler moves it)")
    p.add_argument("--max-shards", type=int, default=4,
                   help="autoscaler ceiling")
    p.add_argument("--requests", type=int, default=2000,
                   help="Zipf-routed requests across the soak")
    p.add_argument("--kills", type=int, default=6,
                   help="shard kills spread across the storm")
    p.add_argument("--slo-ms", type=float, default=50.0,
                   help="autoscaler p99 target")
    p.add_argument("--source", default="sim", choices=("sim", "synthetic"),
                   help="request pools: simulator-driven (§ platform/weather/"
                        "workload drift knobs) or plain gaussian")
    p.add_argument("--record-dir", type=Path, default=Path("benchmarks/results"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_chaos_bench)

    p = sub.add_parser(
        "obs",
        help="observability demo: trace one wire request end to end "
             "(edge -> cluster -> worker), dump its spans, the slowest "
             "spans, and the unified metrics snapshot over the wire ops",
    )
    p.add_argument("--model", default="forest", choices=("forest", "gbm"))
    p.add_argument("--trees", type=int, default=50)
    p.add_argument("--train", type=int, default=800)
    p.add_argument("--requests", type=int, default=64,
                   help="warm-up stream length before the traced request")
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--transport", default="socket", choices=("pipe", "socket"))
    p.add_argument("--slowest", type=int, default=8,
                   help="rows in the slowest-span table")
    p.add_argument("--metrics", default="json", choices=("json", "prom"),
                   help="metrics snapshot format to print")
    p.add_argument("--log-json", action="store_true",
                   help="emit trace-correlated JSON log lines on stderr")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_obs)

    p = sub.add_parser(
        "obs-bench",
        help="tracing overhead (traced vs untraced stream at the sampled "
             "production config, <=5%% budget) + cross-process "
             "trace-completeness and metrics-agreement gates",
    )
    p.add_argument("--model", default="forest", choices=("forest", "gbm"))
    p.add_argument("--trees", type=int, default=150)
    p.add_argument("--requests", type=int, default=2000)
    p.add_argument("--batch", type=int, default=256)
    p.add_argument("--deadline-ms", type=float, default=50.0,
                   help="deliberately generous: keeps the batch shape identical "
                        "on both paths so the overhead number is span cost, not "
                        "a deadline-race artifact")
    p.add_argument("--train", type=int, default=3000)
    p.add_argument("--shards", type=int, default=2,
                   help="socket shards for the trace-completeness phase")
    p.add_argument("--repeats", type=int, default=7,
                   help="adjacent plain/traced pairs; the median pair is reported")
    p.add_argument("--max-overhead", type=float, default=5.0,
                   help="overhead budget in percent; exceeding it fails the bench")
    p.add_argument("--sample", type=int, default=8,
                   help="trace 1-in-N auto-born requests (explicit ids always)")
    p.add_argument("--record-dir", type=Path, default=Path("benchmarks/results"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_obs_bench)

    p = sub.add_parser("schedule", help="compare placement policies on a dragonfly")
    p.add_argument("--jobs", type=int, default=200)
    p.add_argument("--groups", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_schedule)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
