"""k-means clustering with k-means++ seeding and restarts.

Lloyd's algorithm, fully vectorized: the assignment step is one blocked
distance computation, the update step one ``np.add.at`` scatter.  HPC job
logs cluster tightly (duplicate sets collapse to zero-radius clumps), so
k-means++ seeding matters — uniform seeding routinely drops whole
application families at these densities.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator
from repro.rng import generator_from

__all__ = ["KMeans"]

_CHUNK = 4096


def _sq_dists(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    sq = (A**2).sum(axis=1)[:, None] - 2.0 * (A @ B.T) + (B**2).sum(axis=1)[None, :]
    return np.maximum(sq, 0.0)


def _plus_plus_init(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: sample proportional to squared distance so far."""
    n = X.shape[0]
    centers = np.empty((k, X.shape[1]))
    centers[0] = X[rng.integers(n)]
    d2 = _sq_dists(X, centers[:1]).ravel()
    for i in range(1, k):
        total = d2.sum()
        if total <= 0.0:  # fewer distinct points than clusters
            centers[i:] = X[rng.integers(0, n, k - i)]
            break
        probs = d2 / total
        centers[i] = X[rng.choice(n, p=probs)]
        d2 = np.minimum(d2, _sq_dists(X, centers[i : i + 1]).ravel())
    return centers


class KMeans(BaseEstimator):
    """Lloyd's k-means.

    Parameters
    ----------
    n_clusters:
        Number of centroids.
    n_init:
        Independent restarts; the lowest-inertia run wins.
    max_iter, tol:
        Per-run iteration cap and centroid-shift convergence threshold.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        n_init: int = 4,
        max_iter: int = 100,
        tol: float = 1e-6,
        random_state: int = 0,
    ):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = int(n_clusters)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.random_state = int(random_state)
        self.centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = np.inf
        self.n_iter_: int = 0

    # ------------------------------------------------------------------ #
    def _assign(self, X: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, float]:
        labels = np.empty(X.shape[0], dtype=np.int64)
        inertia = 0.0
        for lo in range(0, X.shape[0], _CHUNK):
            d2 = _sq_dists(X[lo : lo + _CHUNK], centers)
            labels[lo : lo + d2.shape[0]] = d2.argmin(axis=1)
            inertia += float(d2.min(axis=1).sum())
        return labels, inertia

    def _run_once(self, X: np.ndarray, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray, float, int]:
        k = self.n_clusters
        centers = _plus_plus_init(X, k, rng)
        labels = np.full(X.shape[0], -1, dtype=np.int64)
        for it in range(self.max_iter):
            labels, inertia = self._assign(X, centers)
            new_centers = np.zeros_like(centers)
            np.add.at(new_centers, labels, X)
            counts = np.bincount(labels, minlength=k).astype(float)
            empty = counts == 0
            if np.any(empty):
                # re-seed empty clusters at the farthest points
                d2 = _sq_dists(X, centers).min(axis=1)
                far = np.argsort(d2)[::-1][: int(empty.sum())]
                new_centers[empty] = X[far]
                counts[empty] = 1.0
            new_centers /= counts[:, None]
            shift = float(np.abs(new_centers - centers).max())
            centers = new_centers
            if shift < self.tol:
                break
        labels, inertia = self._assign(X, centers)
        return centers, labels, inertia, it + 1

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "KMeans":
        X = np.asarray(X, dtype=float)
        if X.shape[0] < self.n_clusters:
            raise ValueError("fewer samples than clusters")
        rng = generator_from(self.random_state)
        best = (None, None, np.inf, 0)
        for _ in range(max(1, self.n_init)):
            centers, labels, inertia, iters = self._run_once(X, rng)
            if inertia < best[2]:
                best = (centers, labels, inertia, iters)
        self.centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.centers_ is None:
            raise RuntimeError("predict called before fit")
        labels, _ = self._assign(np.asarray(X, dtype=float), self.centers_)
        return labels

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).labels_
