"""Workload clustering — the paper's other automation track (§II).

The related-work section splits ML-for-I/O into (1) clustering job logs to
understand workload structure (Gauge [8], Taxonomist [9], Isakov et al.
[2]) and (2) throughput modeling.  This subpackage provides track (1) over
the same telemetry frames the models consume:

* :mod:`repro.cluster.kmeans`   — k-means with k-means++ seeding
* :mod:`repro.cluster.dbscan`   — density clustering (finds the duplicate
  clumps and leaves novel jobs unassigned — a third OoD lens)
* :mod:`repro.cluster.agglomerative` — average-linkage hierarchy over a
  subsample, Gauge's dendrogram view
* :mod:`repro.cluster.metrics`  — silhouette / Davies-Bouldin validation
* :mod:`repro.cluster.workload` — end-to-end job-log clustering reports
"""

from repro.cluster.agglomerative import AgglomerativeClustering
from repro.cluster.dbscan import DBSCAN
from repro.cluster.kmeans import KMeans
from repro.cluster.metrics import davies_bouldin_index, silhouette_score
from repro.cluster.workload import ClusterReport, cluster_workload

__all__ = [
    "KMeans",
    "DBSCAN",
    "AgglomerativeClustering",
    "silhouette_score",
    "davies_bouldin_index",
    "ClusterReport",
    "cluster_workload",
]
