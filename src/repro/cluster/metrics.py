"""Internal cluster-validation indices (no ground truth required)."""

from __future__ import annotations

import numpy as np

from repro.rng import generator_from

__all__ = ["silhouette_score", "davies_bouldin_index"]


def _sq_dists(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    sq = (A**2).sum(axis=1)[:, None] - 2.0 * (A @ B.T) + (B**2).sum(axis=1)[None, :]
    return np.maximum(sq, 0.0)


def silhouette_score(
    X: np.ndarray,
    labels: np.ndarray,
    sample: int = 1500,
    random_state: int = 0,
) -> float:
    """Mean silhouette over (a sample of) the clustered points.

    ``s = (b − a) / max(a, b)`` with ``a`` the mean distance to own-cluster
    points and ``b`` the smallest mean distance to another cluster.  Noise
    points (label −1, from DBSCAN) are excluded.  Returns 0.0 when fewer
    than two clusters survive — the score is undefined there, and 0 is the
    "no structure" fixed point.
    """
    X = np.asarray(X, dtype=float)
    labels = np.asarray(labels)
    keep = labels >= 0
    X, labels = X[keep], labels[keep]
    uniq = np.unique(labels)
    if uniq.size < 2 or X.shape[0] < 3:
        return 0.0

    rng = generator_from(random_state)
    idx = np.arange(X.shape[0])
    if idx.size > sample:
        idx = rng.choice(idx, sample, replace=False)

    D = np.sqrt(_sq_dists(X[idx], X))
    scores = np.empty(idx.size)
    for row, i in enumerate(idx):
        own = labels == labels[i]
        own_count = own.sum()
        if own_count <= 1:
            scores[row] = 0.0  # singleton clusters contribute 0 by convention
            continue
        a = (D[row, own].sum() - 0.0) / (own_count - 1)  # excludes self (distance 0)
        b = np.inf
        for c in uniq:
            if c == labels[i]:
                continue
            other = labels == c
            b = min(b, float(D[row, other].mean()))
        scores[row] = (b - a) / max(a, b, 1e-12)
    return float(scores.mean())


def davies_bouldin_index(X: np.ndarray, labels: np.ndarray) -> float:
    """Davies-Bouldin index (lower is better); noise points excluded."""
    X = np.asarray(X, dtype=float)
    labels = np.asarray(labels)
    keep = labels >= 0
    X, labels = X[keep], labels[keep]
    uniq = np.unique(labels)
    if uniq.size < 2:
        return 0.0

    centroids = np.stack([X[labels == c].mean(axis=0) for c in uniq])
    spreads = np.array(
        [np.sqrt(((X[labels == c] - centroids[k]) ** 2).sum(axis=1)).mean()
         for k, c in enumerate(uniq)]
    )
    D = np.sqrt(_sq_dists(centroids, centroids))
    np.fill_diagonal(D, np.inf)
    ratios = (spreads[:, None] + spreads[None, :]) / D
    return float(np.max(ratios, axis=1).mean())
