"""Agglomerative (average-linkage) clustering over a subsample.

Gauge [8] — the paper authors' interactive clustering tool — presents HPC
jobs as a dendrogram cut at an adjustable height.  This is the same
construction: hierarchical merging with average linkage, implemented with
the Lance-Williams update on a dense distance matrix.  O(n³) worst case,
so ``fit`` enforces a sample cap; Gauge itself clusters subsamples too.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator

__all__ = ["AgglomerativeClustering"]


class AgglomerativeClustering(BaseEstimator):
    """Bottom-up average-linkage hierarchy.

    Parameters
    ----------
    n_clusters:
        Number of flat clusters to cut the dendrogram into.
    max_samples:
        Hard cap on input size (the dense matrix is O(n²) memory).

    Attributes
    ----------
    labels_:
        Flat cluster assignment per row.
    merge_heights_:
        Linkage distance of each of the n−1 merges, in merge order — the
        dendrogram's height profile (long flat stretches followed by jumps
        betray strong cluster structure).
    """

    def __init__(self, n_clusters: int = 8, max_samples: int = 2000):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = int(n_clusters)
        self.max_samples = int(max_samples)
        self.labels_: np.ndarray | None = None
        self.merge_heights_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "AgglomerativeClustering":
        X = np.asarray(X, dtype=float)
        n = X.shape[0]
        if n > self.max_samples:
            raise ValueError(
                f"{n} samples exceeds max_samples={self.max_samples}; "
                "subsample first (dense O(n²) distance matrix)"
            )
        if n < self.n_clusters:
            raise ValueError("fewer samples than clusters")

        sq = (X**2).sum(axis=1)
        D = np.sqrt(np.maximum(sq[:, None] - 2.0 * (X @ X.T) + sq[None, :], 0.0))
        np.fill_diagonal(D, np.inf)

        # each row is a live cluster; `size` tracks member counts,
        # `members` maps live cluster -> original row indices
        size = np.ones(n)
        alive = np.ones(n, dtype=bool)
        members: list[list[int]] = [[i] for i in range(n)]
        heights: list[float] = []

        for _merge in range(n - self.n_clusters):
            # closest live pair
            flat = np.argmin(D)
            i, j = divmod(int(flat), n)
            heights.append(float(D[i, j]))
            # Lance-Williams average-linkage update into row/col i
            ni, nj = size[i], size[j]
            new_row = (ni * D[i] + nj * D[j]) / (ni + nj)
            D[i] = new_row
            D[:, i] = new_row
            D[i, i] = np.inf
            D[j] = np.inf
            D[:, j] = np.inf
            size[i] = ni + nj
            alive[j] = False
            members[i].extend(members[j])
            members[j] = []

        labels = np.empty(n, dtype=np.int64)
        for cid, rows in enumerate([m for m, a in zip(members, alive) if a]):
            labels[rows] = cid
        self.labels_ = labels
        self.merge_heights_ = np.asarray(heights)
        return self

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).labels_
