"""DBSCAN density clustering (chunked brute-force neighbourhoods).

Density clustering suits HPC job logs unusually well: duplicate sets are
literally zero-radius clumps, application families form dense manifolds,
and *novel* jobs — the §VIII out-of-distribution class — fall below the
density threshold and come back labelled ``-1`` (noise).  The OoD-detector
ablation uses that as a third lens next to ensemble EU and kNN distance.

The neighbourhood graph is built in row blocks (no KD-tree needed at
n ≲ 10⁵, d ≈ 50–130) and the cluster expansion is a standard BFS over the
core-point adjacency.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator

__all__ = ["DBSCAN"]

_CHUNK = 2048


class DBSCAN(BaseEstimator):
    """Density-based clustering.

    Parameters
    ----------
    eps:
        Neighbourhood radius (Euclidean, in the caller's feature scale —
        standardize first).
    min_samples:
        Core-point threshold, the point itself included.

    Attributes
    ----------
    labels_:
        Cluster id per row; ``-1`` marks noise (low-density) points.
    core_mask_:
        Boolean mask of core points.
    """

    def __init__(self, eps: float = 0.5, min_samples: int = 5):
        if eps <= 0.0:
            raise ValueError("eps must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.eps = float(eps)
        self.min_samples = int(min_samples)
        self.labels_: np.ndarray | None = None
        self.core_mask_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "DBSCAN":
        X = np.asarray(X, dtype=float)
        n = X.shape[0]
        eps2 = self.eps**2
        sq_norms = (X**2).sum(axis=1)

        # neighbour lists in blocks
        neighbors: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
        counts = np.zeros(n, dtype=np.int64)
        for lo in range(0, n, _CHUNK):
            hi = min(lo + _CHUNK, n)
            d2 = sq_norms[lo:hi, None] - 2.0 * (X[lo:hi] @ X.T) + sq_norms[None, :]
            mask = d2 <= eps2 + 1e-12
            for i in range(hi - lo):
                nb = np.flatnonzero(mask[i])
                neighbors[lo + i] = nb
                counts[lo + i] = nb.size

        core = counts >= self.min_samples
        labels = np.full(n, -1, dtype=np.int64)
        cluster = 0
        for seed in range(n):
            if not core[seed] or labels[seed] != -1:
                continue
            # BFS flood-fill from this core point
            labels[seed] = cluster
            frontier = [seed]
            while frontier:
                point = frontier.pop()
                if not core[point]:
                    continue
                for nb in neighbors[point]:
                    if labels[nb] == -1:
                        labels[nb] = cluster
                        frontier.append(int(nb))
            cluster += 1

        self.labels_ = labels
        self.core_mask_ = core
        return self

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).labels_

    @property
    def n_clusters_(self) -> int:
        if self.labels_ is None:
            raise RuntimeError("model not fitted")
        return int(self.labels_.max() + 1)

    @property
    def noise_fraction_(self) -> float:
        if self.labels_ is None:
            raise RuntimeError("model not fitted")
        return float(np.mean(self.labels_ == -1))
