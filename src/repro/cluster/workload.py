"""End-to-end workload clustering reports (the Gauge [8] use case).

``cluster_workload`` takes a :class:`~repro.data.dataset.Dataset`, embeds
the chosen telemetry frame (signed-log + z-score, the same preprocessing
the models see), clusters it, and summarizes each cluster the way an I/O
expert would triage it: how many jobs, which application families, what
I/O volume and throughput, and — when a fitted model is supplied — the
model's median error *per cluster*, which localizes where a model
underperforms (the "scaling I/O expert effort" motivation of §II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.kmeans import KMeans
from repro.data.dataset import Dataset
from repro.data.features import feature_matrix
from repro.data.preprocessing import Standardizer
from repro.ml.metrics import median_abs_pct_error
from repro.simulator.applications import family_names

__all__ = ["ClusterSummary", "ClusterReport", "cluster_workload"]


@dataclass
class ClusterSummary:
    """Expert-triage view of one job cluster."""

    cluster_id: int
    n_jobs: int
    job_share: float
    dominant_family: str
    family_purity: float            # share of jobs from the dominant family
    median_gib: float
    median_throughput_mibps: float
    duplicate_share: float          # jobs whose variant repeats inside the cluster
    model_error_pct: float | None   # median |error| of the supplied model, if any


@dataclass
class ClusterReport:
    """All clusters of one dataset plus global diagnostics."""

    dataset: str
    feature_set: str
    n_clusters: int
    labels: np.ndarray
    summaries: list[ClusterSummary] = field(default_factory=list)

    def worst_modeled(self, k: int = 3) -> list[ClusterSummary]:
        """Clusters with the highest model error (requires a model)."""
        scored = [s for s in self.summaries if s.model_error_pct is not None]
        return sorted(scored, key=lambda s: -s.model_error_pct)[:k]

    def largest(self, k: int = 3) -> list[ClusterSummary]:
        return sorted(self.summaries, key=lambda s: -s.n_jobs)[:k]


def cluster_workload(
    dataset: Dataset,
    feature_set: str = "posix",
    n_clusters: int = 12,
    model=None,
    model_X: np.ndarray | None = None,
    random_state: int = 0,
) -> ClusterReport:
    """Cluster a job log and summarize each cluster.

    Parameters
    ----------
    dataset:
        The telemetry dataset to cluster.
    feature_set:
        Which frame(s) to embed (see :data:`repro.data.features.FEATURE_SETS`).
    n_clusters:
        k for the k-means backbone.
    model, model_X:
        Optional fitted estimator and its design matrix (row-aligned with
        the dataset); enables the per-cluster error column.
    """
    X, _ = feature_matrix(dataset, feature_set)
    Z = Standardizer().fit_transform(X)
    km = KMeans(n_clusters=n_clusters, random_state=random_state).fit(Z)
    labels = km.labels_

    names = family_names()
    fam = dataset.meta["family_id"]
    var = dataset.meta["variant_id"]
    gib = dataset.meta["total_bytes"] / 1024.0**3
    pred = None
    if model is not None:
        if model_X is None:
            raise ValueError("model_X is required when a model is supplied")
        pred = np.asarray(model.predict(model_X), dtype=float)

    summaries: list[ClusterSummary] = []
    n = len(dataset)
    for cid in range(n_clusters):
        rows = np.flatnonzero(labels == cid)
        if rows.size == 0:
            continue
        fam_counts = np.bincount(fam[rows], minlength=len(names))
        dom = int(fam_counts.argmax())
        _, var_counts = np.unique(var[rows], return_counts=True)
        dup_share = float(var_counts[var_counts >= 2].sum() / rows.size)
        err = None
        if pred is not None:
            err = median_abs_pct_error(dataset.y[rows], pred[rows])
        summaries.append(
            ClusterSummary(
                cluster_id=cid,
                n_jobs=int(rows.size),
                job_share=float(rows.size / n),
                dominant_family=names[dom],
                family_purity=float(fam_counts[dom] / rows.size),
                median_gib=float(np.median(gib[rows])),
                median_throughput_mibps=float(np.median(10.0 ** dataset.y[rows])),
                duplicate_share=dup_share,
                model_error_pct=err,
            )
        )
    return ClusterReport(
        dataset=dataset.name,
        feature_set=feature_set,
        n_clusters=n_clusters,
        labels=labels,
        summaries=summaries,
    )
