"""Micro-batching scheduler: many tiny requests, one packed-arena call.

A single-row ``predict`` pays the full Python/NumPy dispatch overhead for
one sample; an arena pass over 256 coalesced rows pays it once.  The
:class:`MicroBatcher` accepts requests from any number of threads, queues
them FIFO, and flushes on whichever trigger fires first:

* **size** — the pending row count reaches ``max_batch``; the submitter
  that crossed the threshold scores the batch inline (no thread ping-pong
  on the hot path), or
* **deadline** — the oldest pending request has waited ``max_delay``
  seconds; a daemon timer thread flushes, bounding tail latency when
  traffic is sparse.

A flush snapshots the queue in arrival order, groups requests by kind
(``predict`` / ``predict_dist``), and scores the groups through
:func:`repro.parallel.pool.parallel_map` with the thread backend; each
group rides one batch-of-batches estimator call (``predict_many``).
Because every sample is routed through the arena independently, each
request's result is **bit-identical** to calling the model on that request
alone — batching is invisible in the numbers, exactly like the packed
arena itself.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Callable

import numpy as np

from repro.parallel.pool import parallel_map
from repro.serve.errors import ErrorCode, coded, ensure_code

__all__ = ["MicroBatcher", "Ticket"]


def _private_exception(exc: BaseException) -> BaseException:
    """A per-ticket copy of a shared failure.

    When one failure (a model-resolution error) has to complete many
    tickets, every ticket needs its *own* exception instance: ``raise``
    assigns ``__traceback__`` on the instance being raised, so concurrent
    ``Ticket.result()`` callers re-raising one shared instance would race
    on that mutation.  Exceptions shallow-copy through their
    ``__reduce__`` (fresh instance, no traceback); anything that refuses
    is wrapped instead, chained to the original.
    """
    try:
        clone = copy.copy(exc)
        if clone is exc:  # a pathological __copy__ returning self
            raise TypeError("copy returned the same instance")
    except Exception:
        clone = RuntimeError(f"{type(exc).__name__}: {exc}")
        clone.__cause__ = exc
    return clone


class Ticket:
    """Handle for one submitted request; blocks in :meth:`result`."""

    __slots__ = (
        "kind", "block", "single_row", "token", "seq", "deadline",
        "enqueued_at", "batch_seq", "batch_pos", "trace", "trace_t0",
        "trace_drained", "_event", "_value", "_error", "_owner",
    )

    def __init__(self, kind: str, block: np.ndarray, single_row: bool, token: Any):
        self.kind = kind
        self.block = block
        self.single_row = single_row
        self.token = token
        self.seq = -1
        self.deadline = 0.0
        self.enqueued_at = 0.0
        self.batch_seq = -1     # which flush scored this ticket
        self.batch_pos = -1     # position inside that flush (FIFO witness)
        self.trace = None       # TraceContext when the request is traced
        self.trace_t0 = 0.0     # trace-clock submit time
        self.trace_drained = 0.0  # trace-clock drain time (ends queue_wait)
        self._event = threading.Event()
        self._value: Any = None
        self._error: BaseException | None = None
        self._owner: "MicroBatcher | None" = None  # tombstone path on timeout

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Any:
        """The request's prediction (scalar for 1-D submissions).

        A timeout **tombstones** the ticket: if it is still queued, it is
        pulled out of the pending slot so a later flush never scores work
        nobody will collect, and every subsequent ``result()`` call fails
        immediately with the same coded ``DEADLINE_EXCEEDED`` error
        instead of blocking again.  (A ticket already drained into an
        in-flight flush completes normally whenever that flush finishes.)
        """
        if not self._event.wait(timeout):
            if self._owner is not None:
                self._owner._abandon(self)
            # A flush may complete the ticket between the wait expiring and
            # the abandon finding it already drained (the abandon is then a
            # no-op).  The value was computed, counted, and cached — hand
            # it over instead of discarding it behind a deadline error.
            if not self._event.is_set():
                raise coded(TimeoutError("request not completed within timeout"),
                            ErrorCode.DEADLINE_EXCEEDED)
        if self._error is not None:
            # a private copy per raise: concurrent result() callers on one
            # shared ticket must not race on __traceback__ mutation
            raise _private_exception(self._error)
        return self._value

    def _complete(self, value: Any, error: BaseException | None) -> None:
        self._value = value
        self._error = error
        self._event.set()


class MicroBatcher:
    """Coalesce concurrent small requests into packed-arena batches.

    Parameters
    ----------
    model_fn:
        Zero-arg callable resolving the model to score with, evaluated once
        per flush (the registry's production lookup goes here, so a promote
        takes effect at the next batch boundary).  A plain estimator is
        also accepted.
    max_batch:
        Row-count flush threshold (size trigger).
    max_delay:
        Seconds the oldest request may wait before a deadline flush.
        Both limits are mutable on a live batcher, but only through
        :meth:`set_limits` (they are read under the queue lock).
    n_jobs:
        Workers for scoring the per-kind groups of one flush through
        ``parallel_map(backend="thread")``.
    on_result:
        Optional ``fn(ticket, value)`` called before a ticket completes —
        the prediction cache's insertion hook.
    """

    def __init__(
        self,
        model_fn: Callable[[], Any] | Any,
        max_batch: int = 256,
        max_delay: float = 0.005,
        n_jobs: int | None = 1,
        on_result: Callable[[Ticket, Any], None] | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay <= 0:
            raise ValueError("max_delay must be > 0")
        self._model_fn = model_fn if callable(model_fn) else (lambda: model_fn)
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.n_jobs = n_jobs
        self._on_result = on_result

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: list[Ticket] = []
        self._pending_rows = 0
        self._next_seq = 0
        self._next_batch = 0
        self._closed = False
        self._timer: threading.Thread | None = None
        self._flushers: set[threading.Thread] = set()  # live deadline-flush threads
        self._in_flight = 0  # batches drained but not yet fully scored

        # counters (guarded by _lock)
        self.requests = 0
        self.rows = 0
        self.batches = 0
        self.completed = 0  # tickets whose flush finished scoring
        self.size_flushes = 0
        self.deadline_flushes = 0
        self.manual_flushes = 0
        self.abandoned = 0  # tickets tombstoned by a result() timeout
        self.latency_dropped = 0  # ring samples evicted by overwrite
        self.total_latency_s = 0.0
        # bounded ring of recent per-request latencies (seconds): the
        # tail-percentile sample mean-only counters can't provide, sized
        # so a process-lifetime batcher never grows it past the cap
        self._latency_ring: deque[float] = deque(maxlen=2048)

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def submit(
        self,
        row: np.ndarray,
        kind: str = "predict",
        token: Any = None,
        copy: bool = True,
        trace: Any = None,
    ) -> Ticket:
        """Enqueue one request — a feature vector or a small (m, d) block.

        ``copy=True`` (the default) takes a private copy: callers may
        legally reuse their buffer the moment submit returns, and the
        flush must score the submit-time bytes.  Pass ``copy=False`` only
        when handing over an array nothing else will touch (the service
        does, having already copied for its digest).

        ``trace`` optionally carries a
        :class:`~repro.serve.obs.trace.TraceContext`; the batcher then
        records ``queue_wait``/``score`` spans per request and one
        batch-level ``flush`` span — observational only, the scoring path
        is identical with or without it.
        """
        if kind not in ("predict", "predict_dist"):
            raise coded(ValueError("kind must be 'predict' or 'predict_dist'"),
                        ErrorCode.MALFORMED_REQUEST)
        arr = np.array(row, dtype=float) if copy else np.asarray(row, dtype=float)
        single = arr.ndim == 1
        if single:
            arr = arr[None, :]
        elif arr.ndim != 2:
            raise coded(ValueError(f"request must be 1-D or 2-D, got ndim={arr.ndim}"),
                        ErrorCode.MALFORMED_REQUEST)
        ticket = Ticket(kind, arr, single, token)
        ticket._owner = self
        if trace is not None:
            ticket.trace = trace
            ticket.trace_t0 = trace.now()

        batch: list[Ticket] | None = None
        with self._lock:
            if self._closed:
                raise coded(RuntimeError("MicroBatcher is closed"), ErrorCode.CLOSED)
            now = time.monotonic()
            ticket.seq = self._next_seq
            self._next_seq += 1
            ticket.enqueued_at = now
            ticket.deadline = now + self.max_delay
            self._pending.append(ticket)
            self._pending_rows += arr.shape[0]
            self.requests += 1
            self.rows += arr.shape[0]
            if self._pending_rows >= self.max_batch:
                batch = self._drain_locked()
                self.size_flushes += 1
            else:
                if self._timer is None:
                    self._timer = threading.Thread(
                        target=self._timer_loop, name="microbatcher-deadline", daemon=True
                    )
                    self._timer.start()
                if len(self._pending) == 1:
                    # deadlines are FIFO-monotonic: only an empty→non-empty
                    # transition can move the head the timer is watching
                    self._cond.notify_all()
        if batch:
            self._process(batch)
        return ticket

    def flush(self) -> int:
        """Force-score everything pending; returns the request count."""
        with self._lock:
            batch = self._drain_locked()
            if batch:
                self.manual_flushes += 1
        if batch:
            self._process(batch)
        return len(batch) if batch else 0

    def close(self, timeout: float = 5.0) -> bool:
        """Flush the queue, stop the deadline thread, and wait up to
        ``timeout`` seconds for every in-flight flush to finish scoring.

        Returns ``True`` when all accepted tickets completed within the
        timeout; ``False`` means a flush was still scoring when the wait
        expired (its tickets will still complete whenever it finishes, the
        batcher just stopped waiting).  Idempotent; a second call returns
        the current drained state.
        """
        deadline = time.monotonic() + timeout
        with self._lock:
            already_closed = self._closed
            self._closed = True
            batch = self._drain_locked() if not already_closed else []
            if batch:
                self.manual_flushes += 1
            self._cond.notify_all()
            timer = self._timer
        if batch:
            self._process(batch)
        if timer is not None:
            timer.join(timeout=max(0.0, deadline - time.monotonic()))
        with self._lock:
            flushers = list(self._flushers)
        for t in flushers:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        # size-triggered flushes run inline in *other* submitter threads —
        # wait for every drained batch to finish scoring
        with self._lock:
            while self._in_flight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    return False
            return True

    def set_limits(
        self, max_batch: int | None = None, max_delay: float | None = None
    ) -> None:
        """Retune the flush triggers on a live batcher (the adaptive tuner's
        write path).

        Both limits are read under ``_lock`` by ``submit`` and the deadline
        timer, so they may only be written under it — never assign
        ``max_batch``/``max_delay`` directly on a running batcher.  A new
        ``max_delay`` retargets every pending ticket's deadline from its
        enqueue time (deadlines stay FIFO-monotonic because enqueue times
        are); a ``max_batch`` at or below the pending row count fires a size
        flush immediately, scored inline by the caller.
        """
        # validate both before assigning either — a half-applied update
        # would leave a satisfied size trigger that never fires
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay is not None and max_delay <= 0:
            raise ValueError("max_delay must be > 0")
        batch: list[Ticket] | None = None
        with self._lock:
            if max_batch is not None:
                self.max_batch = int(max_batch)
            if max_delay is not None:
                self.max_delay = float(max_delay)
                for t in self._pending:
                    t.deadline = t.enqueued_at + self.max_delay
            if self._pending_rows >= self.max_batch and self._pending:
                batch = self._drain_locked()
                self.size_flushes += 1
            else:
                self._cond.notify_all()  # timer re-reads the head deadline
        if batch:
            self._process(batch)

    def counters(self) -> dict[str, float]:
        with self._lock:
            return {
                "requests": self.requests,
                "rows": self.rows,
                "batches": self.batches,
                "completed": self.completed,
                "size_flushes": self.size_flushes,
                "deadline_flushes": self.deadline_flushes,
                "manual_flushes": self.manual_flushes,
                "abandoned": self.abandoned,
                "latency_dropped": self.latency_dropped,
                "total_latency_s": self.total_latency_s,
            }

    def latency_snapshot(self) -> tuple[float, ...]:
        """The bounded ring of recent per-request latencies (seconds),
        newest last — the sample :class:`~repro.serve.stats.ServerStats`
        computes p50/p99/p999 from."""
        with self._lock:
            return tuple(self._latency_ring)

    # ------------------------------------------------------------------ #
    def _abandon(self, ticket: Ticket) -> None:
        """Tombstone a ticket whose ``result(timeout=)`` expired.

        Only a ticket still sitting in the pending queue is pulled out (and
        completed with its coded timeout, so later ``result()`` calls fail
        fast instead of re-blocking); a ticket already drained into an
        in-flight flush is left alone — that flush owns its completion.
        Removing a queued ticket frees its slot, so repeated timeouts can
        never leak pending rows or pin the deadline timer on dead work.
        """
        with self._lock:
            try:
                self._pending.remove(ticket)
            except ValueError:
                return  # already drained (or already tombstoned)
            self._pending_rows -= ticket.block.shape[0]
            self.abandoned += 1
            # the head deadline the timer watches may have changed
            self._cond.notify_all()
        ticket._complete(
            None,
            coded(TimeoutError("request abandoned: result() timed out"),
                  ErrorCode.DEADLINE_EXCEEDED),
        )

    def _drain_locked(self) -> list[Ticket]:
        batch = self._pending
        self._pending = []
        self._pending_rows = 0
        if batch:
            seq = self._next_batch
            self._next_batch += 1
            self._in_flight += 1  # paired with the decrement in _process
            drained_at: float | None = None  # one trace-clock read per batch
            for pos, t in enumerate(batch):  # arrival order == flush order
                t.batch_seq = seq
                t.batch_pos = pos
                if t.trace is not None:
                    if drained_at is None:
                        drained_at = t.trace.now()
                    t.trace_drained = drained_at
        return batch

    def _timer_loop(self) -> None:
        while True:
            batch: list[Ticket] | None = None
            with self._lock:
                while not self._closed and batch is None:
                    if not self._pending:
                        self._cond.wait()
                        continue
                    wait = self._pending[0].deadline - time.monotonic()
                    if wait > 0:
                        self._cond.wait(wait)
                        continue
                    batch = self._drain_locked()
                    self.deadline_flushes += 1
                if self._closed and batch is None:
                    return
            # score off-thread so the timer immediately resumes watching
            # deadlines: a slow flush must not stall the next deadline
            # (this path only runs under sparse traffic, so the thread
            # spawn cost is noise next to max_delay); close() joins these
            self._spawn_flusher(batch)

    def _spawn_flusher(self, batch: list[Ticket]) -> None:
        def run() -> None:
            try:
                self._process(batch)
            finally:
                with self._lock:
                    self._flushers.discard(thread)

        thread = threading.Thread(target=run, name="microbatcher-flush", daemon=True)
        with self._lock:
            self._flushers.add(thread)
        thread.start()

    def _process(self, batch: list[Ticket]) -> None:
        groups: OrderedDict[str, list[Ticket]] = OrderedDict()
        for t in batch:
            groups.setdefault(t.kind, []).append(t)
        try:
            try:
                model = self._model_fn()
                scored = parallel_map(
                    lambda kt: self._score_group_isolated(model, *kt),
                    list(groups.items()),
                    workers=self.n_jobs,
                    backend="thread",
                )
            except BaseException as exc:  # model resolution failed: everyone waits on it
                ensure_code(exc, ErrorCode.MODEL_RESOLUTION_FAILED)
                for t in batch:
                    # each ticket gets a private copy — concurrent result()
                    # raisers must not share one mutable instance
                    t._complete(None, _private_exception(exc))
                return
            for tickets, outcomes in zip(groups.values(), scored):
                for t, (value, error) in zip(tickets, outcomes):
                    if error is None and self._on_result is not None:
                        try:
                            self._on_result(t, value)
                        except Exception:
                            pass  # cache insertion must never fail a request
                    t._complete(value, error)
        finally:
            self._finish_batch(batch)

    def _finish_batch(self, batch: list[Ticket]) -> None:
        now = time.monotonic()
        with self._lock:
            self.batches += 1
            self.completed += len(batch)
            self.total_latency_s += sum(now - t.enqueued_at for t in batch)
            cap = self._latency_ring.maxlen
            if cap is not None:
                overflow = len(self._latency_ring) + len(batch) - cap
                if overflow > 0:  # evictions are counted, never silent
                    self.latency_dropped += overflow
            self._latency_ring.extend(now - t.enqueued_at for t in batch)
            self._in_flight -= 1
            self._cond.notify_all()  # close() may be waiting for in-flight == 0
        flush_recorded = False
        for t in batch:
            ctx = t.trace
            if ctx is None:
                continue
            end = ctx.now()
            ctx.record("batcher", "queue_wait", t.trace_t0, t.trace_drained)
            ctx.record("batcher", "score", t.trace_drained, end)
            if not flush_recorded:  # one batch-level span, on the first trace
                ctx.record("batcher", "flush", t.trace_drained, end,
                           meta={"batch_seq": t.batch_seq, "size": len(batch)})
                flush_recorded = True

    @classmethod
    def _score_group_isolated(
        cls, model: Any, kind: str, tickets: list[Ticket]
    ) -> list[tuple[Any, BaseException | None]]:
        """Score one kind group, confining a bad request to its own ticket.

        The fast path scores the whole group in one batch-of-batches call;
        if that raises (a wrong-width row breaking the concatenate, a kind
        the model does not support), the group is rescored one ticket at a
        time so only the offending requests fail — one malformed client
        must not poison its co-batched neighbours.
        """
        try:
            return [(v, None) for v in cls._score_group(model, kind, tickets)]
        except Exception:
            outcomes: list[tuple[Any, BaseException | None]] = []
            for t in tickets:
                try:
                    outcomes.append((cls._score_group(model, kind, [t])[0], None))
                except Exception as exc:
                    outcomes.append((None, ensure_code(exc, ErrorCode.SCORING_FAILED)))
            return outcomes

    @staticmethod
    def _score_group(model: Any, kind: str, tickets: list[Ticket]) -> list[Any]:
        blocks = [t.block for t in tickets]
        if kind == "predict":
            many = getattr(model, "predict_many", None)
            preds = many(blocks) if callable(many) else [model.predict(b) for b in blocks]
            return [
                float(p[0]) if t.single_row else p for t, p in zip(tickets, preds)
            ]
        many = getattr(model, "predict_dist_many", None)
        preds = many(blocks) if callable(many) else [model.predict_dist(b) for b in blocks]
        return [
            (float(m[0]), float(v[0])) if t.single_row else (m, v)
            for t, (m, v) in zip(tickets, preds)
        ]
