"""repro.serve.obs — tracing, unified metrics, structured logging.

The observability plane for the serving stack (PR 10).  Three pieces:

* :mod:`~repro.serve.obs.trace` — request-scoped :class:`TraceContext`
  recording per-stage spans into bounded per-component
  :class:`SpanRing`\\ s with drop accounting and p99+ exemplars.
* :mod:`~repro.serve.obs.metrics` — the frozen metric-name catalogue and
  :class:`MetricsRegistry`, one snapshot over every stats surface,
  exported as Prometheus text and JSON.
* :mod:`~repro.serve.obs.logging` — :class:`StructuredLogger`, JSON
  lines correlated to traces by id, coded-error aware.

Everything here is observational: no scoring path, no ordering decision,
bit-identical serving with the plane on or off (``run_obs_bench`` gates
the overhead at ≤5 %).  See ``docs/observability.md``.
"""

from repro.serve.obs.logging import StructuredLogger
from repro.serve.obs.metrics import (
    METRIC_NAMES,
    METRICS,
    MetricSpec,
    MetricsRegistry,
    to_json,
    to_prometheus,
)
from repro.serve.obs.trace import (
    COMPONENTS,
    STAGES,
    Span,
    SpanRing,
    TraceContext,
    Tracer,
)

__all__ = [
    "COMPONENTS",
    "METRICS",
    "METRIC_NAMES",
    "MetricSpec",
    "MetricsRegistry",
    "STAGES",
    "Span",
    "SpanRing",
    "StructuredLogger",
    "TraceContext",
    "Tracer",
    "to_json",
    "to_prometheus",
]
