"""Structured logging: JSON lines, trace-correlated, coded-error aware.

The bench/chaos/CLI paths used to narrate progress with bare ``print``
calls — human-readable, machine-opaque.  :class:`StructuredLogger` emits
one JSON object per line so harness output can be grepped, joined
against trace dumps by trace id, and diffed across runs:

``{"ts": <clock>, "level": "info", "event": "...", "trace": "...", ...}``

Design rules (the same ones the rest of the obs plane holds):

* **Deterministic under injected clocks** — ``clock`` is a constructor
  parameter; tests inject a counter and pin exact output lines.
* **Coded-error aware** — passing a coded exception via ``exc=`` embeds
  its frozen :meth:`~repro.serve.errors.to_wire` image (code, category,
  severity, retryable, trace id when present) instead of a bare string.
* **Trace-correlated** — ``trace=`` accepts a trace id string or a
  :class:`~repro.serve.obs.trace.TraceContext` and writes the id, so a
  log line and the span dump for the same request share a join key.
* **Bounded** — an optional in-memory tail ring (for tests and the
  ``repro obs`` demo) holds the last ``ring`` records and counts, never
  stores, what it evicts.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Callable, IO

from repro.serve.errors import to_wire

__all__ = ["StructuredLogger"]

_LEVELS = ("debug", "info", "warn", "error")


class StructuredLogger:
    """Emit JSON-lines records to a stream, keeping a bounded tail.

    Parameters
    ----------
    stream:
        File-like target for one ``json.dumps`` line per record; ``None``
        keeps records in the tail ring only (the quiet default for
        benches, where the ring is inspected after the run).
    clock:
        Timestamp source (inject a counter for deterministic tests).
    ring:
        Tail-ring capacity; evictions increment :attr:`dropped` rather
        than vanishing (the same silent-loss rule as the span rings).
    level:
        Minimum level emitted; records below it are counted as
        :attr:`suppressed` and skipped.
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        clock: Callable[[], float] = time.perf_counter,
        ring: int = 256,
        level: str = "debug",
    ):
        if level not in _LEVELS:
            raise ValueError(f"unknown level {level!r}; choose from {_LEVELS}")
        self.stream = stream
        self.clock = clock
        self.level = level
        self._lock = threading.Lock()
        self._tail: deque[dict[str, Any]] = deque(maxlen=max(1, int(ring)))
        self._dropped = 0
        self._suppressed = 0

    # ------------------------------------------------------------------ #
    def log(
        self,
        level: str,
        event: str,
        trace: Any = None,
        exc: BaseException | None = None,
        **fields: Any,
    ) -> dict[str, Any] | None:
        """Build, retain, and (if a stream is attached) write one record.

        Returns the record dict, or ``None`` when suppressed by level.
        Extra keyword fields land verbatim in the record; they must be
        JSON-safe (the caller owns that — this layer never mutates them).
        """
        if level not in _LEVELS:
            raise ValueError(f"unknown level {level!r}; choose from {_LEVELS}")
        if _LEVELS.index(level) < _LEVELS.index(self.level):
            with self._lock:
                self._suppressed += 1
            return None
        record: dict[str, Any] = {"ts": self.clock(), "level": level,
                                  "event": event}
        trace_id = getattr(trace, "trace_id", trace)
        if isinstance(trace_id, str):
            record["trace"] = trace_id
        if exc is not None:
            record["error"] = to_wire(exc)
        if fields:
            record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if len(self._tail) == self._tail.maxlen:
                self._dropped += 1
            self._tail.append(record)
            stream = self.stream
        if stream is not None:
            stream.write(line + "\n")
        return record

    def debug(self, event: str, **fields: Any) -> dict[str, Any] | None:
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> dict[str, Any] | None:
        return self.log("info", event, **fields)

    def warn(self, event: str, **fields: Any) -> dict[str, Any] | None:
        return self.log("warn", event, **fields)

    def error(self, event: str, **fields: Any) -> dict[str, Any] | None:
        return self.log("error", event, **fields)

    # ------------------------------------------------------------------ #
    def tail(self) -> list[dict[str, Any]]:
        """The retained records, oldest first."""
        with self._lock:
            return list(self._tail)

    @property
    def dropped(self) -> int:
        """Records evicted from the tail ring (never silent)."""
        with self._lock:
            return self._dropped

    @property
    def suppressed(self) -> int:
        """Records skipped by the level filter."""
        with self._lock:
            return self._suppressed
