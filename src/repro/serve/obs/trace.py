"""Request-scoped tracing: spans, bounded span rings, trace contexts.

The taxonomy paper's whole argument is that errors must be *attributed to
their source*; this module is the serving stack's attribution substrate.
A request acquires a :class:`TraceContext` where it enters the stack (the
network edge, or ``gateway.submit`` for in-process callers) and every
layer it crosses records a **span** — one ``(component, stage)`` pair
with start/end timestamps — into its own process-local
:class:`SpanRing`.  The trace id rides the existing carriers (the JSON
request frame's optional ``"trace"`` field, the shard ``submit`` tuple),
so spans recorded in different processes for one request reassemble by
id.

Design rules, mirroring the stack's standing invariants:

* **Observational only.**  Nothing here touches a row, a result, or an
  ordering decision; with no tracer attached the instrumented code paths
  collapse to a ``None`` check (the serving layers only call in when a
  context exists), so traced and untraced serving are bit-identical —
  and the ≤5 % overhead gate in ``run_obs_bench`` keeps the traced path
  honest.
* **Frozen vocabulary.**  Components and stages are fixed sets
  (:data:`COMPONENTS`, :data:`STAGES`), exactly like the frozen
  :class:`~repro.serve.errors.ErrorCode` numbers: dashboards and tests
  key on span names, so a name may be *added* but never renamed.
  :meth:`Tracer.record` rejects unknown names loudly — a typo'd stage
  must fail the PR, not silently fork the taxonomy.
* **Bounded memory.**  Every ring has a fixed capacity; an overwrite
  increments the ring's ``dropped`` counter (exported through the
  metrics registry) instead of being silent, and p99+ outliers survive
  overwrites through a per-stage **exemplar** store that keeps the
  slowest few spans seen so far.
* **Deterministic under injected clocks.**  All timestamps come from the
  tracer's ``clock`` callable; tests inject a counter and get exact,
  reproducible span trees.  Timestamps are per-process monotonic values
  (there is no cross-process clock sync — same as any real tracing
  system without NTP discipline), so ordering comparisons are only
  meaningful between spans recorded by the same tracer.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from typing import Any, Callable

__all__ = [
    "COMPONENTS",
    "STAGES",
    "Span",
    "SpanRing",
    "TraceContext",
    "Tracer",
]

# frozen span vocabulary — add, never rename (docs/observability.md)
COMPONENTS = frozenset({
    "edge",        # AsyncServeServer: parse/admission/respond
    "gateway",     # ServingGateway: route to the per-name service
    "batcher",     # MicroBatcher: queue_wait/flush/score
    "cluster",     # ShardedServingCluster parent: route/steal/transport
    "worker",      # shard worker process: respond (result wait + send)
    "resilience",  # RetryController: retry attempts
})
STAGES = frozenset({
    "parse",       # edge: frame -> validated request
    "admission",   # edge: in-flight budget check + enqueue
    "queue_wait",  # batcher: enqueue -> drain into a flush
    "flush",       # batcher: one drained batch scoring (batch-level)
    "route",       # gateway/cluster: pick the service / shard
    "steal",       # cluster: work-stealing reroute (replaces route)
    "transport",   # cluster: send -> worker response completes the ticket
    "score",       # batcher: drain -> ticket completed
    "respond",     # edge/worker: result wait + response hand-off
    "retry",       # resilience: one re-submission attempt
})

_EXEMPLARS_PER_STAGE = 8  # slowest spans kept per (component, stage)


class Span:
    """One recorded stage crossing.  Plain data; compare by fields."""

    __slots__ = ("trace_id", "component", "stage", "start", "end", "meta")

    def __init__(
        self,
        trace_id: str,
        component: str,
        stage: str,
        start: float,
        end: float,
        meta: dict[str, Any] | None = None,
    ):
        self.trace_id = trace_id
        self.component = component
        self.stage = stage
        self.start = start
        self.end = end
        self.meta = meta

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe image (the wire/op-frame form; pid tags the process
        so merged cross-process dumps stay attributable)."""
        d: dict[str, Any] = {
            "trace": self.trace_id,
            "component": self.component,
            "stage": self.stage,
            "start": self.start,
            "end": self.end,
            "pid": os.getpid(),
        }
        if self.meta:
            d["meta"] = self.meta
        return d

    def __repr__(self) -> str:  # debugging aid only
        return (f"Span({self.trace_id!r}, {self.component}/{self.stage}, "
                f"{self.duration * 1e3:.3f}ms)")


class SpanRing:
    """Bounded per-component span storage with drop accounting.

    Appends are O(1) under one lock; an append that evicts the oldest
    span increments ``dropped`` (never silent — the metrics registry
    exports it), and spans slower than the current exemplar floor are
    additionally retained in a fixed-size slowest-seen store so tail
    outliers outlive ring churn.
    """

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ring: deque[Span] = deque(maxlen=self.capacity)
        self._dropped = 0
        self._recorded = 0
        # (component, stage) -> up-to-_EXEMPLARS_PER_STAGE slowest spans;
        # _ex_floor caches the fastest retained duration once a stage's
        # store is full, so the hot path is one float compare — the
        # replace-and-rescan only runs for spans that beat the floor
        # (rare by construction: they are the new tail outliers)
        self._exemplars: dict[tuple[str, str], list[Span]] = {}
        self._ex_floor: dict[tuple[str, str], float] = {}

    def add(self, span: Span) -> None:
        dur = span.end - span.start
        key = (span.component, span.stage)
        with self._lock:
            if len(self._ring) == self.capacity:
                self._dropped += 1
            self._ring.append(span)
            self._recorded += 1
            ex = self._exemplars.get(key)
            if ex is None:
                self._exemplars[key] = [span]
            elif len(ex) < _EXEMPLARS_PER_STAGE:
                ex.append(span)
                if len(ex) == _EXEMPLARS_PER_STAGE:
                    self._ex_floor[key] = min(s.end - s.start for s in ex)
            elif dur > self._ex_floor[key]:
                imin = min(range(len(ex)), key=lambda i: ex[i].end - ex[i].start)
                ex[imin] = span
                self._ex_floor[key] = min(s.end - s.start for s in ex)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    @property
    def recorded(self) -> int:
        with self._lock:
            return self._recorded

    def snapshot(self) -> list[Span]:
        with self._lock:
            return list(self._ring)

    def exemplars(self) -> list[Span]:
        with self._lock:
            return [s for ex in self._exemplars.values() for s in ex]


class TraceContext:
    """One request's tracing handle: (tracer, trace id, clock).

    Cheap by design — three slots, no allocation per span beyond the
    :class:`Span` itself; serving layers carry it on tickets and call
    :meth:`now`/:meth:`record` around the stages they own.
    """

    __slots__ = ("tracer", "trace_id")

    def __init__(self, tracer: "Tracer", trace_id: str):
        self.tracer = tracer
        self.trace_id = trace_id

    def now(self) -> float:
        return self.tracer.clock()

    def record(
        self,
        component: str,
        stage: str,
        start: float,
        end: float,
        meta: dict[str, Any] | None = None,
    ) -> None:
        self.tracer.record(self.trace_id, component, stage, start, end, meta)


class Tracer:
    """Process-local span collector: one bounded ring per component.

    Parameters
    ----------
    ring_size:
        Capacity of each per-component :class:`SpanRing`.  Total memory
        is ``O(len(COMPONENTS) * ring_size)`` — fixed, never grows with
        uptime.
    clock:
        Timestamp source for every span this tracer records; inject a
        counter for deterministic tests.  Defaults to
        :func:`time.perf_counter`.
    """

    def __init__(
        self,
        ring_size: int = 2048,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.ring_size = int(ring_size)
        self.clock = clock
        self._rings: dict[str, SpanRing] = {}
        self._rings_lock = threading.Lock()
        # trace ids must be unique across the processes whose dumps merge
        # (parent + shard workers), so the pid is part of the id; the
        # counter keeps them deterministic within a process
        self._ids = itertools.count()
        self._id_prefix = f"{os.getpid():x}"

    # ------------------------------------------------------------------ #
    def start_trace(self, trace_id: str | None = None) -> TraceContext:
        """A fresh context (or adopt ``trace_id`` arriving off the wire)."""
        if trace_id is None:
            trace_id = f"{self._id_prefix}-{next(self._ids):x}"
        return TraceContext(self, trace_id)

    def context(self, trace_id: str | None = None) -> TraceContext:
        """Alias of :meth:`start_trace` reading better at adopt sites."""
        return self.start_trace(trace_id)

    def now(self) -> float:
        return self.clock()

    def _ring(self, component: str) -> SpanRing:
        ring = self._rings.get(component)
        if ring is None:
            with self._rings_lock:
                ring = self._rings.setdefault(component, SpanRing(self.ring_size))
        return ring

    def record(
        self,
        trace_id: str,
        component: str,
        stage: str,
        start: float,
        end: float,
        meta: dict[str, Any] | None = None,
    ) -> None:
        """Record one span.  Unknown component/stage names are refused —
        the vocabulary is frozen exactly like the coded-error numbers."""
        if component not in COMPONENTS:
            raise ValueError(
                f"unknown span component {component!r}; frozen set: "
                f"{sorted(COMPONENTS)}")
        if stage not in STAGES:
            raise ValueError(
                f"unknown span stage {stage!r}; frozen set: {sorted(STAGES)}")
        self._ring(component).add(Span(trace_id, component, stage, start, end, meta))

    # ------------------------------------------------------------------ #
    def spans(
        self, trace_id: str | None = None, component: str | None = None
    ) -> list[Span]:
        """Snapshot of recorded spans, optionally filtered; ring order
        (oldest first) per component, components in sorted order."""
        with self._rings_lock:
            rings = dict(self._rings)
        out: list[Span] = []
        for comp in sorted(rings):
            if component is not None and comp != component:
                continue
            for span in rings[comp].snapshot():
                if trace_id is None or span.trace_id == trace_id:
                    out.append(span)
        return out

    def exemplars(self) -> list[Span]:
        """Slowest-seen spans per (component, stage) — the p99+ outliers
        that survive ring overwrites."""
        with self._rings_lock:
            rings = dict(self._rings)
        return [s for comp in sorted(rings) for s in rings[comp].exemplars()]

    def slowest(self, k: int = 10) -> list[Span]:
        """Top-``k`` spans by duration across rings *and* exemplars
        (deduplicated — an exemplar may still be in its ring)."""
        seen: set[int] = set()
        spans: list[Span] = []
        for s in self.spans() + self.exemplars():
            if id(s) not in seen:
                seen.add(id(s))
                spans.append(s)
        spans.sort(key=lambda s: s.duration, reverse=True)
        return spans[: max(0, int(k))]

    def dropped(self) -> dict[str, int]:
        """Per-component ring overwrite counts (silent-loss satellite)."""
        with self._rings_lock:
            rings = dict(self._rings)
        return {comp: rings[comp].dropped for comp in sorted(rings)}

    def recorded(self) -> dict[str, int]:
        """Per-component lifetime span counts (ring churn included)."""
        with self._rings_lock:
            rings = dict(self._rings)
        return {comp: rings[comp].recorded for comp in sorted(rings)}

    def export(self, trace_id: str | None = None) -> dict[str, Any]:
        """JSON-safe dump — what the shard ``obs`` op and the edge
        ``trace`` op frame ship: spans plus drop accounting."""
        return {
            "spans": [s.to_dict() for s in self.spans(trace_id)],
            "dropped": self.dropped(),
            "recorded": self.recorded(),
        }
