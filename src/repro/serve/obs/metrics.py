"""Unified metrics plane: one frozen catalogue, one snapshot, two exports.

Before this module the serving stack's numbers lived on five unrelated
surfaces — :class:`~repro.serve.stats.ServerStats` /
:class:`~repro.serve.stats.GatewayStats` /
:class:`~repro.serve.stats.ClusterStats` counters,
:class:`~repro.serve.stats.ResilienceStats`, ad-hoc
``AsyncServeServer.counters()`` dicts, monitor events, and (new with the
obs plane) span-ring drop counts.  :class:`MetricsRegistry` reads all of
them behind one :meth:`~MetricsRegistry.collect` snapshot and renders it
as **Prometheus text format** and **JSON** — both derived from the *same*
snapshot object, so the two exports can never disagree with each other,
and every value is read straight off the authoritative stats object, so
they agree with ``ClusterStats`` counters exactly by construction.

**Frozen metric names.**  :data:`METRICS` is the complete catalogue,
governed by the same discipline as the frozen
:class:`~repro.serve.errors.ErrorCode` numbers: a metric may be *added*,
but an existing name, type, or label scheme never changes — dashboards
and alert rules depend on them across versions
(``tests/test_obs.py`` pins the catalogue; ``docs/observability.md`` is
the human-readable contract).  The registry refuses to emit a sample
under any name outside the catalogue.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, NamedTuple

from repro.serve.obs.trace import Tracer

__all__ = [
    "METRICS",
    "METRIC_NAMES",
    "MetricSpec",
    "MetricsRegistry",
    "to_json",
    "to_prometheus",
]


class MetricSpec(NamedTuple):
    name: str
    kind: str  # "counter" | "gauge" | "summary"
    help: str


# The frozen catalogue.  Append-only: never rename, retype, or relabel an
# existing entry (the stability contract in docs/observability.md).
METRICS: tuple[MetricSpec, ...] = (
    # --- serving totals (ServerStats roll-up of the attached backend) --- #
    MetricSpec("repro_serve_requests_total", "counter",
               "Submissions seen by the serve layer (cache hits included)"),
    MetricSpec("repro_serve_rows_total", "counter",
               "Rows that reached a micro-batcher"),
    MetricSpec("repro_serve_batches_total", "counter",
               "Micro-batch flushes executed"),
    MetricSpec("repro_serve_completed_total", "counter",
               "Requests whose flush finished scoring"),
    MetricSpec("repro_serve_flushes_total", "counter",
               "Flushes by trigger (label: trigger=size|deadline|manual)"),
    MetricSpec("repro_serve_abandoned_total", "counter",
               "Tickets tombstoned by a result() timeout"),
    MetricSpec("repro_serve_cache_hits_total", "counter",
               "Prediction-cache hits"),
    MetricSpec("repro_serve_cache_misses_total", "counter",
               "Prediction-cache misses"),
    MetricSpec("repro_serve_cache_evictions_total", "counter",
               "Prediction-cache LRU evictions"),
    MetricSpec("repro_serve_cache_invalidations_total", "counter",
               "Prediction-cache version/stage invalidations"),
    MetricSpec("repro_serve_cache_entries", "gauge",
               "Live prediction-cache entries"),
    MetricSpec("repro_serve_latency_seconds", "summary",
               "Per-request enqueue-to-completion latency "
               "(quantiles over the bounded ring sample)"),
    MetricSpec("repro_serve_latency_samples_dropped_total", "counter",
               "Latency-ring samples evicted by overwrite or roll-up "
               "decimation (silent-loss accounting)"),
    MetricSpec("repro_serve_models", "gauge",
               "Model names with live serving state"),
    # --- gateway / cluster front-door counters ------------------------- #
    MetricSpec("repro_gateway_tap_errors_total", "counter",
               "Monitoring-tap exceptions swallowed (all levels summed)"),
    MetricSpec("repro_cluster_steals_total", "counter",
               "Hash-routed requests rerouted to an idle shard"),
    MetricSpec("repro_cluster_shards_live", "gauge",
               "Shards that answered the last stats fan-out"),
    # --- network edge (AsyncServeServer.counters) ---------------------- #
    MetricSpec("repro_edge_connections_total", "counter",
               "Accepted connections"),
    MetricSpec("repro_edge_requests_total", "counter",
               "Frames parsed as requests (shed included)"),
    MetricSpec("repro_edge_submitted_total", "counter",
               "Requests that reached backend.submit"),
    MetricSpec("repro_edge_responses_total", "counter",
               "Response frames handed to the transport"),
    MetricSpec("repro_edge_shed_total", "counter",
               "Requests answered OVERLOADED by admission control"),
    MetricSpec("repro_edge_wire_errors_total", "counter",
               "Frame-level failures (bad JSON, oversize, binary-at-edge)"),
    MetricSpec("repro_edge_in_flight", "gauge",
               "Submitted-but-unanswered requests right now"),
    # --- resilience plane (ResilienceStats fields 1:1) ----------------- #
    MetricSpec("repro_resilience_submits_total", "counter",
               "Requests accepted by the retry front door"),
    MetricSpec("repro_resilience_retries_total", "counter",
               "Re-submissions performed"),
    MetricSpec("repro_resilience_recovered_total", "counter",
               "Requests that succeeded after >= 1 retry"),
    MetricSpec("repro_resilience_failed_fast_total", "counter",
               "Non-retryable coded failures (zero retries)"),
    MetricSpec("repro_resilience_exhausted_total", "counter",
               "Retryable failures that ran out of deadline"),
    MetricSpec("repro_resilience_breaker_opens_total", "counter",
               "Circuit transitions closed -> open"),
    MetricSpec("repro_resilience_breaker_probes_total", "counter",
               "Half-open trial requests allowed through"),
    MetricSpec("repro_resilience_breaker_closes_total", "counter",
               "Half-open -> closed recoveries"),
    MetricSpec("repro_resilience_respawns_total", "counter",
               "Shard workers rebuilt by the supervisor"),
    MetricSpec("repro_resilience_respawn_failures_total", "counter",
               "Respawn attempts that raised"),
    # --- monitor plane ------------------------------------------------- #
    MetricSpec("repro_monitor_events_total", "counter",
               "Policy-engine events by coded class (label: code)"),
    # --- the obs plane's own accounting -------------------------------- #
    MetricSpec("repro_obs_spans_total", "counter",
               "Spans recorded per component ring (label: component)"),
    MetricSpec("repro_obs_spans_dropped_total", "counter",
               "Spans evicted by ring overwrite per component "
               "(label: component; silent-loss accounting)"),
)

METRIC_NAMES = frozenset(spec.name for spec in METRICS)
_SPEC_BY_NAME = {spec.name: spec for spec in METRICS}

_QUANTILES = ((50.0, "0.5"), (99.0, "0.99"), (99.9, "0.999"))

# ResilienceStats field -> metric name (order matches the catalogue)
_RESILIENCE_FIELDS = (
    "submits", "retries", "recovered", "failed_fast", "exhausted",
    "breaker_opens", "breaker_probes", "breaker_closes",
    "respawns", "respawn_failures",
)


class MetricsRegistry:
    """Collect every attached source into one catalogue-shaped snapshot.

    Sources attach once (``add_*``); :meth:`collect` reads them all at
    call time, so the snapshot is always current.  All sources are
    optional — a registry over just a gateway exports the serve families
    and nothing else.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._backend: Any = None            # .stats() -> Gateway/ClusterStats
        self._server: Any = None             # .counters() -> edge dict
        self._tracers: list[Tracer] = []
        self._resilience: list[Any] = []     # .stats() -> ResilienceStats
        self._event_sources: list[Callable[[], Any]] = []  # -> MonitorEvents

    # ------------------------------------------------------------------ #
    def add_backend(self, backend: Any) -> "MetricsRegistry":
        """Attach the serving backend (gateway or cluster): the source of
        the ``repro_serve_*`` / ``repro_gateway_*`` / ``repro_cluster_*``
        families, read via ``backend.stats()``."""
        with self._lock:
            self._backend = backend
        return self

    def add_server(self, server: Any) -> "MetricsRegistry":
        """Attach the network edge (``repro_edge_*``, via ``counters()``)."""
        with self._lock:
            self._server = server
        return self

    def add_tracer(self, tracer: Tracer) -> "MetricsRegistry":
        """Attach a span tracer (``repro_obs_*``; duplicates ignored)."""
        with self._lock:
            if tracer not in self._tracers:
                self._tracers.append(tracer)
        return self

    def add_resilience(self, source: Any) -> "MetricsRegistry":
        """Attach a retry controller / supervisor (``repro_resilience_*``;
        multiple sources sum field-wise, mirroring ResilienceStats)."""
        with self._lock:
            self._resilience.append(source)
        return self

    def add_events(self, provider: Callable[[], Any]) -> "MetricsRegistry":
        """Attach a monitor-event provider — a zero-arg callable returning
        an iterable of events with a ``code`` attribute (e.g.
        ``lambda: plane.events``) — counted by code into
        ``repro_monitor_events_total``."""
        with self._lock:
            self._event_sources.append(provider)
        return self

    # ------------------------------------------------------------------ #
    def collect(self) -> dict[str, Any]:
        """One point-in-time snapshot of every attached source.

        Returns ``{"families": {name: {"type", "help", "samples"}}}``
        where each sample is ``[suffix, labels, value]`` (suffix is
        ``"_sum"``/``"_count"`` for summary components, else ``""``).
        Families with no attached source are omitted; JSON-safe by
        construction, and both exporters render from this exact object.
        """
        with self._lock:
            backend = self._backend
            server = self._server
            tracers = list(self._tracers)
            resilience = list(self._resilience)
            event_sources = list(self._event_sources)

        families: dict[str, dict[str, Any]] = {}

        def emit(name: str, value: float, labels: dict[str, str] | None = None,
                 suffix: str = "") -> None:
            spec = _SPEC_BY_NAME.get(name)
            if spec is None:  # the freeze discipline, enforced at the source
                raise KeyError(f"metric {name!r} is not in the frozen catalogue")
            fam = families.setdefault(
                name, {"type": spec.kind, "help": spec.help, "samples": []}
            )
            fam["samples"].append([suffix, labels or {}, value])

        if backend is not None:
            self._collect_backend(backend, emit)
        if server is not None:
            c = server.counters()
            emit("repro_edge_connections_total", int(c["connections"]))
            emit("repro_edge_requests_total", int(c["requests"]))
            emit("repro_edge_submitted_total", int(c["submitted"]))
            emit("repro_edge_responses_total", int(c["responses"]))
            emit("repro_edge_shed_total", int(c["shed"]))
            emit("repro_edge_wire_errors_total", int(c["wire_errors"]))
            emit("repro_edge_in_flight", int(c["in_flight"]))
        for source in resilience:
            st = source.stats()
            for field in _RESILIENCE_FIELDS:
                emit(f"repro_resilience_{field}_total", int(getattr(st, field)))
        if event_sources:
            by_code: dict[str, int] = {}
            for provider in event_sources:
                for event in provider():
                    code = getattr(event, "code", None)
                    key = code.name if code is not None else "UNCODED"
                    by_code[key] = by_code.get(key, 0) + 1
            for key in sorted(by_code):
                emit("repro_monitor_events_total", by_code[key], {"code": key})
        for tracer in tracers:
            recorded = tracer.recorded()
            dropped = tracer.dropped()
            for comp in sorted(recorded):
                emit("repro_obs_spans_total", recorded[comp],
                     {"component": comp})
                emit("repro_obs_spans_dropped_total", dropped.get(comp, 0),
                     {"component": comp})
        return {"families": families}

    @staticmethod
    def _collect_backend(backend: Any, emit: Any) -> None:
        st = backend.stats()
        total = st.total
        emit("repro_serve_requests_total", int(total.requests))
        emit("repro_serve_rows_total", int(total.rows))
        emit("repro_serve_batches_total", int(total.batches))
        emit("repro_serve_completed_total", int(total.completed))
        emit("repro_serve_flushes_total", int(total.size_flushes),
             {"trigger": "size"})
        emit("repro_serve_flushes_total", int(total.deadline_flushes),
             {"trigger": "deadline"})
        emit("repro_serve_flushes_total", int(total.manual_flushes),
             {"trigger": "manual"})
        emit("repro_serve_abandoned_total", int(total.abandoned))
        emit("repro_serve_cache_hits_total", int(total.cache_hits))
        emit("repro_serve_cache_misses_total", int(total.cache_misses))
        emit("repro_serve_cache_evictions_total", int(total.cache_evictions))
        emit("repro_serve_cache_invalidations_total",
             int(total.cache_invalidations))
        emit("repro_serve_cache_entries", int(total.cache_entries))
        for q, label in _QUANTILES:
            emit("repro_serve_latency_seconds", total.percentile_ms(q) / 1e3,
                 {"quantile": label})
        emit("repro_serve_latency_seconds", float(total.total_latency_s),
             suffix="_sum")
        emit("repro_serve_latency_seconds", int(total.completed),
             suffix="_count")
        emit("repro_serve_latency_samples_dropped_total",
             int(total.latency_dropped))
        emit("repro_serve_models", len(st.per_name))
        if hasattr(st, "per_shard"):  # ClusterStats: one more rollup level
            emit("repro_gateway_tap_errors_total", int(st.tap_errors_total))
            emit("repro_cluster_steals_total", int(st.steals))
            emit("repro_cluster_shards_live", len(st.per_shard))
        else:
            emit("repro_gateway_tap_errors_total",
                 int(getattr(st, "tap_errors", 0)))

    # ------------------------------------------------------------------ #
    def prometheus(self) -> str:
        return to_prometheus(self.collect())

    def json(self) -> str:
        return to_json(self.collect())


# ---------------------------------------------------------------------- #
# exporters — both render the same collect() snapshot
# ---------------------------------------------------------------------- #
def _format_value(value: Any) -> str:
    if isinstance(value, bool):  # bool is an int; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def to_prometheus(snapshot: dict[str, Any]) -> str:
    """Render one :meth:`MetricsRegistry.collect` snapshot as Prometheus
    text exposition format (HELP/TYPE headers + samples)."""
    lines: list[str] = []
    for name, fam in snapshot["families"].items():
        lines.append(f"# HELP {name} {fam['help']}")
        lines.append(f"# TYPE {name} {fam['type']}")
        for suffix, labels, value in fam["samples"]:
            lines.append(
                f"{name}{suffix}{_format_labels(labels)} {_format_value(value)}"
            )
    return "\n".join(lines) + "\n"


def to_json(snapshot: dict[str, Any]) -> str:
    """Render the same snapshot as a stable JSON document (the shape the
    ``metrics`` op frame ships when ``fmt="json"``)."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
