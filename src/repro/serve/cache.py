"""LRU prediction cache keyed on request bytes and model version.

Serving the taxonomy models means scoring a stream in which the same job
signature appears again and again (§VI.A measured ~30 % duplicate jobs on
Theta/Cori), so memoizing per-request results pays.  The key is

    (model name, model version, request kind, blake2b(dtype·shape·bytes))

— a *content* digest of the request plus the exact model version, so a
promote can never serve a stale number even before invalidation runs.
Invalidation on promote/rollback exists to reclaim memory, not for
correctness.  Cached array results are handed out read-only, matching the
registry's freeze contract.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Hashable

import numpy as np

__all__ = ["PredictionCache", "request_digest"]


def request_digest(block: np.ndarray) -> bytes:
    """Content digest of one request block (dtype, shape, raw bytes)."""
    block = np.ascontiguousarray(block)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(block.dtype).encode())
    h.update(str(block.shape).encode())
    h.update(block.tobytes())
    return h.digest()


class PredictionCache:
    """Bounded LRU of per-request prediction results with hit/miss counters."""

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable) -> tuple[bool, Any]:
        """(found, value); counts a hit or a miss and refreshes recency."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return True, self._data[key]
            self.misses += 1
            return False, None

    def put(self, key: Hashable, value: Any) -> None:
        for arr in value if isinstance(value, tuple) else (value,):
            if isinstance(arr, np.ndarray):
                arr.setflags(write=False)  # shared across hits, like the registry
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self.evictions += 1

    def invalidate(self, name: str | None = None, version: int | None = None) -> int:
        """Drop entries for one model name (or everything); returns count.

        With ``version``, only that version's entries go — the surgical
        form ``unregister`` wants, which reclaims a dropped version's
        memory without evicting the production version's warm hits.
        """
        with self._lock:
            if name is None:
                dropped = len(self._data)
                self._data.clear()
            else:
                # only tuple keys carry a model name; foreign-keyed entries
                # (the cache is usable standalone) are never name-matched
                stale = [
                    k for k in self._data
                    if isinstance(k, tuple) and k and k[0] == name
                    and (version is None or (len(k) > 1 and k[1] == version))
                ]
                for k in stale:
                    del self._data[k]
                dropped = len(stale)
            self.invalidations += dropped
            return dropped
