"""Chaos + scale soak harness: the serve stack under hostile conditions.

The paper's thesis is that deployed models fail for reasons invisible at
training time — drift, contention, hostile weather — and the serve
stack's standing claim is that none of those conditions may cost a
client a wrong answer.  Single-kill tests exercise the recovery
*mechanisms*; this module is the storm-scale *evidence*: one soak
registers hundreds-to-thousands of model versions across shards, replays
Zipf-skewed multi-tenant traffic in bursts, and continuously injects
every fault class at once —

* **kill/respawn storms**: live workers hard-killed mid-flight while the
  :class:`~repro.serve.resilience.ShardSupervisor` respawns them and the
  :class:`~repro.serve.resilience.RetryController` absorbs the crashes;
* **live mutation churn**: promote/rollback broadcasts racing the kill
  storm (the ack-gated path the shared-fan-out-deadline fix keeps from
  stalling);
* **poisoned request floods**: malformed rows that must fail fast with a
  client-coded error, zero retries, and zero damage to co-batched
  neighbours;
* **multi-name drift**: request streams for several tenants shift to a
  simulator-generated hostile regime (noisier platform, degraded I/O
  weather, novel applications) while a
  :class:`~repro.serve.monitor.plane.MonitoringPlane` watches PSI windows
  at the cluster front door;
* **SLO-driven scaling**: an :class:`~repro.serve.autoscale.SLOAutoscaler`
  steps against the windowed tail latency, growing and shrinking the
  fleet under fire.

The witness is the same as everywhere else in the serve layer, just
bigger: every surviving request's value must be **bit-identical**
(exact ``==``) to a direct predict of one of its name's registered
versions (any version — promote/rollback may legally move the production
alias between submit and score), no client may ever see a transient
coded error, and p50/p99/p999 tail latencies are recorded into the
``BENCH_chaos.json`` trajectory so storm damage shows up as a number,
not an anecdote.

Models are deliberately tiny (:class:`ChaosLinearModel` — a per-row
affine map whose result is independent of batch shape), so a soak can
register 500+ versions in seconds and the harness measures the *serving
machinery* under stress, not tree traversal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.serve.autoscale import SLOAutoscaler
from repro.serve.errors import classify_exception
from repro.serve.monitor import MonitoringPlane, PsiThresholdRule
from repro.serve.registry import ModelRegistry
from repro.serve.resilience import RetryController, ShardSupervisor
from repro.serve.shard import ShardedServingCluster

__all__ = ["ChaosConfig", "ChaosLinearModel", "run_chaos_bench", "run_chaos_soak"]


class ChaosLinearModel:
    """Tiny frozen affine model: ``predict(X)[i] == float(X[i] @ w) + b``.

    Scored **row-wise on purpose**: a whole-block matmul may take a
    different BLAS path per batch shape, and the chaos witness demands
    exact equality between a micro-batched cluster result and a direct
    single-row predict.  Per-row ``row @ w`` is the same reduction at
    every batch size, so bit-identity is independent of how the storm
    happened to coalesce the batches.  Module-level and array-only, so
    500+ versions pickle to shard workers in milliseconds.
    """

    def __init__(self, w: np.ndarray, b: float):
        self.w = np.asarray(w, dtype=float)
        self.b = float(b)

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        if X.shape[1] != self.w.shape[0]:
            raise ValueError(
                f"expected {self.w.shape[0]} features, got {X.shape[1]}"
            )
        return np.array([float(row @ self.w) + self.b for row in X])


def chaos_model(seed: int, name_idx: int, version: int, d: int) -> ChaosLinearModel:
    """The deterministic model for one (name, version) pair — any process
    can rebuild it to compute the soak's direct-predict witness."""
    rng = np.random.default_rng((seed, name_idx, version))
    return ChaosLinearModel(rng.normal(0.0, 1.0, d), float(rng.normal(0.0, 1.0)))


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Rank-``i`` probability ∝ ``1 / i**s`` — the skew of multi-tenant
    traffic (a few hot names, a long cold tail)."""
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** -float(s)
    return w / w.sum()


@dataclass(frozen=True)
class ChaosConfig:
    """One soak's knobs; the defaults are the fast-test shape, and
    :func:`run_chaos_bench` overrides them to storm scale."""

    n_names: int = 8                # tenants
    versions_per_name: int = 4      # registered versions per tenant
    n_features: int = 12
    n_shards: int = 2               # initial fleet width
    route: str = "hash"
    n_requests: int = 320           # total good requests
    burst: int = 32                 # requests submitted per burst
    zipf_s: float = 1.1             # tenant popularity skew
    n_kills: int = 5                # hard worker kills across the soak
    churn_every: int = 3            # bursts between promote/rollback flips
    poison_every: int = 4           # bursts between malformed floods
    poison_rows: int = 2            # malformed requests per flood
    drift_names: int = 2            # tenants whose stream drifts mid-soak
    source: str = "synthetic"       # "synthetic" | "sim" (simulator pools)
    sim_jobs: int = 600             # simulator jobs per pool (source="sim")
    autoscale: bool = True
    slo_target_ms: float = 50.0
    min_shards: int = 1
    max_shards: int = 4
    max_batch: int = 64
    max_delay: float = 0.002
    deadline_s: float = 30.0        # per-request retry budget
    request_timeout: float = 10.0   # cluster fan-out budget
    psi_threshold: float = 0.5
    monitor_window: int = 64
    seed: int = 0


def _request_pools(cfg: ChaosConfig) -> tuple[np.ndarray, np.ndarray]:
    """(healthy, drifted) request-row pools with identical widths.

    ``source="sim"`` draws both from the simulator — the drifted pool
    turns the paper's §VIII knobs hostile (noisier platform, degraded
    I/O weather, a 30% novel-application mix) so the PSI windows see a
    real regime change, not a synthetic scale factor.  ``"synthetic"``
    keeps the fast-test shape with the monitor bench's shifted-rows
    idiom.
    """
    if cfg.source == "sim":
        from dataclasses import replace

        from repro.config import preset
        from repro.data import build_dataset, feature_matrix

        base_cfg = preset("theta", n_jobs=cfg.sim_jobs, seed=cfg.seed)
        healthy, _ = feature_matrix(build_dataset(base_cfg), "posix")
        drift_cfg = replace(
            base_cfg,
            seed=cfg.seed + 77,
            platform=replace(base_cfg.platform, noise_sigma=0.08),
            weather=replace(base_cfg.weather, ou_sigma=0.20,
                            degradations_per_year=40.0),
            workload=replace(base_cfg.workload, ood_fraction=0.30,
                             deployment_cutoff=0.0),
        )
        drifted, _ = feature_matrix(build_dataset(drift_cfg), "posix")
        return healthy, drifted
    rng = np.random.default_rng(cfg.seed + 1)
    healthy = rng.normal(0.0, 1.0, (max(cfg.n_requests, 256), cfg.n_features))
    return healthy, healthy * 1.8 + 1.2


def run_chaos_soak(cfg: ChaosConfig = ChaosConfig()) -> dict:
    """One full soak; returns a flat JSON-safe result dict.

    The dict carries the acceptance evidence: ``client_errors`` (must be
    0 — no transient failure may reach a client through the retry front
    door), ``mismatches`` (must be 0 — every survivor bit-identical to a
    direct predict of a registered version), the wall-clock
    ``p50_ms``/``p99_ms``/``p999_ms`` tail, and the fleet's own
    ring-sampled percentiles from the new
    :attr:`~repro.serve.stats.ServerStats.latency_samples` accounting.
    """
    rng = np.random.default_rng(cfg.seed)
    healthy_pool, drifted_pool = _request_pools(cfg)
    d = healthy_pool.shape[1]
    names = [f"tenant-{i:03d}" for i in range(cfg.n_names)]
    weights = zipf_weights(cfg.n_names, cfg.zipf_s)

    registry = ModelRegistry()
    cluster = ShardedServingCluster(
        registry,
        n_shards=cfg.n_shards,
        route=cfg.route,
        max_batch=cfg.max_batch,
        max_delay=cfg.max_delay,
        request_timeout=cfg.request_timeout,
    )
    plane = supervisor = autoscaler = None
    t_start = time.perf_counter()
    try:
        # ---- phase 1: registration storm ----------------------------- #
        t0 = time.perf_counter()
        models: dict[tuple[int, int], ChaosLinearModel] = {}
        for i, name in enumerate(names):
            for v in range(1, cfg.versions_per_name + 1):
                models[(i, v)] = chaos_model(cfg.seed, i, v, d)
                cluster.register(name, models[(i, v)])
            # production starts mid-stack so both promote and rollback
            # churn directions stay legal all soak long
            mid = max(1, cfg.versions_per_name // 2)
            registry.promote(name, 1)
            if mid != 1:
                registry.promote(name, mid)
        register_s = time.perf_counter() - t0
        n_versions = cfg.n_names * cfg.versions_per_name

        # ---- monitoring plane: multi-name drift watch ---------------- #
        drift_names = names[: cfg.drift_names]
        plane = MonitoringPlane(
            registry, window=cfg.monitor_window,
            min_window=cfg.monitor_window, eval_every=cfg.monitor_window // 2,
            cooldown_s=0.5,
        )
        for name in drift_names:
            plane.watch(name, reference=healthy_pool)
        if drift_names:
            plane.add_rule(
                PsiThresholdRule(threshold=cfg.psi_threshold, action="alert"),
                names=drift_names,
            )
        plane.attach(cluster)

        # ---- resilience + scaling plane ------------------------------ #
        controller = RetryController(
            cluster, deadline_s=cfg.deadline_s, seed=cfg.seed,
            breaker_reset_s=0.05,
        )
        supervisor = ShardSupervisor(cluster, check_interval_s=0.02)
        supervisor.start()
        autoscaler = None
        if cfg.autoscale:
            autoscaler = SLOAutoscaler(
                cluster,
                target_p99_ms=cfg.slo_target_ms,
                min_shards=cfg.min_shards,
                max_shards=cfg.max_shards,
                calm_windows=3,
                up_cooldown_s=0.05,
                down_cooldown_s=0.5,
            )
            autoscaler.step()  # baseline window

        # ---- phase 2: the storm -------------------------------------- #
        n_bursts = -(-cfg.n_requests // cfg.burst)
        kill_bursts = set(
            np.linspace(1, max(1, n_bursts - 1), num=cfg.n_kills, dtype=int).tolist()
        ) if cfg.n_kills else set()
        latencies: list[float] = []
        client_errors: list[str] = []
        fleet_total = None  # last fleet roll-up with a non-empty latency ring
        mismatches = 0
        kills = churns = 0
        poison_sent = poison_failed_fast = 0
        poison_slow_codes: list[str] = []
        submitted = 0

        for b in range(n_bursts):
            take = min(cfg.burst, cfg.n_requests - submitted)
            if take <= 0:
                break
            drifting = b >= n_bursts // 2  # second half: the regime moves
            picks = rng.choice(cfg.n_names, size=take, p=weights)
            batch = []
            for name_idx in picks:
                name = names[name_idx]
                pool = (drifted_pool if drifting and name in drift_names
                        else healthy_pool)
                row = pool[int(rng.integers(len(pool)))]
                batch.append((name_idx, row, time.perf_counter(),
                              controller.submit(name, row)))
            submitted += take

            if b in kill_bursts:  # kill with this burst still in flight
                live = cluster.live_shards()
                if live:
                    cluster.kill_shard(int(rng.choice(live)))
                    kills += 1
            if cfg.churn_every and b % cfg.churn_every == 0:
                name = names[int(rng.integers(cfg.n_names))]
                if rng.random() < 0.5:
                    try:
                        registry.rollback(name)
                    except LookupError:
                        pass  # no history yet: the promote arm feeds it
                else:
                    version = int(rng.integers(1, cfg.versions_per_name + 1))
                    registry.promote(name, version)
                churns += 1
            if cfg.poison_every and b % cfg.poison_every == 0:
                for _ in range(cfg.poison_rows):
                    bad = rng.normal(0.0, 1.0, d + 3)  # wrong width
                    poison_sent += 1
                    try:
                        controller.submit(names[0], bad).result(timeout=cfg.deadline_s)
                    except Exception as exc:
                        code = classify_exception(exc)
                        if code.category == "client":
                            poison_failed_fast += 1
                        else:
                            poison_slow_codes.append(code.name)

            for name_idx, row, t_submit, ticket in batch:
                try:
                    value = ticket.result(timeout=cfg.deadline_s)
                except Exception as exc:
                    client_errors.append(classify_exception(exc).name)
                    continue
                latencies.append(time.perf_counter() - t_submit)
                # bit-identity witness: exactly one registered version of
                # this tenant must reproduce the value — promote/rollback
                # may have moved production between submit and score, so
                # any version is a legal linearization point
                if not any(
                    value == float(row @ models[(int(name_idx), v)].w)
                    + models[(int(name_idx), v)].b
                    for v in range(1, cfg.versions_per_name + 1)
                ):
                    mismatches += 1
            if autoscaler is not None:
                autoscaler.step()
            snap = cluster.stats().total
            if snap.latency_samples:
                fleet_total = snap

        # ---- phase 3: verdicts --------------------------------------- #
        lat_ms = np.array(latencies) * 1e3
        total = cluster.stats().total
        if not total.latency_samples and fleet_total is not None:
            # a kill/scale-down at the storm's tail can leave only
            # freshly-respawned workers with empty rings; report the last
            # burst's fleet tails instead of a vacuous zero
            total = fleet_total
        drift_alerts = sum(1 for e in plane.events if e.action == "alert")
        sup = supervisor.stats()
        res = controller.stats()
        result = {
            "config": "chaos-soak",
            "source": cfg.source,
            "route": cfg.route,
            "n_names": cfg.n_names,
            "n_versions": n_versions,
            "n_features": d,
            "n_shards_initial": cfg.n_shards,
            "n_shards_final": cluster.n_shards,
            "n_requests": submitted,
            "completed": len(latencies),
            "register_s": round(register_s, 4),
            "soak_s": round(time.perf_counter() - t_start, 4),
            "kills": kills,
            "respawns": sup.respawns,
            "churns": churns,
            "retries": res.retries,
            "recovered": res.recovered,
            "breaker_opens": res.breaker_opens,
            "poison_sent": poison_sent,
            "poison_failed_fast": poison_failed_fast,
            "poison_slow_codes": poison_slow_codes,
            "drift_alerts": drift_alerts,
            "client_errors": len(client_errors),
            "client_error_codes": sorted(set(client_errors)),
            "mismatches": mismatches,
            "p50_ms": round(float(np.percentile(lat_ms, 50)), 4) if len(lat_ms) else 0.0,
            "p99_ms": round(float(np.percentile(lat_ms, 99)), 4) if len(lat_ms) else 0.0,
            "p999_ms": round(float(np.percentile(lat_ms, 99.9)), 4) if len(lat_ms) else 0.0,
            "fleet_p50_ms": round(total.p50_ms, 4),
            "fleet_p99_ms": round(total.p99_ms, 4),
            "fleet_p999_ms": round(total.p999_ms, 4),
            "scale_ups": autoscaler.scale_ups if autoscaler else 0,
            "scale_downs": autoscaler.scale_downs if autoscaler else 0,
            "scale_failures": autoscaler.scale_failures if autoscaler else 0,
        }
        return result
    finally:
        if supervisor is not None:
            supervisor.stop()
        if plane is not None:
            plane.detach()
        cluster.close()


def run_chaos_bench(
    n_names: int = 25,
    versions_per_name: int = 20,
    n_shards: int = 2,
    n_requests: int = 2000,
    n_kills: int = 6,
    max_shards: int = 4,
    slo_target_ms: float = 50.0,
    source: str = "sim",
    seed: int = 0,
) -> dict:
    """Storm-scale soak with the committed-trajectory defaults:
    ≥500 registered versions, ≥5 kills under churn, simulator-driven
    drift, autoscaler live."""
    return run_chaos_soak(ChaosConfig(
        n_names=n_names,
        versions_per_name=versions_per_name,
        n_shards=n_shards,
        n_requests=n_requests,
        burst=64,
        n_kills=n_kills,
        churn_every=3,
        poison_every=5,
        poison_rows=3,
        drift_names=3,
        source=source,
        autoscale=True,
        slo_target_ms=slo_target_ms,
        max_shards=max_shards,
        seed=seed,
    ))
