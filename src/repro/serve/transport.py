"""Pluggable parent↔worker transports for the sharded serving cluster.

Before this module the cluster's communication path was an opaque
boundary: :mod:`multiprocessing` pipes pinned the cluster to one node and
spoke a second, pickle-only wire format hidden behind the JSON frame
protocol the network front door ships.  The paper's taxonomy argument —
error sources compound across system boundaries, so every boundary must
be observable and fault-isolated — applies here exactly: this module
makes the boundary explicit, typed, and swappable.

:class:`Transport` is the interface (``send``/``recv`` framed messages,
``close``); every failure it raises is one exception type,
:class:`TransportError`, pre-annotated with the coded vocabulary's
``TRANSPORT_ERROR`` (510, critical, retryable) so breakers, the retry
controller, and the supervisor classify channel failures through the
taxonomy instead of catching ``BrokenPipeError``/``OSError`` ad hoc.

Two implementations:

* :class:`PipeTransport` — today's duplex :mod:`multiprocessing` pipe,
  behaviour-preserving (pickle round-trip per message, single node).
* :class:`SocketTransport` — the same length-prefixed frame protocol the
  network edge speaks (:mod:`repro.serve.net.protocol`), extended with
  binary ndarray frames: each message is one JSON envelope frame plus N
  binary blob frames.  ndarrays cross as raw dtype/shape/order-tagged
  buffer bytes (bit-identical by construction, no JSON float repr);
  scalars ride inline in the envelope (``repr`` round-trip is IEEE-754
  exact); tuples are tagged so ``predict_dist``'s ``(mean, var)`` shape
  survives; anything richer (stats snapshots, exceptions) falls back to
  a pickle blob.  The handshake is a per-spawn loopback listener plus a
  random token hello, which is exactly the shape a future multi-node
  deployment needs — only the bind address stops being ``127.0.0.1``.

The frame cap here is :data:`SHARD_MAX_FRAME_BYTES` (1 GiB), not the
network edge's 8 MiB ``MAX_FRAME_BYTES``: shard traffic legitimately
carries multi-hundred-MiB pickled model snapshots on ``register``.
"""

from __future__ import annotations

import pickle
import secrets
import socket
import threading
from typing import Any

import numpy as np

from repro.serve.errors import CodedError, ErrorCode
from repro.serve.net.protocol import (
    decode_ndarray,
    decode_payload,
    encode_binary_frame,
    encode_frame,
    encode_ndarray,
    recv_any_frame,
)

__all__ = [
    "SHARD_MAX_FRAME_BYTES",
    "PipeTransport",
    "SocketListener",
    "SocketTransport",
    "Transport",
    "TransportError",
    "connect_worker_transport",
    "make_worker_transport",
]

SHARD_MAX_FRAME_BYTES = 1 << 30  # register ships whole pickled models


class TransportError(ConnectionError):
    """The one exception every transport failure surfaces as.

    Born coded: the class-level ``code`` attribute means
    :func:`repro.serve.errors.classify_exception` maps it to
    ``TRANSPORT_ERROR`` (5xx transient, retryable) without any caller
    annotating — the uniform typed failure channel the resilience plane
    keys on.
    """

    code = ErrorCode.TRANSPORT_ERROR


class Transport:
    """Interface: framed messages between the cluster parent and a worker.

    ``send(msg)`` ships one picklable tuple; ``recv()`` blocks for the
    next one.  Both raise :class:`TransportError` on any channel failure —
    including the peer closing, which deliberately is *not* a separate
    "clean EOF" path: the caller's reaction (stop the loop, fail pending
    work) is the same either way.  ``close()`` is idempotent and unblocks
    a concurrent ``recv``.
    """

    kind = "abstract"

    def send(self, msg: tuple) -> None:
        raise NotImplementedError

    def recv(self) -> tuple:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class PipeTransport(Transport):
    """Today's channel: one duplex :mod:`multiprocessing` pipe end."""

    kind = "pipe"

    def __init__(self, conn: Any):
        self._conn = conn

    def send(self, msg: tuple) -> None:
        try:
            self._conn.send(msg)
        except (BrokenPipeError, OSError, ValueError) as exc:
            raise TransportError(f"pipe send failed: {exc}") from exc

    def recv(self) -> tuple:
        try:
            return self._conn.recv()
        except (EOFError, OSError) as exc:
            raise TransportError(f"pipe closed: {exc}") from exc

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------- #
# socket transport: JSON envelope + binary blob frames
# ---------------------------------------------------------------------- #
# Envelope tree encoding.  Scalars ride inline only at their *exact*
# builtin types — np.float64 is an instance of float, but must take the
# pickle path so the decoded value's type matches what PipeTransport's
# pickle round-trip would have produced (type parity, not just value
# parity, keeps the two transports interchangeable in tests).
_INLINE_TYPES = (type(None), bool, int, float, str)


def _encode_tree(obj: Any, blobs: list[bytes]) -> Any:
    if type(obj) in _INLINE_TYPES:
        return obj
    if type(obj) is np.ndarray and not obj.dtype.hasobject:
        blobs.append(encode_ndarray(obj))
        return {"__nd__": len(blobs) - 1}
    if type(obj) in (bytes, bytearray):
        blobs.append(bytes(obj))
        return {"__bytes__": len(blobs) - 1}
    if type(obj) is tuple:
        return {"__tuple__": [_encode_tree(x, blobs) for x in obj]}
    if type(obj) is list:
        return [_encode_tree(x, blobs) for x in obj]
    blobs.append(pickle.dumps(obj))  # stats, exceptions, np scalars, dicts
    return {"__pickle__": len(blobs) - 1}


def _decode_tree(node: Any, blobs: list[bytes]) -> Any:
    if isinstance(node, list):
        return [_decode_tree(x, blobs) for x in node]
    if isinstance(node, dict):
        if "__nd__" in node:
            return decode_ndarray(blobs[node["__nd__"]])
        if "__bytes__" in node:
            return blobs[node["__bytes__"]]
        if "__tuple__" in node:
            return tuple(_decode_tree(x, blobs) for x in node["__tuple__"])
        if "__pickle__" in node:
            return pickle.loads(blobs[node["__pickle__"]])
        raise ValueError(f"unknown envelope tag {sorted(node)!r}")
    return node


class SocketTransport(Transport):
    """The frame protocol over one connected TCP socket.

    One message = one JSON envelope frame ``{"m": <tree>, "b": <n>}``
    followed by exactly ``n`` binary frames (the blobs the tree's tags
    index into).  The whole message goes out in a single ``sendall`` so
    concurrent envelope/blob interleaving is impossible even without the
    internal send lock (which guards against multi-threaded senders).
    """

    kind = "socket"

    def __init__(self, sock: socket.socket, max_frame_bytes: int = SHARD_MAX_FRAME_BYTES):
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not TCP (tests may hand a socketpair); latency knob only
        self._sock = sock
        self._max = max_frame_bytes
        self._send_lock = threading.Lock()

    def send(self, msg: tuple) -> None:
        blobs: list[bytes] = []
        tree = _encode_tree(msg, blobs)
        data = encode_frame({"m": tree, "b": len(blobs)})
        data += b"".join(encode_binary_frame(b) for b in blobs)
        try:
            with self._send_lock:
                self._sock.sendall(data)
        except (OSError, ValueError) as exc:
            raise TransportError(f"socket send failed: {exc}") from exc

    def _recv_any(self) -> tuple[bool, bytes]:
        try:
            got = recv_any_frame(self._sock, self._max)
        except CodedError as exc:  # FRAME_TOO_LARGE: peer is out of contract
            raise TransportError(f"socket recv failed: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"socket closed: {exc}") from exc
        if got is None:
            raise TransportError("peer closed the socket")
        return got

    def recv(self) -> tuple:
        is_binary, payload = self._recv_any()
        if is_binary:
            raise TransportError("protocol violation: blob frame without envelope")
        try:
            env = decode_payload(payload)
            n_blobs = env["b"]
            if not isinstance(n_blobs, int) or n_blobs < 0:
                raise ValueError(f"bad blob count {n_blobs!r}")
        except (ValueError, KeyError, TypeError) as exc:
            raise TransportError(f"malformed envelope: {exc}") from exc
        blobs: list[bytes] = []
        for _ in range(n_blobs):
            is_binary, blob = self._recv_any()
            if not is_binary:
                raise TransportError("protocol violation: envelope where blob expected")
            blobs.append(blob)
        try:
            msg = _decode_tree(env["m"], blobs)
        except Exception as exc:
            raise TransportError(f"malformed message body: {exc}") from exc
        if not isinstance(msg, tuple):
            raise TransportError(f"message must decode to a tuple, got {type(msg).__name__}")
        return msg

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)  # unblocks a concurrent recv
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class SocketListener:
    """Per-spawn accept point for one worker's :class:`SocketTransport`.

    The parent binds an ephemeral loopback port *before* forking the
    worker, hands ``(address, token)`` through the process args, and
    :meth:`accept` verifies the token hello before trusting the
    connection — a stray local process that races the connect cannot
    impersonate the worker.  Multi-node is the same dance with a
    non-loopback bind address.
    """

    def __init__(self, host: str = "127.0.0.1"):
        self._sock = socket.create_server((host, 0))
        self.address: tuple[str, int] = self._sock.getsockname()[:2]
        self.token = secrets.token_hex(16)

    def accept(self, timeout: float = 30.0) -> SocketTransport:
        self._sock.settimeout(timeout)
        try:
            conn, _ = self._sock.accept()
        except (socket.timeout, OSError) as exc:
            raise TransportError(f"worker never connected: {exc}") from exc
        transport = SocketTransport(conn)
        try:
            hello = transport.recv()
        except TransportError:
            transport.close()
            raise
        if hello != ("hello", self.token):
            transport.close()
            raise TransportError("worker handshake token mismatch")
        return transport

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def connect_worker_transport(
    address: tuple[str, int], token: str, timeout: float = 30.0
) -> SocketTransport:
    """Worker side of the handshake: connect back and say hello."""
    try:
        sock = socket.create_connection(address, timeout=timeout)
    except OSError as exc:
        raise TransportError(f"cannot reach parent at {address}: {exc}") from exc
    sock.settimeout(None)  # back to blocking: recv() waits for work
    transport = SocketTransport(sock)
    transport.send(("hello", token))
    return transport


def make_worker_transport(spec: tuple) -> Transport:
    """Build the worker's transport end from its picklable spawn spec:
    ``("pipe", conn)`` or ``("socket", (host, port), token)``."""
    if spec[0] == "pipe":
        return PipeTransport(spec[1])
    if spec[0] == "socket":
        return connect_worker_transport(spec[1], spec[2])
    raise ValueError(f"unknown transport spec {spec[0]!r}")
