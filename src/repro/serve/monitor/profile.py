"""Sliding-window drift profile of one served name's request stream.

The taxonomy paper's deployment sections (§VIII; Madireddy et al., ref
[5]) show that a deployed model's feature stream drifts away from its
training corpus — and that the drift is *detectable before labels arrive*
via distribution distances on the features alone.  :class:`StreamProfile`
is the online form: served rows accumulate into a fixed-size ring buffer
(bounded memory, no matter how long the service runs) and the current
window is scored against a frozen training reference with the
precomputed per-column binning of
:class:`~repro.stats.drift.ReferenceBinning` — windowed PSI and KS per
feature, numerically identical to the offline
:class:`~repro.stats.drift.DriftMonitor` on the same window.

Everything here is a pure function of the observed row sequence: no wall
time, no randomness — which is what makes the monitoring plane
deterministic under an injected clock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.stats.drift import ReferenceBinning

__all__ = ["StreamProfile", "WindowDriftReport"]


@dataclass(frozen=True)
class WindowDriftReport:
    """Drift scores of one window snapshot against the reference."""

    psi: np.ndarray          # per-feature PSI of the window
    ks: np.ndarray | None    # per-feature KS distance (None unless requested)
    names: tuple[str, ...]
    window_rows: int         # rows in the scored window
    n_observed: int          # rows observed over the profile's lifetime

    @property
    def max_psi(self) -> float:
        return float(self.psi.max()) if self.psi.size else 0.0

    @property
    def max_ks(self) -> float:
        return float(self.ks.max()) if self.ks is not None and self.ks.size else 0.0

    def worst(self, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` features with the highest windowed PSI."""
        order = np.argsort(self.psi)[::-1][:k]
        return [(self.names[i], float(self.psi[i])) for i in order]


class StreamProfile:
    """Ring-buffered window of served rows, scored against a reference.

    Parameters
    ----------
    reference:
        (n_ref, d) training-reference sample (the registry's
        :class:`~repro.serve.registry.ReferenceSnapshot` feature matrix).
        Binned once at construction; the profile never touches it again.
    names:
        Optional feature names for reports.
    window:
        Ring-buffer capacity in rows — the profile's entire memory
        footprint is one ``(window, d)`` float array.  Older rows are
        overwritten in arrival order (sliding window).
    min_window:
        Rows required before :meth:`drift` scores (a five-row window's
        PSI is noise, not evidence); clamped to ``window``.
    n_bins:
        Reference quantile bins per feature.
    """

    def __init__(
        self,
        reference: np.ndarray,
        names: list[str] | None = None,
        window: int = 512,
        min_window: int = 64,
        n_bins: int = 10,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.binning = ReferenceBinning(reference, n_bins=n_bins, names=names)
        self.window_size = int(window)
        self.min_window = min(int(min_window), self.window_size)
        self._lock = threading.Lock()  # observers are concurrent submitters
        self._buf = np.empty((self.window_size, self.binning.n_features))
        self._pos = 0           # next write slot
        self._fill = 0          # valid rows in the buffer
        self._observed = 0      # lifetime row count (folded + pending)
        # serving hot path: a per-row ring write costs ~1 µs of NumPy
        # dispatch, a list.append costs ~0.1 µs — so observations stage in
        # a small pending list (private copies, arrival order) and fold
        # into the ring vectorized once it reaches _fold_at rows.  Bounded
        # like everything else: the pending list never exceeds the fold
        # threshold, and folding is amortized O(1) per row.
        self._pending: list[np.ndarray] = []
        self._pending_rows = 0
        self._fold_at = min(self.window_size, 128)
        self._d = self.binning.n_features  # cached for the hot path

    # ------------------------------------------------------------------ #
    def observe(self, row: np.ndarray, copy: bool = True) -> int:
        """Fold one request — a (d,) row or an (m, d) block — into the
        window; returns the number of rows folded.

        By default takes a private copy (the caller may legally reuse its
        buffer, the micro-batcher contract) and stages it; the ring buffer
        itself is updated in vectorized chunks.  ``copy=False`` is the
        serving taps' fast path — the gateway hands over the ticket's own
        float64 private block, which nothing mutates after submission, so
        the array is trusted as-is (a non-float64 input would surface at
        fold time as a dtype cast, never as wrong drift numbers).
        """
        d = self._d
        if copy:
            arr = np.array(row, dtype=float)
        elif isinstance(row, np.ndarray):
            arr = row
        else:
            arr = np.asarray(row, dtype=float)
        shape = arr.shape
        if len(shape) == 2 and shape[1] == d:  # the serving taps' shape
            m = shape[0]
        elif len(shape) == 1 and shape[0] == d:
            m = 1
        else:
            raise ValueError(
                f"expected rows with {d} features, got shape {np.shape(row)}"
            )
        lock = self._lock
        lock.acquire()
        try:
            self._pending.append(arr)
            self._pending_rows += m
            self._observed += m
            if self._pending_rows >= self._fold_at:
                self._fold_locked()
        finally:
            lock.release()
        return m

    def _fold_locked(self) -> None:
        """Move pending rows into the ring buffer (caller holds the lock)."""
        if not self._pending:
            return
        arr = self._pending[0] if len(self._pending) == 1 else np.vstack(self._pending)
        if arr.ndim == 1:
            arr = arr[None, :]
        self._pending = []
        self._pending_rows = 0
        m = arr.shape[0]
        if m >= self.window_size:
            # a chunk at least as large as the window replaces it outright
            self._buf[:] = arr[m - self.window_size:]
            self._pos = 0
            self._fill = self.window_size
            return
        end = self._pos + m
        if end <= self.window_size:
            self._buf[self._pos:end] = arr
        else:
            split = self.window_size - self._pos
            self._buf[self._pos:] = arr[:split]
            self._buf[:end - self.window_size] = arr[split:]
        self._pos = end % self.window_size
        self._fill = min(self._fill + m, self.window_size)

    @property
    def n_observed(self) -> int:
        """Lifetime row count (including rows still staged)."""
        return self._observed

    @property
    def window_fill(self) -> int:
        """Valid rows currently windowed (≤ ``window``), staged included."""
        with self._lock:
            return min(self._fill + self._pending_rows, self.window_size)

    def window(self) -> np.ndarray:
        """Copy of the window rows in arrival order (oldest first)."""
        with self._lock:
            self._fold_locked()
            if self._fill < self.window_size:
                return self._buf[:self._fill].copy()
            return np.concatenate([self._buf[self._pos:], self._buf[:self._pos]])

    # ------------------------------------------------------------------ #
    def drift(self, ks: bool = False) -> WindowDriftReport | None:
        """Score the current window; ``None`` until ``min_window`` rows.

        PSI is always computed (one vectorized pass over the window); the
        KS distances cost a per-column sort and are opt-in — the periodic
        policy evaluation runs PSI-only to stay inside the monitor's
        overhead budget, dashboards ask for both.
        """
        if self.window_fill < max(self.min_window, 1):
            return None
        win = self.window()
        return WindowDriftReport(
            psi=self.binning.psi(win),
            ks=self.binning.ks(win) if ks else None,
            names=tuple(self.binning.names),
            window_rows=int(win.shape[0]),
            n_observed=self.n_observed,
        )
