"""Champion–challenger shadow scoring over the registry's staged versions.

The registry's staged rollout (register → promote) assumes somebody
validated the staged version before traffic moved.  :class:`ShadowScorer`
is that somebody, online: it mirrors a deterministic fraction of the
production stream against a *staged* (non-production) version and keeps
two windowed signals —

* **disagreement** — |production − challenger| per mirrored request,
  available immediately and label-free (a challenger that answers wildly
  differently deserves scrutiny before any error number exists), and
* **windowed error** — |prediction − outcome| for each side on the rows
  whose ground truth has arrived (HPC I/O throughput labels land in
  hindsight, when the job's Darshan log is processed).

The challenger never *changes* the serving path: mirrored rows are
rescored against the frozen staged artifact (registered models are
immutable and lock-free to score), so production numbers stay
bit-identical whether or not a shadow runs.  It does *cost* the serving
path compute, though — the mirror runs inside the flush's result hook,
so a mirrored request's challenger predict happens on the scoring thread
before its ticket completes.  ``fraction`` is the dial: it bounds the
extra scoring to ``fraction`` of production volume (an async mirror that
moves this off the flush thread is a ROADMAP follow-up).  A
:class:`~repro.serve.monitor.policy.ShadowWinnerRule` promotes the
challenger only when its windowed error beats production's with enough
labeled evidence.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.serve.monitor.ring import ScalarWindow
from repro.serve.registry import ModelRegistry

__all__ = ["ShadowReport", "ShadowScorer"]


@dataclass(frozen=True)
class ShadowReport:
    """Point-in-time champion–challenger comparison."""

    name: str
    challenger_version: int
    mirrored: int            # production requests rescored by the challenger
    disagreement_mean: float  # windowed mean |production - challenger|
    n_outcomes: int          # labeled rows scored so far
    champion_error: float    # windowed mean |champion - outcome|
    challenger_error: float  # windowed mean |challenger - outcome|
    min_outcomes: int

    @property
    def challenger_wins(self) -> bool:
        """True iff the challenger's windowed error beats production's,
        with at least ``min_outcomes`` labeled rows of evidence."""
        return (
            self.n_outcomes >= self.min_outcomes
            and self.challenger_error < self.champion_error
        )


class ShadowScorer:
    """Mirror a fraction of one name's production traffic to a staged version.

    Parameters
    ----------
    registry, name:
        The registry and served name; the champion is whatever version is
        *production at observation time* (a promote mid-shadow is scored
        as the traffic actually was).
    challenger_version:
        The staged version under evaluation.  Must exist; may not be the
        production version (shadowing production against itself measures
        nothing).
    fraction:
        Target share of production requests to mirror.  Mirroring is
        deterministic — every ``round(1/fraction)``-th observed request —
        so two identical streams shadow identically (no RNG in the
        serving path).
    window:
        Ring-buffer size for each windowed signal.
    min_outcomes:
        Labeled rows required before :attr:`ShadowReport.challenger_wins`
        may be true.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        name: str,
        challenger_version: int,
        fraction: float = 0.25,
        window: int = 256,
        min_outcomes: int = 32,
    ):
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.registry = registry
        self.name = name
        self.challenger_version = int(challenger_version)
        # resolve now: a missing version must fail at shadow setup, not on
        # the first mirrored request inside a tap (where errors are muted)
        self._challenger = registry.get(name, self.challenger_version)
        if registry.production_version(name) == self.challenger_version:
            raise ValueError(
                f"version {challenger_version} of {name!r} is already production"
            )
        self.stride = max(1, round(1.0 / float(fraction)))
        self.min_outcomes = int(min_outcomes)
        self._seen = 0
        # guards the counters/windows: concurrent flushes may observe at
        # once.  Scoring itself stays outside the lock — registered models
        # are frozen and lock-free to predict with
        self._lock = threading.Lock()
        self._disagreement = ScalarWindow(window)
        self._champion_err = ScalarWindow(window)
        self._challenger_err = ScalarWindow(window)

    # ------------------------------------------------------------------ #
    def on_result(self, kind: str, block: np.ndarray, value) -> None:
        """Observe one scored production request; maybe mirror it.

        ``block``/``value`` are exactly what the service scored and
        returned.  Only ``predict`` traffic mirrors (a mean/variance pair
        has no single number to disagree about).
        """
        if kind != "predict":
            return
        with self._lock:
            seen = self._seen
            self._seen = seen + 1
        if seen % self.stride != 0:
            return
        block = np.asarray(block, dtype=float)
        if block.ndim == 1:
            block = block[None, :]
        challenger_pred = np.asarray(self._challenger.predict(block), dtype=float)
        production_pred = np.atleast_1d(np.asarray(value, dtype=float))
        deltas = np.abs(production_pred - challenger_pred)
        with self._lock:
            self._disagreement.push_many(deltas)

    def record_outcome(self, row: np.ndarray, outcome: float) -> None:
        """Feed one labeled row (ground truth arrived in hindsight).

        Champion (current production) and challenger both score the row;
        their absolute errors extend the windowed error signals.  Label
        feedback is independent of the mirroring stride — every label is
        evidence, however sparse the mirror."""
        arr = np.asarray(row, dtype=float)
        if arr.ndim == 1:
            arr = arr[None, :]
        champ = float(self.registry.get(self.name).predict(arr)[0])
        chall = float(self._challenger.predict(arr)[0])
        outcome = float(outcome)
        with self._lock:
            self._champion_err.push(abs(champ - outcome))
            self._challenger_err.push(abs(chall - outcome))

    # ------------------------------------------------------------------ #
    def report(self) -> ShadowReport:
        with self._lock:
            return ShadowReport(
                name=self.name,
                challenger_version=self.challenger_version,
                mirrored=self._disagreement.n_total,
                disagreement_mean=self._disagreement.mean(),
                n_outcomes=self._champion_err.n_total,
                champion_error=self._champion_err.mean(),
                challenger_error=self._challenger_err.mean(),
                min_outcomes=self.min_outcomes,
            )
