"""Online error-source monitoring plane over the serving stack.

The paper's thesis is that deployed HPC I/O models fail through a
*taxonomy* of error sources — distribution drift, out-of-distribution
jobs, aleatory vs. epistemic uncertainty, miscalibration — and its
deployment sections (§VIII; Madireddy et al., ref [5]; Netti et al.,
arXiv:1810.11208) show those signals must be computed **online, on the
live stream**, not in a monthly report.  This package operationalizes
the taxonomy over :mod:`repro.serve`:

* :class:`~repro.serve.monitor.profile.StreamProfile` — sliding-window
  PSI/KS of each name's request stream against its registered
  training-reference snapshot (drift);
* :class:`~repro.serve.monitor.uncertainty.UncertaintyTap` — windowed
  epistemic-uncertainty quantiles + per-job novelty tags (the AU/EU
  split, live);
* :class:`~repro.serve.monitor.shadow.ShadowScorer` — champion–challenger
  mirroring of production traffic onto a staged registry version;
* :class:`~repro.serve.monitor.policy.PolicyEngine` — pluggable rules
  (:class:`PsiThresholdRule`, :class:`EuQuantileRule`,
  :class:`ShadowWinnerRule`) whose alert / auto-promote / auto-rollback
  actions run through the registry's listener machinery and therefore
  propagate cluster-wide, ack-gated;
* :class:`~repro.serve.monitor.plane.MonitoringPlane` — the tap that
  wires it all to a :class:`~repro.serve.router.ServingGateway` or
  :class:`~repro.serve.shard.ShardedServingCluster`.

Hard invariants, shared with the rest of the serve layer: the monitor is
purely **observational** (monitored serving is bit-identical to
unmonitored serving), **bounded-memory** (ring-buffer windows, bounded
event trails), and **deterministic** under an injected clock.
"""

from repro.serve.monitor.plane import MonitoringPlane
from repro.serve.monitor.policy import (
    EuQuantileRule,
    MonitorEvent,
    NameState,
    PolicyEngine,
    PsiThresholdRule,
    ShadowWinnerRule,
)
from repro.serve.monitor.profile import StreamProfile, WindowDriftReport
from repro.serve.monitor.shadow import ShadowReport, ShadowScorer
from repro.serve.monitor.uncertainty import UncertaintyTap

__all__ = [
    "EuQuantileRule",
    "MonitorEvent",
    "MonitoringPlane",
    "NameState",
    "PolicyEngine",
    "PsiThresholdRule",
    "ShadowReport",
    "ShadowScorer",
    "ShadowWinnerRule",
    "StreamProfile",
    "UncertaintyTap",
    "WindowDriftReport",
]
