"""Policy engine: turn monitor signals into registry actions.

The taxonomy is only operational once its signals *do* something: a PSI
alert that nobody reads is §VIII's deployment-drift failure with extra
steps.  :class:`PolicyEngine` evaluates pluggable rules against each
name's monitor state and executes the resulting action through the
existing registry machinery — ``alert`` records an event, ``rollback``
pops the production alias back (and, behind a sharded cluster, the
registry listener broadcast carries the change to every worker,
ack-gated, before the call returns), ``promote`` moves traffic to the
shadow challenger that earned it.

Rules are callables ``rule(state) -> (action, value, detail) | None``
over a :class:`NameState`; three built-ins cover the paper's error
sources (drift → :class:`PsiThresholdRule`, OoD/EU explosion →
:class:`EuQuantileRule`, validated retrain → :class:`ShadowWinnerRule`).
The engine is deterministic under an injected clock — the clock only
stamps events and drives the per-(name, rule) cooldown that stops a
persistently-drifted window from re-firing every evaluation.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.serve.errors import ErrorCode, classify_exception, to_wire
from repro.serve.registry import ModelRegistry

__all__ = [
    "EuQuantileRule",
    "MonitorEvent",
    "NameState",
    "PolicyEngine",
    "PsiThresholdRule",
    "ShadowWinnerRule",
]

_ACTIONS = ("alert", "rollback", "promote")


@dataclass(frozen=True)
class MonitorEvent:
    """One fired rule (or recorded failure): what was seen, what was done."""

    at: float           # injected-clock timestamp
    name: str           # served model name
    rule: str           # rule identifier
    action: str         # "alert" | "rollback" | "promote" (+ "-failed")
    value: float        # the signal magnitude that fired the rule
    detail: str         # human-readable context
    code: ErrorCode | None = None  # coded-vocabulary tag (None: uncoded legacy)

    def to_wire(self) -> dict[str, Any]:
        """The event as one structured dict, embedding the error payload
        of :func:`repro.serve.errors.to_wire` when the event is coded."""
        payload: dict[str, Any] = {
            "at": self.at, "name": self.name, "rule": self.rule,
            "action": self.action, "value": self.value, "detail": self.detail,
        }
        if self.code is not None:
            payload["error"] = to_wire(self.code, detail=self.detail)
        return payload


@dataclass
class NameState:
    """Everything the rules may inspect for one name (read-only by contract)."""

    name: str
    registry: ModelRegistry
    profile: Any = None     # StreamProfile | None
    tap: Any = None         # UncertaintyTap | None
    shadow: Any = None      # ShadowScorer | None
    extra: dict = field(default_factory=dict)


class PsiThresholdRule:
    """Fire when any feature's windowed PSI crosses a threshold (drift)."""

    def __init__(self, threshold: float = 0.25, action: str = "alert"):
        if action not in _ACTIONS:
            raise ValueError(f"action must be one of {_ACTIONS}")
        self.threshold = float(threshold)
        self.action = action
        self.name = f"psi>{self.threshold:g}"
        self.code = ErrorCode.DRIFT_DETECTED

    def __call__(self, state: NameState):
        if state.profile is None:
            return None
        report = state.profile.drift()
        if report is None or report.max_psi <= self.threshold:
            return None
        feature, worst = report.worst(1)[0]
        return (
            self.action,
            report.max_psi,
            f"windowed PSI {worst:.3f} on {feature} "
            f"({report.window_rows}-row window)",
        )


class EuQuantileRule:
    """Fire when the window's EU quantile explodes past the reference.

    The population-level form of the §VIII OoD litmus test: individual
    novel jobs are tagged per request by the tap itself; this rule
    watches the window's high quantile grow to ``factor`` times the
    training corpus's — the signature of a whole unfamiliar workload
    arriving, not one odd job.
    """

    def __init__(
        self,
        factor: float = 3.0,
        min_window: int = 64,
        action: str = "alert",
    ):
        if action not in _ACTIONS:
            raise ValueError(f"action must be one of {_ACTIONS}")
        if factor <= 1.0:
            raise ValueError("factor must be > 1")
        self.factor = float(factor)
        self.min_window = int(min_window)
        self.action = action
        self.name = f"eu-quantile x{self.factor:g}"
        self.code = ErrorCode.OOD_DETECTED

    def __call__(self, state: NameState):
        tap = state.tap
        if tap is None or tap.window_fill < self.min_window:
            return None
        current = tap.window_quantile()
        limit = self.factor * tap.reference_threshold
        if current <= limit:
            return None
        return (
            self.action,
            current,
            f"EU q{tap.novel_quantile:.2f} = {current:.4f} vs reference "
            f"{tap.reference_threshold:.4f} (novel fraction "
            f"{tap.novel_fraction():.1%})",
        )


class ShadowWinnerRule:
    """Fire when the shadow challenger's windowed error beats production."""

    def __init__(self, action: str = "promote"):
        if action not in _ACTIONS:
            raise ValueError(f"action must be one of {_ACTIONS}")
        self.action = action
        self.name = "shadow-winner"

    def __call__(self, state: NameState):
        if state.shadow is None:
            return None
        report = state.shadow.report()
        if not report.challenger_wins:
            return None
        return (
            self.action,
            report.challenger_error,
            f"challenger v{report.challenger_version} error "
            f"{report.challenger_error:.4f} < production "
            f"{report.champion_error:.4f} over {report.n_outcomes} outcomes",
        )


class PolicyEngine:
    """Evaluate rules per name and execute their actions on the registry.

    Parameters
    ----------
    registry:
        Where actions land.  ``rollback``/``promote`` go through the
        normal stage-change path, so every listener (prediction caches,
        a sharded cluster's ack-gated broadcast) sees them exactly as it
        would a human operator's call.
    clock:
        Monotonic time source; inject a fake for deterministic tests.
    cooldown_s:
        Minimum clock time between two firings of the *same rule on the
        same name* — a drifted window stays drifted for its whole
        residence time, and one detection must not become a rollback
        storm.
    max_events:
        Bounded audit trail (the engine may live for the process
        lifetime).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        clock: Callable[[], float] = time.monotonic,
        cooldown_s: float = 30.0,
        max_events: int = 1024,
    ):
        self.registry = registry
        self._clock = clock
        self.cooldown_s = float(cooldown_s)
        self.events: deque[MonitorEvent] = deque(maxlen=max_events)
        self._rules: list[tuple[Any, frozenset[str] | None]] = []
        self._last_fire: dict[tuple[str, str], float] = {}
        # serializes whole evaluations: the plane runs them from submitter
        # threads outside its own lock, and a concurrent pair racing the
        # cooldown's check-then-set would double-execute an action (two
        # rollbacks where the cooldown promises one)
        self._eval_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def add_rule(self, rule: Any, names: list[str] | None = None) -> None:
        """Attach a rule, optionally scoped to specific names."""
        self._rules.append((rule, frozenset(names) if names is not None else None))

    def rules_for(self, name: str) -> list[Any]:
        return [r for r, scope in self._rules if scope is None or name in scope]

    # ------------------------------------------------------------------ #
    def evaluate(self, state: NameState) -> list[MonitorEvent]:
        """Run every applicable rule for one name's current state."""
        with self._eval_lock:
            now = self._clock()
            fired: list[MonitorEvent] = []
            for rule in self.rules_for(state.name):
                result = rule(state)
                if result is None:
                    continue
                action, value, detail = result
                key = (state.name, rule.name)
                last = self._last_fire.get(key)
                if last is not None and now - last < self.cooldown_s:
                    continue
                event = self._execute(
                    now, state, rule.name, action, value, detail,
                    rule_code=getattr(rule, "code", None),
                )
                if not event.action.endswith("-failed"):
                    # only a *performed* action consumes the cooldown: a
                    # failed rollback did nothing, and silencing retries
                    # for cooldown_s would leave detected drift unactioned
                    # (the repeated *-failed events are the alarm bell)
                    self._last_fire[key] = now
                fired.append(event)
            self.events.extend(fired)
            return fired

    def record(self, event: MonitorEvent) -> None:
        """Append an externally-produced event to the bounded audit trail.

        The resilience plane's :class:`~repro.serve.resilience.ShardSupervisor`
        reports crash detections and respawn outcomes here, so one deque
        holds the complete operational history — drift alerts and shard
        deaths interleaved on the same injected-clock timeline.
        """
        with self._eval_lock:
            self.events.append(event)

    def _execute(
        self, now: float, state: NameState, rule: str,
        action: str, value: float, detail: str,
        rule_code: ErrorCode | None = None,
    ) -> MonitorEvent:
        try:
            if action == "rollback":
                version = self.registry.rollback(state.name)
                detail = f"{detail}; rolled back to v{version}"
            elif action == "promote":
                if state.shadow is None:
                    raise RuntimeError("promote action requires a shadow challenger")
                version = state.shadow.challenger_version
                self.registry.promote(state.name, version)
                detail = f"{detail}; promoted v{version}"
        except Exception as exc:
            # the action failed (no rollback history, version vanished) —
            # the detection still happened; record it loudly instead of
            # blowing up the serving thread that ran the evaluation
            return MonitorEvent(
                at=now, name=state.name, rule=rule,
                action=f"{action}-failed", value=value,
                detail=(f"{detail}; {type(exc).__name__}: {exc} "
                        f"[{classify_exception(exc).name}]"),
                code=ErrorCode.POLICY_ACTION_FAILED,
            )
        return MonitorEvent(
            at=now, name=state.name, rule=rule, action=action,
            value=value, detail=detail, code=rule_code,
        )
