"""Bounded scalar ring buffer shared by the monitor's windowed signals.

Every scalar signal the plane keeps — epistemic-uncertainty magnitudes,
shadow disagreements, champion/challenger errors — wants the same thing:
the most recent ``window`` values, O(1) amortized appends, and cheap
reductions over the valid region.  One implementation keeps the wrap
arithmetic (and therefore the bounded-memory contract) in one place.

Not thread-safe by itself: owners that take concurrent writes
(:class:`~repro.serve.monitor.shadow.ShadowScorer`,
:class:`~repro.serve.monitor.uncertainty.UncertaintyTap` under the
plane's lock) guard it with their own lock.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ScalarWindow"]


class ScalarWindow:
    """Fixed-capacity ring of floats with lifetime counting."""

    __slots__ = ("_buf", "_pos", "_fill", "n_total")

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("window must be >= 1")
        self._buf = np.empty(int(window))
        self._pos = 0
        self._fill = 0
        self.n_total = 0  # lifetime values pushed (window-independent)

    @property
    def capacity(self) -> int:
        return self._buf.size

    @property
    def fill(self) -> int:
        """Valid values currently windowed (≤ capacity)."""
        return self._fill

    def push(self, value: float) -> None:
        self._buf[self._pos] = value
        self._pos = (self._pos + 1) % self._buf.size
        self._fill = min(self._fill + 1, self._buf.size)
        self.n_total += 1

    def push_many(self, values: np.ndarray) -> None:
        """Vectorized append of a 1-D batch (oldest values fall out)."""
        values = np.asarray(values, dtype=float).ravel()
        self.n_total += values.size
        n = self._buf.size
        if values.size >= n:
            self._buf[:] = values[values.size - n:]
            self._pos = 0
            self._fill = n
            return
        end = self._pos + values.size
        if end <= n:
            self._buf[self._pos:end] = values
        else:
            split = n - self._pos
            self._buf[self._pos:] = values[:split]
            self._buf[:end - n] = values[split:]
        self._pos = end % n
        self._fill = min(self._fill + values.size, n)

    def values(self) -> np.ndarray:
        """Copy of the windowed values (order immaterial for reductions)."""
        return self._buf[:self._fill].copy()

    def mean(self) -> float:
        return float(self._buf[:self._fill].mean()) if self._fill else 0.0

    def quantile(self, q: float) -> float:
        if self._fill == 0:
            return 0.0
        return float(np.quantile(self._buf[:self._fill], q))

    def fraction_above(self, threshold: float) -> float:
        if self._fill == 0:
            return 0.0
        return float(np.mean(self._buf[:self._fill] > threshold))
