"""The monitoring plane: one tap wiring profiles, taps, shadows, policy.

:class:`MonitoringPlane` implements the serve layer's tap protocol
(:meth:`~repro.serve.router.ServingGateway.add_tap`) and multiplexes it
across per-name monitor state:

* every submitted row lands in the name's
  :class:`~repro.serve.monitor.profile.StreamProfile` (windowed PSI/KS
  against the registry's reference snapshot),
* every scored ``predict_dist`` result feeds the
  :class:`~repro.serve.monitor.uncertainty.UncertaintyTap` (per-job
  novelty tags + windowed EU quantiles),
* every scored ``predict`` result is offered to the name's
  :class:`~repro.serve.monitor.shadow.ShadowScorer` (champion–challenger
  mirroring), and
* every ``eval_every`` observations the
  :class:`~repro.serve.monitor.policy.PolicyEngine` runs the name's
  rules and executes what they return.

Contracts (test-enforced):

* **observational** — the plane never touches tickets, values, or queue
  order; monitored serving is ``np.array_equal`` to unmonitored serving.
  Tap exceptions never escape (the gateway swallows and counts them).
* **bounded memory** — ring-buffer windows, bounded event deque.
* **deterministic** — evaluation cadence counts observations (not wall
  time); the injected clock only stamps events and drives cooldowns, so
  tests replay exact trajectories.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

import numpy as np

from repro.serve.errors import ErrorCode, coded
from repro.serve.monitor.policy import NameState, PolicyEngine
from repro.serve.monitor.profile import StreamProfile
from repro.serve.monitor.shadow import ShadowScorer
from repro.serve.monitor.uncertainty import UncertaintyTap
from repro.serve.registry import ModelRegistry

__all__ = ["MonitoringPlane"]


class _NameMonitor:
    """Per-name monitor state (guarded by the plane's lock)."""

    __slots__ = ("profile", "tap", "shadow", "observed", "next_eval_at")

    def __init__(self, profile: StreamProfile | None, tap: UncertaintyTap | None,
                 eval_every: int):
        self.profile = profile
        self.tap = tap
        self.shadow: ShadowScorer | None = None
        # request tally driving the sample stride (and, with no profile,
        # the eval cadence); racing increments may drop a count, which
        # only jitters the stride — monitoring accuracy, not correctness
        self.observed = 0
        self.next_eval_at = eval_every


class MonitoringPlane:
    """Attachable, per-name online monitor over a gateway or cluster.

    Parameters
    ----------
    registry:
        Source of reference snapshots and target of policy actions.
    clock:
        Monotonic time source (inject a fake for deterministic tests).
    window, min_window, n_bins:
        Defaults for each watched name's :class:`StreamProfile` and
        :class:`UncertaintyTap` windows.
    eval_every:
        Policy evaluation cadence in *observations per name* — counting
        requests instead of seconds keeps detection deterministic for a
        given stream.
    sample:
        Deterministic profiling stride: every ``sample``-th request per
        name feeds the drift profile (1 = every request).  A windowed PSI
        over a strided sample of the stream estimates the same population
        — the standard dial for keeping monitor cost flat as request
        rates grow.  EU/shadow observation is unaffected.
    cooldown_s, max_events:
        Forwarded to the :class:`PolicyEngine`.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        clock: Callable[[], float] = time.monotonic,
        window: int = 512,
        min_window: int = 64,
        n_bins: int = 10,
        eval_every: int = 64,
        sample: int = 1,
        cooldown_s: float = 30.0,
        max_events: int = 1024,
    ):
        if eval_every < 1:
            raise ValueError("eval_every must be >= 1")
        if sample < 1:
            raise ValueError("sample must be >= 1")
        self.registry = registry
        self.policy = PolicyEngine(
            registry, clock=clock, cooldown_s=cooldown_s, max_events=max_events
        )
        self.window = int(window)
        self.min_window = int(min_window)
        self.n_bins = int(n_bins)
        self.eval_every = int(eval_every)
        self.sample = int(sample)
        self._monitors: dict[str, _NameMonitor] = {}
        self._lock = threading.Lock()
        self._attached: list[Any] = []

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def watch(
        self,
        name: str,
        reference: np.ndarray | None = None,
        reference_eu: np.ndarray | None = None,
        names: list[str] | None = None,
    ) -> None:
        """Start monitoring one served name.

        Without explicit arrays the reference comes from the registry's
        :meth:`~repro.serve.registry.ModelRegistry.set_reference` snapshot
        — the normal production path, where the training pipeline files
        the baseline next to the model it describes.  A name with neither
        is refused: a drift monitor without a reference has nothing to
        drift *from*.
        """
        ref = None if reference is not None else self.registry.get_reference(name)
        if reference is None and ref is not None:
            reference = ref.X
            names = list(ref.names) if (names is None and ref.names) else names
            reference_eu = ref.eu if reference_eu is None else reference_eu
        profile = None
        if reference is not None:
            profile = StreamProfile(
                reference, names=names, window=self.window,
                min_window=self.min_window, n_bins=self.n_bins,
            )
        tap = None
        if reference_eu is not None:
            tap = UncertaintyTap(reference_eu, window=self.window)
        if profile is None and tap is None:
            raise coded(
                ValueError(
                    f"no reference for {name!r}: pass reference=/reference_eu= "
                    f"or call registry.set_reference(name, ...) first"
                ),
                ErrorCode.REFERENCE_MISSING,
            )
        with self._lock:
            old = self._monitors.get(name)
            self._monitors[name] = _NameMonitor(profile, tap, self.eval_every)
        old_consumed = old is not None and (
            old.tap is not None or old.shadow is not None
        )
        if (tap is not None) != old_consumed:
            # result consumption changed in either direction — a re-watch
            # can also RETIRE an EU tap/shadow, and the front doors must
            # stop paying the per-ticket dispatch for it
            self._reattach()

    def unwatch(self, name: str) -> None:
        with self._lock:
            monitor = self._monitors.pop(name, None)
        if monitor is not None and (monitor.tap is not None or monitor.shadow is not None):
            self._reattach()  # maybe the last result consumer just left

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._monitors)

    def shadow(
        self,
        name: str,
        challenger_version: int,
        fraction: float = 0.25,
        shadow_window: int = 256,
        min_outcomes: int = 32,
    ) -> ShadowScorer:
        """Shadow-score a staged version under the name's live traffic.

        Reference lifecycle: a challenger retrained *because the stream
        drifted* should arrive together with a refreshed reference —
        ``registry.set_reference`` with the new training corpus, then
        re-``watch`` the name (which also resets the drift window).  A
        drift rule left armed with the old model's reference keeps
        scoring the new regime as drifted and, once its cooldown lapses,
        will roll back the very promotion the shadow just validated.
        """
        scorer = ShadowScorer(
            self.registry, name, challenger_version,
            fraction=fraction, window=shadow_window, min_outcomes=min_outcomes,
        )
        with self._lock:
            monitor = self._monitors.get(name)
            if monitor is None:
                raise LookupError(f"{name!r} is not watched (call watch first)")
            monitor.shadow = scorer
        self._reattach()  # the front doors must start delivering results
        return scorer

    def unshadow(self, name: str) -> None:
        had_shadow = False
        with self._lock:
            monitor = self._monitors.get(name)
            if monitor is not None:
                had_shadow = monitor.shadow is not None
                monitor.shadow = None
        if had_shadow:
            self._reattach()  # maybe the last result consumer just left

    def add_rule(self, rule: Any, names: list[str] | None = None) -> None:
        self.policy.add_rule(rule, names=names)

    def attach(self, front: Any) -> "MonitoringPlane":
        """Hook into a gateway or cluster front door (``add_tap``)."""
        front.add_tap(self)
        self._attached.append(front)
        return self

    def detach(self) -> None:
        for front in self._attached:
            try:
                front.remove_tap(self)
            except Exception:
                pass
        self._attached.clear()

    def wants_results(self) -> bool:
        """Whether any watched name consumes scored results (EU tap or
        shadow).  A drift-only plane returns False and the gateway then
        skips the per-ticket result dispatch for it entirely."""
        with self._lock:
            return any(
                m.tap is not None or m.shadow is not None
                for m in self._monitors.values()
            )

    def _reattach(self) -> None:
        # result-consumption may have changed (a shadow arrived, an EU tap
        # appeared with a new watch) — have every front door rebuild its
        # dispatch views
        for front in list(self._attached):
            try:
                front.remove_tap(self)
                front.add_tap(self)
            except Exception:
                pass

    # ------------------------------------------------------------------ #
    # tap protocol (called by the gateway/cluster; must never raise into
    # the serving path — the callers swallow, but stay cheap regardless)
    # ------------------------------------------------------------------ #
    def on_request(self, name: str, row: np.ndarray, kind: str) -> None:
        # serving hot path: every gateway submission passes through here,
        # and the ≤5% overhead contract is enforced by `repro monitor-bench`
        # — keep this to one dict probe, one ring write, one counter
        monitor = self._monitors.get(name)
        if monitor is None:
            return
        profile = monitor.profile
        if profile is not None:
            monitor.observed += 1
            if self.sample > 1 and monitor.observed % self.sample:
                return  # strided out of the profile sample
            # copy=False: the gateway/cluster tap contract hands us rows
            # that are private to the serving stack (the ticket's block)
            profile.observe(row, copy=False)
            seen = profile.n_observed
        else:
            monitor.observed += 1 if np.ndim(row) == 1 else int(np.shape(row)[0])
            seen = monitor.observed
        if seen < monitor.next_eval_at:  # common path: one int compare, no lock
            return
        with self._lock:
            if seen < monitor.next_eval_at:  # another submitter took this slot
                return
            monitor.next_eval_at = seen + self.eval_every
        # policy actions (rollback broadcast, cache invalidation) run
        # outside the plane lock so concurrent submitters keep observing
        self.evaluate(name)

    def on_result(self, name: str, kind: str, block: np.ndarray, value: Any) -> None:
        monitor = self._monitors.get(name)
        if monitor is None:
            return
        tap = monitor.tap
        if tap is not None and kind == "predict_dist":
            _, var = value
            with self._lock:
                tap.observe(np.sqrt(np.maximum(np.atleast_1d(
                    np.asarray(var, dtype=float)), 0.0)))
        shadow = monitor.shadow
        if shadow is not None:
            shadow.on_result(kind, block, value)

    # ------------------------------------------------------------------ #
    # feedback + evaluation
    # ------------------------------------------------------------------ #
    def record_outcome(self, name: str, row: np.ndarray, outcome: float) -> None:
        """Ground-truth feedback for the name's shadow comparison."""
        with self._lock:
            monitor = self._monitors.get(name)
            shadow = monitor.shadow if monitor is not None else None
        if shadow is not None:
            shadow.record_outcome(row, outcome)

    def state(self, name: str) -> NameState:
        with self._lock:
            monitor = self._monitors.get(name)
            if monitor is None:
                raise LookupError(f"{name!r} is not watched")
            return NameState(
                name=name, registry=self.registry,
                profile=monitor.profile, tap=monitor.tap, shadow=monitor.shadow,
            )

    def evaluate(self, name: str | None = None) -> list[Any]:
        """Run the policy now for one name (or every watched name)."""
        names = [name] if name is not None else self.names()
        fired = []
        for n in names:
            try:
                state = self.state(n)
            except LookupError:
                continue
            events = self.policy.evaluate(state)
            if any(e.action == "promote" for e in events):
                # the challenger IS production now — the comparison is
                # settled, and a lingering shadow would re-fire forever
                self.unshadow(n)
            fired.extend(events)
        return fired

    @property
    def events(self):
        """The policy's bounded audit trail."""
        return self.policy.events

    # ------------------------------------------------------------------ #
    def status(self) -> dict[str, dict[str, Any]]:
        """Per-name monitoring summary for dashboards and benches."""
        out: dict[str, dict[str, Any]] = {}
        for name in self.names():
            state = self.state(name)
            entry: dict[str, Any] = {}
            if state.profile is not None:
                entry["n_observed"] = state.profile.n_observed
                entry["window_fill"] = state.profile.window_fill
                report = state.profile.drift(ks=True)
                if report is not None:
                    entry["max_psi"] = round(report.max_psi, 4)
                    entry["max_ks"] = round(report.max_ks, 4)
                    entry["worst"] = [
                        (n, round(v, 4)) for n, v in report.worst(3)
                    ]
            if state.tap is not None:
                entry["eu_observed"] = state.tap.n_observed
                entry["eu_novel"] = state.tap.n_novel
                entry["eu_novel_fraction"] = round(state.tap.novel_fraction(), 4)
            if state.shadow is not None:
                report = state.shadow.report()
                entry["shadow"] = {
                    "challenger_version": report.challenger_version,
                    "mirrored": report.mirrored,
                    "disagreement_mean": round(report.disagreement_mean, 4),
                    "n_outcomes": report.n_outcomes,
                    "champion_error": round(report.champion_error, 4),
                    "challenger_error": round(report.challenger_error, 4),
                    "challenger_wins": report.challenger_wins,
                }
            out[name] = entry
        return out
