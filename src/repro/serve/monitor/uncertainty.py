"""Online epistemic-uncertainty watch: the paper's AU/EU split, live.

§VIII decomposes predictive uncertainty into an aleatory part (the I/O
noise floor — irreducible, stays flat) and an epistemic part (model
ignorance — explodes exactly on the novel jobs the training corpus never
covered).  Offline, the litmus tests tag OoD jobs as those whose EU
exceeds a high quantile of the training corpus's EU distribution.
:class:`UncertaintyTap` runs the same test on the live stream: every
``predict_dist`` result's spread lands in a bounded ring buffer, each
job is tagged novel iff its EU exceeds the registered reference
quantile, and the windowed EU quantile itself is exposed so a policy
rule can catch the *population-level* EU explosion that precedes a
drift-driven error spike.

Like the drift profile, this is a pure function of the observed value
sequence — bounded memory, no wall time, deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.serve.monitor.ring import ScalarWindow

__all__ = ["UncertaintyTap"]


class UncertaintyTap:
    """Windowed tracker of epistemic-uncertainty magnitudes.

    Parameters
    ----------
    reference_eu:
        EU sample over the training corpus (see
        :func:`repro.ml.uncertainty.epistemic_sample` and
        :meth:`repro.serve.registry.ModelRegistry.set_reference`).  Only
        its ``novel_quantile`` quantile is retained.
    window:
        Ring-buffer capacity — the tap's whole memory footprint.
    novel_quantile:
        Reference quantile above which an individual job is tagged novel
        (0.99 reproduces the offline litmus-test tagging).
    """

    def __init__(
        self,
        reference_eu: np.ndarray,
        window: int = 512,
        novel_quantile: float = 0.99,
    ):
        reference_eu = np.asarray(reference_eu, dtype=float).ravel()
        if reference_eu.size == 0:
            raise ValueError("reference_eu must be non-empty")
        if not 0.0 < novel_quantile < 1.0:
            raise ValueError("novel_quantile must be in (0, 1)")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.novel_quantile = float(novel_quantile)
        self.reference_threshold = float(np.quantile(reference_eu, novel_quantile))
        self.window_size = int(window)
        self._ring = ScalarWindow(window)
        self.n_novel = 0

    # ------------------------------------------------------------------ #
    def observe(self, eu: float | np.ndarray) -> int:
        """Fold EU value(s) into the window; returns how many were novel."""
        arr = np.atleast_1d(np.asarray(eu, dtype=float)).ravel()
        novel = int(np.sum(arr > self.reference_threshold))
        self.n_novel += novel
        self._ring.push_many(arr)
        return novel

    # ------------------------------------------------------------------ #
    @property
    def n_observed(self) -> int:
        return self._ring.n_total

    @property
    def window_fill(self) -> int:
        return self._ring.fill

    def window(self) -> np.ndarray:
        """Copy of the windowed EU values (order immaterial for quantiles)."""
        return self._ring.values()

    def novel_fraction(self) -> float:
        """Share of the *current window* above the reference threshold.

        By construction ``novel_quantile`` of the training corpus sits
        below the threshold — an in-distribution stream shows ~1 % here,
        a stream of unfamiliar jobs shows a multiple of that.
        """
        return self._ring.fraction_above(self.reference_threshold)

    def window_quantile(self, q: float | None = None) -> float:
        """The window's EU quantile (default: the novel quantile itself).

        Comparing this against ``reference_threshold`` measures the
        population-level EU explosion: a ratio ≫ 1 means the *typical*
        high-EU job now sits far beyond anything the corpus produced.
        """
        return self._ring.quantile(self.novel_quantile if q is None else q)
