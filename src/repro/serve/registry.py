"""Versioned model registry with freeze-on-register and staged rollout.

The serving layer never mutates a model and never lets anyone else mutate
one either: :func:`freeze_arrays` walks every ndarray an estimator owns
(tree node arrays, packed-arena arrays, binner edges, scaler statistics)
and marks it read-only.  Immutability is what makes the rest of the stack
safe — the :mod:`repro.ml.binning` identity-keyed LRU requires frozen
arrays to rule out staleness, the micro-batcher can score one model from
many threads without locks, and a registered version can be promoted or
rolled back at any time knowing it is exactly the artifact that was
validated.

Rollout is staged: :meth:`ModelRegistry.register` only stores a version;
traffic moves when :meth:`~ModelRegistry.promote` points the production
alias at it.  Promotions push the previous production version onto a
history stack, so :meth:`~ModelRegistry.rollback` is O(1) and loses
nothing.  Listeners (the prediction cache) are notified on every stage
change.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.serve.errors import ErrorCode, coded

__all__ = ["ModelRegistry", "ModelVersion", "ReferenceSnapshot", "freeze_arrays"]


def freeze_arrays(obj: Any) -> int:
    """Recursively mark every ndarray reachable from ``obj`` read-only.

    Walks attribute dicts of repro-owned objects (estimators, tree nodes,
    packs, binners) plus plain containers; foreign objects are left alone
    so the walk stays bounded.  Returns the number of arrays frozen.
    Freezing is idempotent and never copies.
    """
    frozen = 0
    seen: set[int] = set()
    stack = [obj]
    while stack:
        cur = stack.pop()
        if id(cur) in seen:
            continue
        seen.add(id(cur))
        if isinstance(cur, np.ndarray):
            if cur.flags.writeable:
                cur.setflags(write=False)
                frozen += 1
        elif isinstance(cur, dict):
            stack.extend(cur.values())
        elif isinstance(cur, (list, tuple, set)):
            stack.extend(cur)
        elif type(cur).__module__.startswith("repro") and hasattr(cur, "__dict__"):
            stack.extend(vars(cur).values())
    return frozen


def _refuse_fit(*_a: Any, **_k: Any) -> None:
    """Module-level ``fit`` replacement for registered models.

    Lives at module scope (not as a closure inside :func:`_seal_fit`) so a
    sealed model stays picklable — snapshot/shard workflows serialize
    registered versions, and pickle resolves this sentinel by qualified
    name where a closure would fail the whole dump.
    """
    raise RuntimeError(
        "model is registered and immutable — refit a clone(), then "
        "register it as a new version"
    )


def _seal_fit(model: Any) -> None:
    """Make ``fit`` on a registered model raise instead of silently
    rebinding fresh arrays past the frozen ones.

    ``freeze_arrays`` protects the arrays a version holds *now*; a refit
    would swap in brand-new trees/binner under the registered version —
    and the version-keyed prediction cache would keep serving pre-refit
    numbers for it.  Shadow the instance's ``fit`` so the mistake fails
    loudly; train a :func:`repro.ml.base.clone` instead.  Best-effort: a
    model without a settable attribute dict keeps its fit.
    """
    if not callable(getattr(model, "fit", None)):
        return
    try:
        model.fit = _refuse_fit
    except AttributeError:
        pass


@dataclass(frozen=True)
class ModelVersion:
    """One immutable registry entry."""

    name: str
    version: int
    model: Any
    n_frozen_arrays: int


@dataclass(frozen=True)
class ReferenceSnapshot:
    """Frozen training-reference sample the monitoring plane scores against.

    ``X`` is a feature sample drawn from the corpus the production model
    was fitted on — the baseline for windowed PSI/KS on the live request
    stream.  ``eu`` is an optional epistemic-uncertainty sample over the
    same corpus (see :func:`repro.ml.uncertainty.epistemic_sample`): the
    quantiles novel jobs are tagged against, per the paper's AU/EU split.
    Both arrays are stored read-only, like every other registered
    artifact, and ride :meth:`ModelRegistry.snapshot` so shard replicas
    monitor against the same baseline as the parent.
    """

    X: np.ndarray
    eu: np.ndarray | None = None
    names: tuple[str, ...] | None = None


@dataclass
class _Entry:
    versions: dict[int, ModelVersion] = field(default_factory=dict)
    next_version: int = 1
    production: int | None = None
    history: list[int] = field(default_factory=list)  # previous production versions
    reference: ReferenceSnapshot | None = None


class ModelRegistry:
    """Thread-safe store of fitted estimators under versioned names.

    ``register`` freezes the model (see :func:`freeze_arrays`) and, when
    the estimator has a lazy packed arena, builds it eagerly so serving
    threads never race on first-use construction.  ``promote``/``rollback``
    move the production alias; listeners registered via ``add_listener``
    are called as ``fn(name, version, action)`` after every stage change
    (``promote``, ``rollback``, ``unregister``) — the prediction cache
    uses this to invalidate.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._entries: dict[str, _Entry] = {}
        self._listeners: list[Callable[[str, int, str], None]] = []
        # monotone counter of state changes; snapshot caches key on it
        self._mutations = 0

    @property
    def mutations(self) -> int:
        """Monotone count of registry state changes (register, promote,
        rollback, unregister, set_reference).  Two reads returning the
        same value bracket an unchanged registry, so a consumer may cache
        derived state — e.g. the sharded cluster's pickled snapshot bytes
        — keyed on this counter instead of re-deriving per use."""
        with self._lock:
            return self._mutations

    # ------------------------------------------------------------------ #
    def register(
        self, name: str, model: Any, promote: bool = False, version: int | None = None
    ) -> int:
        """Store ``model`` under ``name``; returns the new version number.

        The model must already be fitted (it needs a ``predict``); the
        registry takes ownership — every array it holds becomes read-only.
        ``version`` pins an explicit number instead of the next sequential
        one — the shard-replication path uses this so every worker's
        replica files a broadcast model under exactly the version the
        parent assigned (``next_version`` advances past the pin).
        """
        if not callable(getattr(model, "predict", None)):
            raise coded(TypeError(f"model {type(model).__name__} has no predict()"),
                        ErrorCode.INVALID_MUTATION)
        ensure = getattr(model, "_ensure_pack", None)
        if callable(ensure):
            ensure()  # pre-warm the arena before it is frozen and shared
        n_frozen = freeze_arrays(model)
        _seal_fit(model)
        with self._lock:
            entry = self._entries.setdefault(name, _Entry())
            if version is None:
                version = entry.next_version
            elif version in entry.versions:
                raise coded(ValueError(f"{name!r} already has a version {version}"),
                            ErrorCode.INVALID_MUTATION)
            elif version < 1:
                raise coded(ValueError("version must be >= 1"),
                            ErrorCode.INVALID_MUTATION)
            entry.next_version = max(entry.next_version, version + 1)
            entry.versions[version] = ModelVersion(name, version, model, n_frozen)
            self._mutations += 1
        if promote:
            self.promote(name, version)
        return version

    def promote(self, name: str, version: int) -> None:
        """Point production traffic for ``name`` at ``version``."""
        with self._lock:
            entry = self._get_entry(name)
            if version not in entry.versions:
                raise coded(LookupError(f"{name!r} has no version {version}"),
                            ErrorCode.UNKNOWN_VERSION)
            if entry.production == version:
                return
            if entry.production is not None:
                entry.history.append(entry.production)
            entry.production = version
            self._mutations += 1
        self._notify(name, version, "promote")

    def rollback(self, name: str) -> int:
        """Revert ``name`` to the previous production version; returns it."""
        with self._lock:
            entry = self._get_entry(name)
            if not entry.history:
                raise coded(
                    LookupError(f"{name!r} has no previous production version"),
                    ErrorCode.INVALID_MUTATION,
                )
            version = entry.history.pop()
            entry.production = version
            self._mutations += 1
        self._notify(name, version, "rollback")
        return version

    def unregister(self, name: str, version: int) -> None:
        """Drop a retired version so continuous retrain loops don't leak.

        The production version is refused (promote or rollback away from
        it first); the dropped version also leaves the rollback history.
        Listeners are notified with action ``"unregister"`` — the
        prediction cache reclaims the dropped version's entries, which
        would otherwise linger until LRU eviction in exactly the
        continuous-retrain loops this method exists for.
        """
        with self._lock:
            entry = self._get_entry(name)
            if version not in entry.versions:
                raise coded(LookupError(f"{name!r} has no version {version}"),
                            ErrorCode.UNKNOWN_VERSION)
            if entry.production == version:
                raise coded(
                    ValueError(f"cannot unregister production version {version} of {name!r}"),
                    ErrorCode.INVALID_MUTATION,
                )
            del entry.versions[version]
            entry.history = [v for v in entry.history if v != version]
            self._mutations += 1
        self._notify(name, version, "unregister")

    # ------------------------------------------------------------------ #
    def set_reference(
        self,
        name: str,
        X: np.ndarray,
        eu: np.ndarray | None = None,
        names: list[str] | None = None,
    ) -> ReferenceSnapshot:
        """Attach a training-reference snapshot to a registered name.

        The monitor plane scores the name's live request stream against
        this baseline (windowed PSI/KS over ``X``, EU quantiles over
        ``eu``).  Arrays are privately copied and frozen read-only — a
        reference is as immutable as the model it describes.  Listeners
        are notified with action ``"set_reference"`` (version 0, there is
        no version to carry): a sharded cluster uses this to broadcast
        the new baseline to every worker replica.
        """
        X = np.array(X, dtype=float)
        if X.ndim != 2:
            raise coded(ValueError(f"reference X must be 2-D, got ndim={X.ndim}"),
                        ErrorCode.MALFORMED_REQUEST)
        X.setflags(write=False)
        if eu is not None:
            eu = np.array(eu, dtype=float).ravel()
            eu.setflags(write=False)
        ref = ReferenceSnapshot(
            X=X, eu=eu, names=tuple(names) if names is not None else None
        )
        with self._lock:
            self._get_entry(name).reference = ref
            self._mutations += 1
        self._notify(name, 0, "set_reference")
        return ref

    def get_reference(self, name: str) -> ReferenceSnapshot | None:
        """The name's training-reference snapshot, or ``None`` if unset."""
        with self._lock:
            return self._get_entry(name).reference

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Picklable replica of the whole registry state.

        Maps each name to its models (by version), the production alias,
        the rollback history, and the version counter — everything
        :meth:`restore` needs to rebuild an exact replica in another
        process.  Models are the registered (frozen, fit-sealed) objects;
        they pickle because :func:`_seal_fit` installs a module-level
        sentinel (see PR 3).
        """
        with self._lock:
            return {
                name: {
                    "models": {v: mv.model for v, mv in entry.versions.items()},
                    "production": entry.production,
                    "history": list(entry.history),
                    "next_version": entry.next_version,
                    "reference": entry.reference,
                }
                for name, entry in self._entries.items()
            }

    def restore(self, state: dict[str, dict[str, Any]]) -> None:
        """Rebuild a :meth:`snapshot` into this (fresh) registry.

        Every model goes back through the full :meth:`register` path —
        pickling drops NumPy's read-only flag, so the freeze/seal/pack
        warm-up must run again for the immutability contract to hold in
        the restored process.  Stage aliases are reinstated directly (no
        listener notifications: a restore is initial state, not a stage
        *change*).  Only meaningful on an empty registry — pinned version
        numbers collide otherwise.
        """
        for name, entry_state in state.items():
            for version in sorted(entry_state["models"]):
                self.register(name, entry_state["models"][version], version=version)
            with self._lock:
                entry = self._entries.setdefault(name, _Entry())
                entry.production = entry_state["production"]
                entry.history = list(entry_state["history"])
                entry.next_version = max(entry.next_version, entry_state["next_version"])
            reference = entry_state.get("reference")
            if reference is not None:
                # after the entry exists (a snapshot may carry a reference
                # with zero versions — every version unregistered after
                # set_reference).  Pickling drops the read-only flag, same
                # as the models — re-enter through set_reference so the
                # restored arrays are frozen again (restore is initial
                # state: pre-restore listeners on a fresh registry are by
                # construction none)
                self.set_reference(
                    name, reference.X, eu=reference.eu,
                    names=list(reference.names) if reference.names else None,
                )

    # ------------------------------------------------------------------ #
    def get(self, name: str, version: int | None = None) -> Any:
        """The production model for ``name`` (or a specific version)."""
        return self.get_version(name, version).model

    def get_version(self, name: str, version: int | None = None) -> ModelVersion:
        with self._lock:
            entry = self._get_entry(name)
            if version is None:
                if entry.production is None:
                    raise coded(
                        LookupError(f"{name!r} has no production version (promote one)"),
                        ErrorCode.NO_PRODUCTION,
                    )
                version = entry.production
            if version not in entry.versions:
                raise coded(LookupError(f"{name!r} has no version {version}"),
                            ErrorCode.UNKNOWN_VERSION)
            return entry.versions[version]

    def production_version(self, name: str) -> int:
        return self.get_version(name).version

    def versions(self, name: str) -> list[int]:
        with self._lock:
            return sorted(self._get_entry(name).versions)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def add_listener(self, fn: Callable[[str, int, str], None]) -> None:
        with self._lock:
            self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[str, int, str], None]) -> None:
        """Deregister a listener (no-op when absent) — services call this
        on close so a long-lived registry never accumulates dead callbacks."""
        with self._lock:
            try:
                self._listeners.remove(fn)
            except ValueError:
                pass

    # ------------------------------------------------------------------ #
    def _get_entry(self, name: str) -> _Entry:
        entry = self._entries.get(name)
        if entry is None:
            raise coded(LookupError(f"unknown model name {name!r}"),
                        ErrorCode.UNKNOWN_MODEL)
        return entry

    def _notify(self, name: str, version: int, action: str) -> None:
        with self._lock:
            listeners = list(self._listeners)
        for fn in listeners:
            fn(name, version, action)
