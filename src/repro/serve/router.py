"""Multi-model serving gateway: one front door for the whole registry.

The taxonomy paper's deployment findings (per-system drift, §VIII) mean a
production deployment runs *many* models — one per system, per metric, per
retrain generation — side by side.  :class:`ServingGateway` fronts all of
them with a single ``submit(name, row, kind)``: the first request for a
name lazily stands up a dedicated
:class:`~repro.serve.service.InferenceService` (its own micro-batcher and
prediction cache), so one name's traffic shape — or one name's malformed
requests — never perturbs another's batches.  Per-name configuration
overrides apply at service creation and, for the mutable batcher limits,
to live services; :meth:`stats` rolls every service's counters into one
:class:`~repro.serve.stats.GatewayStats`; :meth:`close` tears the fleet
down in one call.

The gateway adds no scoring path of its own — every numeric guarantee of
the single-model stack (bit-identical micro-batching, version-keyed
caching, promote/rollback at batch boundaries) holds per name, unchanged.

**Monitoring taps** (:meth:`ServingGateway.add_tap`) observe that path
without joining it: a tap's ``on_request(name, row, kind)`` fires per
submission and ``on_result(name, kind, block, value)`` per scored ticket
(cache hits skip scoring, so they are request-observed only).  Taps are
purely observational — a raising tap is swallowed and counted in
``tap_errors``, never failing, delaying a flush of, or altering a request
— which is what lets the online monitoring plane
(:mod:`repro.serve.monitor`) guarantee monitored serving stays
bit-identical to unmonitored serving.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any

import numpy as np

from repro.serve.batcher import MicroBatcher, Ticket
from repro.serve.errors import ErrorCode, coded
from repro.serve.registry import ModelRegistry
from repro.serve.service import CompletedTicket, InferenceService
from repro.serve.stats import GatewayStats

__all__ = ["ServingGateway"]

# per-name override keys; the batcher limits stay mutable on a live
# service (via MicroBatcher.set_limits), the structural ones do not
_MUTABLE_KEYS = frozenset({"max_batch", "max_delay"})
_CONFIG_KEYS = _MUTABLE_KEYS | {"cache_entries", "n_jobs"}


class ServingGateway:
    """Route requests for any registered name to a per-name service.

    Parameters
    ----------
    registry:
        The shared :class:`~repro.serve.registry.ModelRegistry`.  The
        gateway never registers or promotes — rollout stays a registry
        concern; it only reads.
    max_batch, max_delay, cache_entries, n_jobs:
        Defaults for every lazily-created per-name service; override
        per name with :meth:`configure`.
    tracer:
        Optional :class:`~repro.serve.obs.trace.Tracer`.  When set, every
        ``trace_sample``-th ``submit`` without an inbound trace context
        starts one (the in-process birth point the net edge otherwise
        provides), records a gateway ``route`` span, and threads the
        context down to the batcher.  ``None`` (the default) keeps the
        request path free of any tracing branch beyond one ``is None``
        check.
    trace_sample:
        Auto-born traces sample 1-in-``trace_sample`` submissions
        (deterministic stride over the submit counter, same dial as the
        monitor plane's profile ``sample``) — the knob that keeps span
        cost flat as request rates grow.  An *inbound* ``trace=`` context
        (a client-chosen wire trace id) is always honoured, never
        sampled: explicit trace retrieval stays exact.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch: int = 256,
        max_delay: float = 0.005,
        cache_entries: int = 4096,
        n_jobs: int | None = 1,
        tracer: Any = None,
        trace_sample: int = 1,
    ):
        if trace_sample < 1:
            raise ValueError("trace_sample must be >= 1")
        self.registry = registry
        self._tracer = tracer
        self._trace_sample = int(trace_sample)
        self._trace_tick = itertools.count()  # atomic under the GIL
        self._defaults: dict[str, Any] = {
            "max_batch": int(max_batch),
            "max_delay": float(max_delay),
            "cache_entries": int(cache_entries),
            "n_jobs": n_jobs,
        }
        self._overrides: dict[str, dict[str, Any]] = {}
        self._services: dict[str, InferenceService] = {}
        self._lock = threading.Lock()
        self._closed = False
        # copy-on-write: notify paths read these tuples lock-free on every
        # request, add_tap/remove_tap replace them under the gateway lock
        self._taps: tuple[Any, ...] = ()
        self._request_taps: tuple[Any, ...] = ()  # bound on_request callables
        self._result_taps: tuple[Any, ...] = ()   # bound on_result callables
        # swallowed observer exceptions: incremented under a dedicated lock
        # (request and result paths race here; a bare += loses counts) that
        # the no-error fast path never touches
        self._tap_err_lock = threading.Lock()
        self._tap_errors = 0

    @property
    def tap_errors(self) -> int:
        """Observer exceptions swallowed (monitoring accuracy only)."""
        return self._tap_errors

    # ------------------------------------------------------------------ #
    def configure(self, name: str, **overrides: Any) -> None:
        """Set per-name service options (``max_batch``, ``max_delay``,
        ``cache_entries``, ``n_jobs``).

        Overrides stick for the name's (re-)creation; on an already-live
        service the mutable batcher limits apply immediately through
        :meth:`MicroBatcher.set_limits`, while the structural options
        (``cache_entries``, ``n_jobs``) are refused — they cannot change
        under traffic.
        """
        bad = set(overrides) - _CONFIG_KEYS
        if bad:
            raise ValueError(f"unknown config keys {sorted(bad)}; valid: {sorted(_CONFIG_KEYS)}")
        # validate values now — a bad override must fail here, not on the
        # first request for the name (and never persist past a raise)
        if overrides.get("max_batch") is not None and overrides["max_batch"] < 1:
            raise ValueError("max_batch must be >= 1")
        if overrides.get("max_delay") is not None and overrides["max_delay"] <= 0:
            raise ValueError("max_delay must be > 0")
        if overrides.get("cache_entries") is not None and overrides["cache_entries"] < 1:
            raise ValueError("cache_entries must be >= 1")
        with self._lock:
            svc = self._services.get(name)
            if svc is not None:
                frozen = set(overrides) - _MUTABLE_KEYS
                if frozen:
                    raise ValueError(
                        f"{sorted(frozen)} cannot change on the live service for {name!r}"
                    )
            self._overrides.setdefault(name, {}).update(overrides)
        if svc is not None and overrides:
            svc.batcher.set_limits(
                max_batch=overrides.get("max_batch"),
                max_delay=overrides.get("max_delay"),
            )

    def service(self, name: str) -> InferenceService:
        """The per-name service, created on first use."""
        with self._lock:
            if self._closed:
                raise coded(RuntimeError("ServingGateway is closed"), ErrorCode.CLOSED)
            svc = self._services.get(name)
            if svc is None:
                if name not in self.registry.names():
                    raise coded(LookupError(f"unknown model name {name!r}"),
                                ErrorCode.UNKNOWN_MODEL)
                cfg = {**self._defaults, **self._overrides.get(name, {})}
                svc = InferenceService(
                    self.registry, name, **cfg,
                    on_scored=lambda t, v, _n=name: self._notify_result(_n, t, v),
                )
                self._services[name] = svc
            return svc

    # ------------------------------------------------------------------ #
    # monitoring taps (observe the scoring path without joining it)
    # ------------------------------------------------------------------ #
    def add_tap(self, tap: Any) -> None:
        """Register a monitoring tap.

        ``tap.on_request(name, row, kind)`` fires after each successful
        submission; ``tap.on_result(name, kind, block, value)`` after each
        scored ticket (``block`` is the (m, d) request block, ``value``
        the exact object handed to the client).  Either method may be
        absent.  Taps observe, never participate: exceptions are swallowed
        (counted in ``tap_errors``) and the serving numbers are identical
        with or without taps attached.
        """
        with self._lock:
            self._taps = (*self._taps, tap)
            self._rebuild_tap_views()

    def remove_tap(self, tap: Any) -> None:
        """Deregister a tap (no-op when absent)."""
        with self._lock:
            self._taps = tuple(t for t in self._taps if t is not tap)
            self._rebuild_tap_views()

    def _rebuild_tap_views(self) -> None:
        # pre-bound callables so the per-request dispatch is one tuple
        # iteration — no lock, no list copy, no getattr on the hot path.
        # A tap may declare wants_results() False (a drift-only monitor
        # with no EU/shadow consumers) to skip the per-ticket result
        # dispatch entirely; taps that change their mind re-attach
        # (MonitoringPlane does this automatically).
        self._request_taps = tuple(
            fn for t in self._taps if (fn := getattr(t, "on_request", None)) is not None
        )
        self._result_taps = tuple(
            fn for t in self._taps
            if (fn := getattr(t, "on_result", None)) is not None
            and ((w := getattr(t, "wants_results", None)) is None or w())
        )

    def _notify_request(self, name: str, row: np.ndarray, kind: str) -> None:
        for fn in self._request_taps:
            try:
                fn(name, row, kind)
            except Exception:
                with self._tap_err_lock:
                    self._tap_errors += 1

    def _notify_result(self, name: str, ticket: Ticket, value: Any) -> None:
        for fn in self._result_taps:
            try:
                fn(name, ticket.kind, ticket.block, value)
            except Exception:
                with self._tap_err_lock:
                    self._tap_errors += 1

    # ------------------------------------------------------------------ #
    def submit(
        self, name: str, row: np.ndarray, kind: str = "predict", trace: Any = None
    ) -> Ticket | CompletedTicket:
        """Enqueue one request for ``name``; returns its ticket.

        ``trace`` adopts an inbound
        :class:`~repro.serve.obs.trace.TraceContext` (the net edge's);
        with none given and a ``tracer`` configured, a fresh context is
        born here — the in-process entry point of the stack — for every
        ``trace_sample``-th submission.
        """
        if trace is None and self._tracer is not None and (
            next(self._trace_tick) % self._trace_sample == 0
        ):
            trace = self._tracer.start_trace()
        if trace is not None:
            t0 = trace.now()
            ticket = self.service(name).submit(row, kind=kind, trace=trace)
            trace.record("gateway", "route", t0, trace.now(), meta={"name": name})
        else:
            ticket = self.service(name).submit(row, kind=kind)
        if self._request_taps:
            # hand taps the ticket's private block (nothing mutates it after
            # submission, so observers may retain it without copying); a
            # cache hit has no block — copy the caller's row for the same
            # retention guarantee
            block = getattr(ticket, "block", None)
            self._notify_request(
                name, block if block is not None else np.array(row, dtype=float), kind
            )
        return ticket

    def predict(self, name: str, row: np.ndarray, timeout: float | None = None) -> Any:
        return self.submit(name, row).result(timeout)

    def predict_dist(self, name: str, row: np.ndarray, timeout: float | None = None) -> Any:
        return self.submit(name, row, kind="predict_dist").result(timeout)

    def flush(self, name: str | None = None) -> int:
        """Force-score pending requests for one name (or every name).

        Only live services flush — a name that never received traffic has
        nothing pending, and flushing it must not stand up a service."""
        with self._lock:
            if name is not None:
                services = [s for s in (self._services.get(name),) if s is not None]
            else:
                services = list(self._services.values())
        # score outside the gateway lock: an inline flush must not block
        # routing for every other name
        return sum(svc.flush() for svc in services)

    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        """Names with a live service (a subset of the registry's names)."""
        with self._lock:
            return sorted(self._services)

    def batchers(self) -> dict[str, MicroBatcher]:
        """Live per-name batchers — the adaptive tuner's read/write view."""
        with self._lock:
            return {name: svc.batcher for name, svc in self._services.items()}

    def stats(self) -> GatewayStats:
        """Per-name snapshots plus their aggregate (see
        :class:`~repro.serve.stats.GatewayStats`)."""
        with self._lock:
            services = dict(self._services)
        return GatewayStats(
            per_name={n: s.stats() for n, s in services.items()},
            tap_errors=self._tap_errors,
        )

    def trace_spans(self, trace_id: str | None = None) -> dict[str, Any]:
        """This gateway's recorded spans (the tracer's JSON-safe export);
        empty when no tracer is configured."""
        if self._tracer is None:
            return {"spans": [], "dropped": {}, "recorded": {}}
        return self._tracer.export(trace_id)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Flush and close every service; idempotent.  The registry stays
        untouched — it usually outlives the gateway.

        Safe to call any number of times, from ``__del__``, or from an
        :mod:`atexit` hook: a partially-constructed gateway (an
        ``__init__`` that raised before the lock existed) is a no-op, and
        a second close never re-tears-down the services."""
        lock = getattr(self, "_lock", None)
        if lock is None:
            return
        with lock:
            if self._closed:
                return
            self._closed = True
            services = list(self._services.values())
        for svc in services:
            svc.close()

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:
        # interpreter teardown may have dismantled half the world already;
        # best-effort only, and double-close is already a no-op
        try:
            self.close()
        except BaseException:
            pass
