"""Operational error taxonomy: coded, classified, machine-actionable.

The repo reproduces the paper's taxonomy of *model* error sources
(application, noise, drift, OoD); this module is its operational
counterpart for the serving stack.  Before it, the serve layer's failures
were an ad-hoc zoo — ``ShardCrashedError``, malformed-ticket
``ValueError``s, registry ``LookupError``s, policy ``*-failed`` events —
and every consumer (a retry controller, an alerting rule, a future
network edge) had to re-diagnose each failure from its message string.

:class:`ErrorCode` is the frozen shared vocabulary.  Codes live in three
numeric category ranges, mirroring the HTTP convention every operator
already reads fluently:

* **4xx — client/request** (never retryable): the request itself is
  wrong; resubmitting the same bytes reproduces the same failure.
* **5xx — transient/infra** (retryable unless shutdown): the serving
  substrate hiccuped; the same request against a recovered substrate
  (a respawned shard, a lapsed breaker) is expected to succeed.
* **6xx — model/data**: the model or its monitoring contract failed —
  scoring raised, a replica diverged, drift/OoD was detected.

Every code carries ``severity`` and ``retryable`` — exactly the two
decisions a retry controller and an alerting pipeline need to make
without parsing prose.  The vocabulary is **adopted, not imposed**: the
existing exception types keep raising exactly as before (no test or
caller breaks), but each boundary annotates its exceptions with a
``code`` attribute, :func:`classify_exception` maps any unannotated
exception to its closest code, and :func:`to_wire`/:func:`from_wire`
give every error one structured dict form for pipes, JSON edges, and
:class:`~repro.serve.monitor.policy.MonitorEvent` payloads.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any

__all__ = [
    "CodedError",
    "ErrorCode",
    "classify_exception",
    "code_of",
    "coded",
    "ensure_code",
    "from_wire",
    "to_wire",
]

# category ranges: [lo, hi) -> label.  Frozen alongside the codes — a
# consumer may rely on integer-range checks alone ("is this 4xx?").
_CATEGORIES = (
    (400, 500, "client"),
    (500, 600, "transient"),
    (600, 700, "model"),
)


class ErrorCode(IntEnum):
    """The frozen coded vocabulary (value, severity, retryable).

    Values are wire-stable: codes may be *added*, but an existing code's
    number, severity, and retryable flag never change — retry policies
    and dashboards depend on them across versions.  The full catalogue
    with originating boundaries lives in ``docs/errors.md``.
    """

    # --- 4xx: client/request (resubmitting the same bytes cannot help) ---
    MALFORMED_REQUEST = (400, "error", False)
    UNKNOWN_MODEL = (404, "error", False)
    UNKNOWN_VERSION = (405, "error", False)
    NO_PRODUCTION = (406, "error", False)
    INVALID_MUTATION = (409, "error", False)
    FRAME_TOO_LARGE = (413, "error", False)  # wire frame exceeds the byte cap

    # --- 5xx: transient/infra (a recovered substrate should succeed) ----
    INTERNAL = (500, "error", False)  # unclassified: never blind-retried
    SHARD_CRASHED = (503, "critical", True)
    DEADLINE_EXCEEDED = (504, "warning", True)
    CLOSED = (507, "error", False)  # deliberate shutdown, not an outage
    CIRCUIT_OPEN = (508, "warning", True)
    RESPAWN_FAILED = (509, "critical", True)
    TRANSPORT_ERROR = (510, "critical", True)  # parent<->worker channel failed
    OVERLOADED = (513, "warning", True)  # admission control shed the request
    SLO_BREACH = (514, "warning", False)  # latency SLO violated (autoscaler signal)
    AUTOSCALE_FAILED = (515, "critical", True)  # a scale action raised mid-flight

    # --- 6xx: model/data (the scoring or monitoring contract failed) ----
    MODEL_RESOLUTION_FAILED = (600, "error", False)
    SCORING_FAILED = (601, "error", False)
    REPLICA_DIVERGENCE = (602, "critical", False)
    REFERENCE_MISSING = (603, "warning", False)
    POLICY_ACTION_FAILED = (604, "warning", False)
    DRIFT_DETECTED = (610, "warning", False)
    OOD_DETECTED = (611, "warning", False)

    severity: str
    retryable: bool

    def __new__(cls, value: int, severity: str, retryable: bool) -> "ErrorCode":
        obj = int.__new__(cls, value)
        obj._value_ = value
        obj.severity = severity
        obj.retryable = retryable
        return obj

    @property
    def category(self) -> str:
        for lo, hi, label in _CATEGORIES:
            if lo <= self._value_ < hi:
                return label
        raise ValueError(f"code {self._value_} outside every category range")


class CodedError(RuntimeError):
    """An error born coded — raised where no richer exception type fits
    (a circuit refusing traffic, a wire-format reconstruction)."""

    def __init__(self, message: str = "", code: ErrorCode = ErrorCode.INTERNAL):
        super().__init__(message)
        self.code = code


def coded(exc: BaseException, code: ErrorCode) -> BaseException:
    """Annotate ``exc`` with ``code`` and return it — the raising idiom
    is ``raise coded(LookupError(...), ErrorCode.UNKNOWN_MODEL)``.

    The attribute rides the exception through pickling (worker pipes) and
    :func:`~repro.serve.batcher._private_exception` copies alike, because
    both round-trip ``__dict__``.
    """
    exc.code = code  # type: ignore[attr-defined]
    return exc


def classify_exception(exc: BaseException) -> ErrorCode:
    """Map any exception to its closest code.

    An explicit ``code`` annotation always wins — boundaries that know
    their failure mode say so precisely.  Unannotated exceptions fall to
    type heuristics, and anything unrecognized is :data:`ErrorCode.INTERNAL`
    — which is deliberately **not** retryable: an error nobody classified
    must never be blind-retried into amplification.
    """
    existing = getattr(exc, "code", None)
    if isinstance(existing, ErrorCode):
        return existing
    if isinstance(existing, int):
        try:
            return ErrorCode(existing)
        except ValueError:
            pass
    if isinstance(exc, TimeoutError):
        return ErrorCode.DEADLINE_EXCEEDED
    if isinstance(exc, (BrokenPipeError, ConnectionError, EOFError)):
        return ErrorCode.SHARD_CRASHED
    if isinstance(exc, LookupError):
        return ErrorCode.UNKNOWN_MODEL
    if isinstance(exc, (ValueError, TypeError)):
        return ErrorCode.MALFORMED_REQUEST
    return ErrorCode.INTERNAL


def code_of(exc: BaseException) -> ErrorCode:
    """The exception's code (annotation first, classification fallback)."""
    return classify_exception(exc)


def ensure_code(exc: BaseException, default: ErrorCode | None = None) -> BaseException:
    """Annotate ``exc`` in place unless a boundary already did.

    ``default`` overrides the type-heuristic fallback for boundaries that
    know their context better than the generic classifier (a scoring loop
    tags unrecognized failures :data:`ErrorCode.SCORING_FAILED`, not
    ``INTERNAL``) — but an *explicit* upstream annotation still wins.
    """
    if not isinstance(getattr(exc, "code", None), ErrorCode):
        code = classify_exception(exc)
        if default is not None and code is ErrorCode.INTERNAL:
            code = default
        try:
            exc.code = code  # type: ignore[attr-defined]
        except AttributeError:
            pass  # slotted foreign exception: classify_exception still works
    return exc


def to_wire(exc: BaseException | ErrorCode, detail: str | None = None) -> dict[str, Any]:
    """One structured dict per error — the shape every boundary speaks.

    Stable keys: ``code`` (int), ``name``, ``category``, ``severity``,
    ``retryable``, ``type`` (the original exception class, or
    ``"ErrorCode"`` for a bare code), ``detail`` (human prose).  JSON-safe
    by construction, so the same payload serves pipes, monitor events,
    and the future network edge.

    An exception carrying a string ``trace_id`` (stamped by a traced
    network edge — see :mod:`repro.serve.obs`) additionally ships it
    under ``"trace"``, the join key between an error payload and the
    request's span dump.  The key is **only** present on traced errors,
    so the untraced payload shape above stays frozen byte-for-byte.
    """
    if isinstance(exc, ErrorCode):
        code, exc_type = exc, "ErrorCode"
        detail = detail if detail is not None else ""
        trace_id = None
    else:
        code, exc_type = classify_exception(exc), type(exc).__name__
        detail = detail if detail is not None else str(exc)
        trace_id = getattr(exc, "trace_id", None)
    wire = {
        "code": int(code),
        "name": code.name,
        "category": code.category,
        "severity": code.severity,
        "retryable": code.retryable,
        "type": exc_type,
        "detail": detail,
    }
    if isinstance(trace_id, str):
        wire["trace"] = trace_id
    return wire


def from_wire(payload: dict[str, Any]) -> CodedError:
    """Reconstruct a raisable coded exception from its wire dict.

    An unknown code number (a newer peer's vocabulary) degrades to
    :data:`ErrorCode.INTERNAL` rather than failing the decode — the
    payload's prose still reaches the operator.
    """
    try:
        code = ErrorCode(int(payload["code"]))
    except (KeyError, ValueError, TypeError):
        code = ErrorCode.INTERNAL
    detail = str(payload.get("detail", ""))
    exc_type = payload.get("type", "ErrorCode")
    message = f"{code.name}({int(code)}): {detail}" if detail else f"{code.name}({int(code)})"
    err = CodedError(message, code=code)
    err.wire_type = str(exc_type)  # type: ignore[attr-defined]
    return err
