"""One front door for a served model: registry + micro-batcher + cache.

:class:`InferenceService` binds a registry *name* (not a model object):
every flush resolves the current production version, so promotes and
rollbacks take effect at the next batch boundary with no coordination.
``submit`` consults the prediction cache first — keys carry the production
version, so a hit is always consistent with the model that would score a
miss — and completed batch results are inserted back for the next
duplicate request.  Stage changes invalidate the name's cache entries via
the registry listener hook.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from repro.serve.batcher import MicroBatcher, Ticket
from repro.serve.cache import PredictionCache, request_digest
from repro.serve.registry import ModelRegistry
from repro.serve.stats import ServerStats

__all__ = ["InferenceService", "CompletedTicket"]


class CompletedTicket:
    """A cache hit, shaped like a :class:`~repro.serve.batcher.Ticket`."""

    __slots__ = ("_value",)

    def __init__(self, value: Any):
        self._value = value

    def done(self) -> bool:
        return True

    def result(self, timeout: float | None = None) -> Any:
        return self._value


class InferenceService:
    """Batched, cached serving of one registry name."""

    def __init__(
        self,
        registry: ModelRegistry,
        name: str,
        max_batch: int = 256,
        max_delay: float = 0.005,
        cache_entries: int = 4096,
        n_jobs: int | None = 1,
        on_scored: Any = None,
    ):
        self.registry = registry
        self.name = name
        self.cache = PredictionCache(cache_entries)
        # optional observation hook fn(ticket, value), called per scored
        # ticket before the cache insert — the gateway's monitoring taps
        # ride here.  Purely observational: errors are swallowed upstream
        # (the batcher already guards its on_result callback) and the
        # value is never replaced, so the scoring path stays bit-identical
        self._on_scored = on_scored
        self._scoring = threading.local()  # version that scored the running flush
        self.batcher = MicroBatcher(
            self._resolve,
            max_batch=max_batch,
            max_delay=max_delay,
            n_jobs=n_jobs,
            on_result=self._insert_result,
        )
        registry.add_listener(self._on_stage_change)

    # ------------------------------------------------------------------ #
    def _resolve(self) -> Any:
        mv = self.registry.get_version(self.name)
        # _resolve and _insert_result both run in the flushing thread, so a
        # thread-local safely ties each result to the version that scored it
        self._scoring.version = mv.version
        return mv.model

    def _on_stage_change(self, name: str, version: int, action: str) -> None:
        if name != self.name:
            return
        if action == "unregister":
            # surgical: reclaim only the dropped version's entries — the
            # production version's warm hits survive the retrain loop
            self.cache.invalidate(name, version)
        elif action in ("promote", "rollback"):
            self.cache.invalidate(name)
        # other actions (e.g. "set_reference") don't move the production
        # alias, so the version-keyed entries stay exactly as valid

    def _insert_result(self, ticket: Ticket, value: Any) -> None:
        if self._on_scored is not None:
            try:
                self._on_scored(ticket, value)
            except Exception:
                pass  # observation must never fail (or re-order) a request
        # Only cache when the submit-time key version matches the version
        # that actually scored the flush: a promote landing between submit
        # and flush must not file the new model's number under the old
        # version's key (where a later rollback could hit it).
        if ticket.token is not None and ticket.token[1] == getattr(
            self._scoring, "version", None
        ):
            self.cache.put(ticket.token, value)

    # ------------------------------------------------------------------ #
    def submit(
        self, row: np.ndarray, kind: str = "predict", trace: Any = None
    ) -> Ticket | CompletedTicket:
        """Enqueue one request; returns a ticket whose ``result()`` blocks.

        The cache key binds the request bytes to the *current* production
        version; a promote between submit and flush therefore yields a
        result from the new model under a key that can never collide with
        the old version's entries.  ``trace`` optionally carries a
        :class:`~repro.serve.obs.trace.TraceContext` down to the batcher
        (a cache hit records nothing — there is no queue to wait in).
        """
        # private copy before digesting: the cache key must describe the
        # exact bytes that get scored even if the caller reuses the buffer
        arr = np.array(row, dtype=float)
        version = self.registry.production_version(self.name)
        key = (self.name, version, kind, request_digest(arr))
        found, value = self.cache.get(key)
        if found:
            return CompletedTicket(value)
        # copy=False: `arr` is already our private copy — nothing else
        # holds it, so the batcher can take it without copying again
        return self.batcher.submit(arr, kind=kind, token=key, copy=False,
                                   trace=trace)

    def predict(self, row: np.ndarray, timeout: float | None = None) -> Any:
        return self.submit(row).result(timeout)

    def predict_dist(self, row: np.ndarray, timeout: float | None = None) -> Any:
        return self.submit(row, kind="predict_dist").result(timeout)

    def flush(self) -> int:
        return self.batcher.flush()

    def close(self) -> None:
        """Idempotent teardown (``MicroBatcher.close`` drains once and is a
        no-op after; listener removal tolerates absence) — safe under the
        gateway's ``__del__``/atexit path even on a half-built service."""
        batcher = getattr(self, "batcher", None)
        if batcher is not None:
            batcher.close()
        registry = getattr(self, "registry", None)
        if registry is not None:
            registry.remove_listener(self._on_stage_change)

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def stats(self) -> ServerStats:
        """Point-in-time counter snapshot for dashboards and benches.

        Batcher and cache counters are sampled without one global lock, so
        under concurrent traffic the cross-source totals can be off by the
        handful of requests that landed mid-snapshot — monitoring
        accuracy, not accounting accuracy.
        """
        c = self.batcher.counters()
        return ServerStats(
            requests=int(c["requests"]) + self.cache.hits,
            rows=int(c["rows"]),
            batches=int(c["batches"]),
            completed=int(c["completed"]),
            size_flushes=int(c["size_flushes"]),
            deadline_flushes=int(c["deadline_flushes"]),
            manual_flushes=int(c["manual_flushes"]),
            abandoned=int(c["abandoned"]),
            latency_dropped=int(c["latency_dropped"]),
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
            cache_evictions=self.cache.evictions,
            cache_invalidations=self.cache.invalidations,
            cache_entries=len(self.cache),
            total_latency_s=float(c["total_latency_s"]),
            latency_samples=self.batcher.latency_snapshot(),
        )
