"""Reusable serving benchmark core (CLI ``repro serve-bench`` + benches).

Replays a stream of single-row prediction requests three ways against the
same registered model:

* **unbatched** — one ``model.predict`` call per request (the naive
  serving loop the micro-batcher replaces),
* **batched** — through an :class:`~repro.serve.service.InferenceService`
  with size/deadline coalescing (cold cache, all-distinct rows), and
* **cached replay** — the identical stream again, now answered from the
  prediction cache.

Results are asserted bit-identical across paths before any number is
reported, so the speedups can never come from a numerics shortcut.
"""

from __future__ import annotations

import gc
import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.serve.registry import ModelRegistry
from repro.serve.service import InferenceService

__all__ = [
    "record_trajectory_entry",
    "run_fault_bench",
    "run_gateway_bench",
    "run_monitor_bench",
    "run_net_bench",
    "run_obs_bench",
    "run_serve_bench",
    "run_shard_bench",
    "run_transport_bench",
    "make_serve_model",
]


def record_trajectory_entry(
    entry: dict, results_dir: Path, filename: str = "BENCH_serve.json"
) -> Path:
    """Append one timestamped entry to a bench trajectory
    (``BENCH_serve.json`` by default; the chaos suite records into
    ``BENCH_chaos.json`` — one entry per run, never overwritten).

    The single writer for the trajectory format: the CLI and the
    ``benchmarks/bench_*.py`` drivers all go through here, so the
    load-append-write scheme cannot drift between them.
    """
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    trajectory_path = results_dir / filename
    trajectory = []
    if trajectory_path.exists():
        trajectory = json.loads(trajectory_path.read_text())
    trajectory.append(
        {"timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"), **entry}
    )
    trajectory_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return trajectory_path


def _synth(n: int, d: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, d))
    y = (
        np.sin(2 * X[:, 0])
        + 0.5 * X[:, 1] ** 2
        + X[:, 2] * X[:, 3]
        + 0.1 * rng.normal(0, 1, n)
    )
    return X, y


def make_serve_model(kind: str, n_train: int, n_features: int, n_trees: int, seed: int):
    """Train the estimator a serving bench registers."""
    X, y = _synth(n_train, n_features, seed)
    if kind == "forest":
        from repro.ml.forest import RandomForestRegressor

        return RandomForestRegressor(
            n_estimators=n_trees, max_depth=12, random_state=seed
        ).fit(X, y)
    if kind == "gbm":
        from repro.ml.gbm import GradientBoostingRegressor

        return GradientBoostingRegressor(
            n_estimators=n_trees, max_depth=6, loss="squared", random_state=seed
        ).fit(X, y)
    raise ValueError(f"kind must be 'forest' or 'gbm', got {kind!r}")


def run_serve_bench(
    kind: str = "forest",
    n_train: int = 3000,
    n_features: int = 12,
    n_trees: int = 150,
    n_requests: int = 2000,
    max_batch: int = 256,
    max_delay: float = 0.002,
    seed: int = 0,
) -> dict:
    """One serving comparison; returns a flat result dict for tables/JSON."""
    model = make_serve_model(kind, n_train, n_features, n_trees, seed)
    rows, _ = _synth(n_requests, n_features, seed + 1)

    registry = ModelRegistry()
    registry.register(kind, model, promote=True)

    t0 = time.perf_counter()
    ref = np.array([model.predict(row[None, :])[0] for row in rows])
    t_unbatched = time.perf_counter() - t0

    with InferenceService(
        registry, kind, max_batch=max_batch, max_delay=max_delay,
        cache_entries=2 * n_requests,
    ) as svc:
        t0 = time.perf_counter()
        tickets = [svc.submit(row) for row in rows]
        svc.flush()
        batched = np.array([t.result(timeout=30.0) for t in tickets])
        t_batched = time.perf_counter() - t0

        if not np.array_equal(batched, ref):  # hard gate: survives python -O
            raise RuntimeError("micro-batched results are not bit-identical")

        t0 = time.perf_counter()
        cached = np.array([svc.predict(row, timeout=30.0) for row in rows])
        t_cached = time.perf_counter() - t0
        if not np.array_equal(cached, ref):
            raise RuntimeError("cached results are not bit-identical")

        stats = svc.stats()

    return {
        "model": kind,
        "n_trees": n_trees,
        "n_requests": n_requests,
        "max_batch": max_batch,
        "max_delay_ms": round(1e3 * max_delay, 3),
        "unbatched_s": round(t_unbatched, 4),
        "batched_s": round(t_batched, 4),
        "cached_s": round(t_cached, 4),
        "unbatched_rps": round(n_requests / t_unbatched, 1),
        "batched_rps": round(n_requests / t_batched, 1),
        "cached_rps": round(n_requests / t_cached, 1),
        "speedup_batched": round(t_unbatched / t_batched, 2),
        "speedup_cached": round(t_unbatched / t_cached, 2),
        "batches": stats.batches,
        "mean_batch_rows": round(stats.mean_batch_rows, 1),
        "size_flushes": stats.size_flushes,
        "deadline_flushes": stats.deadline_flushes,
        "cache_hit_rate": round(stats.hit_rate, 4),
        "mean_latency_ms": round(stats.mean_latency_ms, 3),
    }


def run_gateway_bench(
    kinds: tuple[str, ...] = ("forest", "gbm"),
    n_train: int = 3000,
    n_features: int = 12,
    n_trees: int = 150,
    n_requests: int = 2000,
    max_batch: int = 256,
    max_delay: float = 0.002,
    seed: int = 0,
    tune: bool = True,
    target_latency_ms: float = 5.0,
    n_waves: int = 4,
    monitor: bool = False,
) -> dict:
    """Multi-model comparison: one interleaved request stream, every
    request routed by name through a :class:`ServingGateway`.

    A seeded router assigns each request to one of the registered names;
    the same stream is replayed directly (per-request ``predict`` on the
    routed model) and through the gateway, and the per-name answers are
    asserted bit-identical before any number is reported.  With
    ``tune=True`` an :class:`AdaptiveBatchTuner` steps between waves, so
    the recorded limits show the controller acting on real counters.
    ``monitor=True`` additionally attaches a :class:`MonitoringPlane`
    (drift profile per name, alert-only policy) — the bit-identity gate
    then doubles as the monitor's observational-contract check, and the
    per-name windowed PSI of the replayed stream lands in the result.
    """
    from repro.serve.adaptive import AdaptiveBatchTuner
    from repro.serve.router import ServingGateway

    models = {
        kind: make_serve_model(kind, n_train, n_features, n_trees, seed + i)
        for i, kind in enumerate(kinds)
    }
    rows, _ = _synth(n_requests, n_features, seed + 1)
    route = np.random.default_rng(seed + 2).integers(0, len(kinds), n_requests)

    registry = ModelRegistry()
    for kind, model in models.items():
        registry.register(kind, model, promote=True)

    plane = None
    if monitor:
        from repro.serve.monitor import MonitoringPlane, PsiThresholdRule

        X_train, _ = _synth(n_train, n_features, seed)
        plane = MonitoringPlane(registry, window=512, min_window=128, eval_every=1024)
        for kind in kinds:
            registry.set_reference(kind, X_train)
            plane.watch(kind)
        plane.add_rule(PsiThresholdRule(threshold=0.25, action="alert"))

    t0 = time.perf_counter()
    ref: dict[str, list[float]] = {kind: [] for kind in kinds}
    for row, r in zip(rows, route):
        kind = kinds[r]
        ref[kind].append(float(models[kind].predict(row[None, :])[0]))
    t_direct = time.perf_counter() - t0

    waves = np.array_split(np.arange(n_requests), max(1, n_waves))
    with ServingGateway(
        registry, max_batch=max_batch, max_delay=max_delay,
        cache_entries=2 * n_requests,
    ) as gw:
        if plane is not None:
            plane.attach(gw)
        tuner = AdaptiveBatchTuner(gw, target_latency_ms=target_latency_ms)
        t0 = time.perf_counter()
        got: dict[str, list[float]] = {kind: [] for kind in kinds}
        for wave in waves:
            tickets = [(kinds[route[i]], gw.submit(kinds[route[i]], rows[i])) for i in wave]
            gw.flush()
            for kind, ticket in tickets:
                got[kind].append(ticket.result(timeout=30.0))
            if tune:
                tuner.step()
        t_gateway = time.perf_counter() - t0

        for kind in kinds:  # hard gate: survives python -O
            if not np.array_equal(np.array(got[kind]), np.array(ref[kind])):
                raise RuntimeError(f"gateway results for {kind!r} are not bit-identical")

        stats = gw.stats()
        limits = tuner.limits()

    total = stats.total
    result = {
        "models": list(kinds),
        "n_trees": n_trees,
        "n_requests": n_requests,
        "max_batch": max_batch,
        "max_delay_ms": round(1e3 * max_delay, 3),
        "direct_s": round(t_direct, 4),
        "gateway_s": round(t_gateway, 4),
        "direct_rps": round(n_requests / t_direct, 1),
        "gateway_rps": round(n_requests / t_gateway, 1),
        "speedup_gateway": round(t_direct / t_gateway, 2),
        "batches": total.batches,
        "mean_batch_rows": round(total.mean_batch_rows, 1),
        "mean_latency_ms": round(total.mean_latency_ms, 3),
        "tuned": bool(tune),
        "per_model": {
            kind: {
                "requests": s.requests,
                "batches": s.batches,
                "mean_batch_rows": round(s.mean_batch_rows, 1),
                "mean_latency_ms": round(s.mean_latency_ms, 3),
                "final_max_batch": limits[kind][0],
                "final_max_delay_ms": round(1e3 * limits[kind][1], 3),
            }
            for kind, s in stats.per_name.items()
        },
    }
    if plane is not None:
        result["monitor"] = {
            "tap_errors": gw.tap_errors,
            "alerts": len(plane.events),
            "per_name": {
                name: {k: entry[k] for k in ("n_observed", "max_psi") if k in entry}
                for name, entry in plane.status().items()
            },
        }
    return result


def run_monitor_bench(
    kind: str = "forest",
    n_train: int = 3000,
    n_features: int = 12,
    n_trees: int = 150,
    n_requests: int = 2000,
    max_batch: int = 256,
    max_delay: float = 0.05,
    seed: int = 0,
    repeats: int = 7,
    max_overhead_pct: float = 5.0,
) -> dict:
    """Monitoring-plane overhead + detection benchmark.

    Two measurements, both bit-identity gated:

    * **overhead** — the same single-row stream replayed through an
      unmonitored and a monitored gateway (drift profile + EU tap +
      alert-only policy watching every request).  Each path runs
      ``repeats`` times and keeps its best wall time, so the reported
      overhead is plumbing cost, not scheduler noise.  ``max_delay``
      deliberately exceeds the time a size flush takes to accumulate:
      with a razor-thin deadline, microseconds of per-request tap cost
      can tip the oldest pending ticket over it and *change the batch
      shape* (more, smaller deadline flushes) — the measurement then
      compares two different batching regimes instead of the monitor's
      actual cost.  A deterministic all-size-flush stream isolates the
      plumbing.  The monitor's contract is ≤ ``max_overhead_pct`` slower
      — enforced here, so a regression fails the bench instead of
      shipping.
    * **detection** — a drifted replay of the stream (shifted/scaled
      rows) against a two-version registry: the PSI rule must fire and
      auto-rollback production, witnessed in the recorded entry.
    """
    from repro.ml.uncertainty import epistemic_sample
    from repro.serve.monitor import MonitoringPlane, PsiThresholdRule
    from repro.serve.router import ServingGateway

    model = make_serve_model(kind, n_train, n_features, n_trees, seed)
    retrained = make_serve_model(kind, n_train, n_features, n_trees, seed + 1)
    X_train, _ = _synth(n_train, n_features, seed)
    rows, _ = _synth(n_requests, n_features, seed + 1)
    drifted = rows * 1.8 + 1.2  # the whole population moved

    registry = ModelRegistry()
    v1 = registry.register(kind, model, promote=True)
    try:
        eu = epistemic_sample(model, X_train)
    except TypeError:
        eu = None  # gbm: no predict_dist/decompose — drift reference only
    registry.set_reference(kind, X_train, eu=eu)
    v2 = registry.register(kind, retrained)

    def stream(gateway) -> tuple[float, np.ndarray]:
        # measurement hygiene: a GC cycle landing inside one replay but
        # not the other would swamp the microseconds under test
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            tickets = [gateway.submit(kind, row) for row in rows]
            gateway.flush()
            out = np.array([t.result(timeout=30.0) for t in tickets])
            return time.perf_counter() - t0, out
        finally:
            gc.enable()

    def overhead_round() -> tuple[float, float, float, int]:
        """One comparison round: ``repeats`` *adjacent* plain/monitored
        pairs, overhead = median of the per-pair ratios.

        Pairing matters on a shared box: background load comes in slices
        longer than one stream, so an unpaired best-of-N can hand the
        plain path a quiet slice the monitored path never saw and report
        the weather as monitor cost.  Adjacent pairs see the same slice
        and the median shrugs off the pairs that straddle a transition.
        The reported times are the *median pair's*, so the recorded
        req/s and overhead_pct describe the same measurement.
        """
        nonlocal ref
        pairs = []  # (overhead_pct, t_plain, t_monitored) per adjacent pair
        alerts = 0
        for _ in range(repeats):
            with ServingGateway(
                registry, max_batch=max_batch, max_delay=max_delay, cache_entries=1,
            ) as gw:
                tp, out = stream(gw)
                if ref is None:
                    ref = out
                elif not np.array_equal(out, ref):
                    raise RuntimeError("unmonitored replays disagree")
            # the high-rate production configuration: profile every 2nd
            # request (sample=2 — a strided window estimates the same
            # population; the stride is the dial that keeps monitor cost
            # flat as request rates grow), evaluate the policy every 512
            # profiled rows.  Drift-profile watch only: the stream is all
            # `predict` traffic, so an EU tap could never observe anything
            # — and a drift-only plane declares wants_results() False,
            # letting the gateway skip the per-ticket result dispatch it
            # would not use
            plane = MonitoringPlane(
                registry, window=512, min_window=128, eval_every=512, sample=2,
            )
            plane.watch(kind, reference=X_train)
            plane.add_rule(
                PsiThresholdRule(threshold=0.25, action="alert"), names=[kind]
            )
            with ServingGateway(
                registry, max_batch=max_batch, max_delay=max_delay, cache_entries=1,
            ) as gw:
                plane.attach(gw)
                tm, out = stream(gw)
                if not np.array_equal(out, ref):  # hard gate: survives python -O
                    raise RuntimeError("monitored results are not bit-identical")
                if gw.tap_errors:
                    raise RuntimeError(
                        f"monitor tap raised {gw.tap_errors} time(s)"
                    )
            pairs.append((100.0 * (tm - tp) / tp, tp, tm))
            alerts += len(plane.events)  # spurious alerts from ANY pair count
        pairs.sort()
        return (*pairs[len(pairs) // 2], alerts)

    ref = None
    rounds = 0
    for attempt in range(3):  # noisy-neighbour retries, never a laxer gate
        rounds += 1
        overhead_pct, t_plain, t_monitored, in_dist_alerts = overhead_round()
        if overhead_pct <= max_overhead_pct:
            break
    if overhead_pct > max_overhead_pct:
        raise RuntimeError(
            f"monitor overhead {overhead_pct:.2f}% exceeds the "
            f"{max_overhead_pct:.1f}% budget ({rounds} rounds)"
        )

    # --- detection + auto-rollback under injected drift --------------- #
    # not overhead-gated, so the plane runs at full rate and a responsive
    # cadence; the trailing evaluate() makes short --requests runs
    # deterministic too (a stream can end between cadence points)
    registry.promote(kind, v2)  # production v2, rollback target v1
    plane = MonitoringPlane(registry, window=512, min_window=128, eval_every=256)
    plane.watch(kind)
    plane.add_rule(PsiThresholdRule(threshold=0.25, action="rollback"), names=[kind])
    with ServingGateway(
        registry, max_batch=max_batch, max_delay=max_delay, cache_entries=1,
    ) as gw:
        plane.attach(gw)
        tickets = [gw.submit(kind, row) for row in drifted]
        gw.flush()
        for t in tickets:
            t.result(timeout=30.0)
        plane.evaluate(kind)
    events = [
        {"rule": e.rule, "action": e.action, "value": round(e.value, 4)}
        for e in plane.events
    ]
    if not any(e["action"] == "rollback" for e in events):
        raise RuntimeError("injected drift did not trigger the rollback policy")
    if registry.production_version(kind) != v1:
        raise RuntimeError("auto-rollback did not restore the previous production")

    return {
        "model": kind,
        "n_trees": n_trees,
        "n_requests": n_requests,
        "repeats": repeats,
        "rounds": rounds,
        "profile_sample": 2,   # overhead config: every 2nd request profiled
        "plain_s": round(t_plain, 4),
        "monitored_s": round(t_monitored, 4),
        "plain_rps": round(n_requests / t_plain, 1),
        "monitored_rps": round(n_requests / t_monitored, 1),
        "overhead_pct": round(overhead_pct, 2),
        "max_overhead_pct": max_overhead_pct,
        "in_dist_alerts": in_dist_alerts,
        "drift_events": events,
        "rolled_back_to": v1,
        "max_psi": plane.status()[kind].get("max_psi"),
    }


def run_fault_bench(
    kind: str = "forest",
    n_train: int = 3000,
    n_features: int = 12,
    n_trees: int = 150,
    n_requests: int = 1000,
    n_shards: int = 2,
    max_batch: int = 256,
    max_delay: float = 0.002,
    seed: int = 0,
    n_kills: int = 5,
    repeats: int = 5,
    max_overhead_pct: float = 5.0,
) -> dict:
    """Fault-injection benchmark: resilience-wrapper overhead + recovery latency.

    Two measurements against a replicated ``n_shards`` cluster:

    * **overhead** — the same single-row stream replayed bare
      (``cluster.submit``) and wrapped (``RetryController.submit``), in
      adjacent pairs with the monitor bench's GC hygiene; the happy-path
      cost of the retry front door must stay within ``max_overhead_pct``
      (the serve stack's standing ≤5% gate) — enforced here, so a
      regression fails the bench instead of shipping.
    * **recovery** — with a :class:`~repro.serve.resilience.ShardSupervisor`
      respawning in the background, a shard is hard-killed ``n_kills``
      times and each kill's *time-to-first-success* (kill returns → the
      next wrapped request completes, bit-identical) is recorded; the
      entry carries the p50/p99 across kills.  A malformed request is
      also pushed through the wrapper and must fail fast with its
      4xx-class code and **zero** retries.

    Every successful result — wrapped, bare, and recovered — is asserted
    bit-identical to direct in-process predicts before any number is
    reported: recovery changes where a request scores, never what it
    returns.
    """
    from repro.serve.errors import ErrorCode, code_of
    from repro.serve.resilience import RetryController, ShardSupervisor
    from repro.serve.shard import ShardedServingCluster

    model = make_serve_model(kind, n_train, n_features, n_trees, seed)
    rows, _ = _synth(n_requests, n_features, seed + 1)
    ref = np.array([model.predict(row[None, :])[0] for row in rows])

    registry = ModelRegistry()
    registry.register(kind, model, promote=True)

    def stream(submit_fn, cluster) -> tuple[float, np.ndarray]:
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            tickets = [submit_fn(kind, row) for row in rows]
            cluster.flush()
            out = np.array([t.result(timeout=60.0) for t in tickets])
            return time.perf_counter() - t0, out
        finally:
            gc.enable()

    # --- overhead: bare vs retry-wrapped, adjacent pairs -------------- #
    overhead_pct = t_bare = t_wrapped = None
    rounds = 0
    for attempt in range(3):  # noisy-neighbour retries, never a laxer gate
        rounds += 1
        pairs = []
        with ShardedServingCluster(
            registry, n_shards=n_shards, route="replicated",
            max_batch=max_batch, max_delay=max_delay, cache_entries=1,
        ) as cluster:
            retry = RetryController(cluster, deadline_s=60.0, seed=seed)
            for _ in range(repeats):
                tb, out = stream(cluster.submit, cluster)
                if not np.array_equal(out, ref):  # hard gate: survives python -O
                    raise RuntimeError("bare cluster results are not bit-identical")
                tw, out = stream(retry.submit, cluster)
                if not np.array_equal(out, ref):
                    raise RuntimeError("retry-wrapped results are not bit-identical")
                pairs.append((100.0 * (tw - tb) / tb, tb, tw))
            wrapped_stats = retry.stats()
        pairs.sort()
        overhead_pct, t_bare, t_wrapped = pairs[len(pairs) // 2]
        if overhead_pct <= max_overhead_pct:
            break
    if overhead_pct > max_overhead_pct:
        raise RuntimeError(
            f"resilience overhead {overhead_pct:.2f}% exceeds the "
            f"{max_overhead_pct:.1f}% budget ({rounds} rounds)"
        )
    if wrapped_stats.retries or wrapped_stats.failed_fast:
        raise RuntimeError("happy-path stream should never retry or fail")

    # --- recovery: kill/respawn storm under supervisor + retry -------- #
    recovery_s: list[float] = []
    with ShardedServingCluster(
        registry, n_shards=n_shards, route="replicated",
        max_batch=max_batch, max_delay=max_delay, cache_entries=1,
    ) as cluster:
        retry = RetryController(cluster, deadline_s=60.0, seed=seed)
        with ShardSupervisor(cluster, check_interval_s=0.02) as sup:
            sup.start()
            for k in range(n_kills):
                victim = cluster.live_shards()[k % n_shards]
                cluster.kill_shard(victim)
                t0 = time.perf_counter()
                probe = rows[k % n_requests]
                got = retry.predict(kind, probe, timeout=60.0)
                recovery_s.append(time.perf_counter() - t0)
                if got != float(model.predict(probe[None, :])[0]):
                    raise RuntimeError("recovered result is not bit-identical")
                deadline = time.monotonic() + 30.0
                while len(cluster.live_shards()) < n_shards:
                    if time.monotonic() > deadline:
                        raise RuntimeError(f"supervisor never respawned shard {victim}")
                    time.sleep(0.01)
            sup_stats = sup.stats()

        # malformed input: coded 4xx, zero retries, fails fast
        before = retry.stats()
        try:
            retry.predict(kind, np.zeros((2, 2, 2)), timeout=5.0)
        except Exception as exc:
            if code_of(exc) is not ErrorCode.MALFORMED_REQUEST:
                raise RuntimeError(
                    f"malformed request coded {code_of(exc).name}, "
                    "expected MALFORMED_REQUEST"
                )
        else:
            raise RuntimeError("malformed request did not fail")
        after = retry.stats()
        if after.retries != before.retries:
            raise RuntimeError("malformed request must never be retried")
        recovery_stats = retry.stats()

    rec_ms = 1e3 * np.asarray(recovery_s)
    return {
        "model": kind,
        "n_trees": n_trees,
        "n_requests": n_requests,
        "n_shards": n_shards,
        "repeats": repeats,
        "rounds": rounds,
        "bare_s": round(t_bare, 4),
        "wrapped_s": round(t_wrapped, 4),
        "bare_rps": round(n_requests / t_bare, 1),
        "wrapped_rps": round(n_requests / t_wrapped, 1),
        "overhead_pct": round(overhead_pct, 2),
        "max_overhead_pct": max_overhead_pct,
        "n_kills": n_kills,
        "recovery_p50_ms": round(float(np.percentile(rec_ms, 50)), 3),
        "recovery_p99_ms": round(float(np.percentile(rec_ms, 99)), 3),
        "recovery_max_ms": round(float(rec_ms.max()), 3),
        "respawns": sup_stats.respawns,
        "respawn_failures": sup_stats.respawn_failures,
        "retries": recovery_stats.retries,
        "recovered": recovery_stats.recovered,
        "failed_fast": recovery_stats.failed_fast,
        "exhausted": recovery_stats.exhausted,
    }


def run_net_bench(
    kind: str = "forest",
    n_train: int = 3000,
    n_features: int = 12,
    n_trees: int = 150,
    n_requests: int = 2000,
    max_batch: int = 256,
    max_delay: float = 0.002,
    seed: int = 0,
    window: int = 64,
    overload_requests: int = 300,
    overload_in_flight: int = 16,
    shards: int = 0,
    transport: str = "pipe",
) -> dict:
    """Network front-door benchmark: wire latency + admission shedding.

    With ``shards > 0`` the server fronts a hash-routed
    :class:`~repro.serve.shard.ShardedServingCluster` on the chosen shard
    ``transport`` instead of an in-process gateway — the TCP edge and the
    worker fan-out compose, and the same bit-identity gates apply end to
    end (wire → parent → worker → wire).

    Two measurements against an :class:`AsyncServeServer` fronting the
    backend:

    * **latency** — the serve bench's single-row stream replayed through a
      pipelined :class:`ServeClient` (at most ``window`` outstanding, so
      the wire sees a steady stream, not one giant burst), per-request
      round-trip stamped at send/recv.  Every wire value — the stream,
      a ``predict_dist`` sample, and an (m, d) block — is asserted
      bit-identical (``np.array_equal``) to direct in-process predicts
      before any number is reported: JSON floats round-trip exactly, so
      the network edge must be invisible in the numbers.
    * **overload** — a second server with a deliberately small in-flight
      budget behind a slow deadline flush, blasted with an unthrottled
      burst.  Admission control must shed (``OVERLOADED``, retryable) —
      the recorded shed rate witnesses bounded queues — and every request
      that was *not* shed must still come back bit-identical.
    """
    from repro.serve.net import AsyncServeServer, ServeClient
    from repro.serve.errors import ErrorCode, code_of
    from repro.serve.router import ServingGateway
    from repro.serve.shard import ShardedServingCluster

    model = make_serve_model(kind, n_train, n_features, n_trees, seed)
    rows, _ = _synth(n_requests, n_features, seed + 1)
    ref = np.array([model.predict(row[None, :])[0] for row in rows])

    registry = ModelRegistry()
    registry.register(kind, model, promote=True)

    def backend(**kwargs):
        if shards > 0:
            return ShardedServingCluster(
                registry, n_shards=shards, route="hash", transport=transport,
                **kwargs,
            )
        return ServingGateway(registry, **kwargs)

    # --- latency: pipelined windowed stream + dist/block identity ----- #
    # cache_entries=1: the wire replay of the same rows must exercise the
    # batcher, not the prediction cache — this measures the edge, cold
    with backend(
        max_batch=max_batch, max_delay=max_delay, cache_entries=1,
    ) as gw:
        t0 = time.perf_counter()
        tickets = [gw.submit(kind, row) for row in rows]
        gw.flush()
        inproc = np.array([t.result(timeout=30.0) for t in tickets])
        t_inproc = time.perf_counter() - t0
        if not np.array_equal(inproc, ref):  # hard gate: survives python -O
            raise RuntimeError("in-process gateway results are not bit-identical")

        with AsyncServeServer(gw, max_in_flight=4 * window) as server:
            with ServeClient(server.host, server.port, timeout=60.0) as client:
                sent_at: list[float] = []
                latency_s: list[float] = []
                got: list[float] = []

                def recv_one() -> None:
                    got.append(client.recv())
                    latency_s.append(time.perf_counter() - sent_at[len(got) - 1])

                gc.collect()
                gc.disable()
                try:
                    t0 = time.perf_counter()
                    for row in rows:
                        if client.outstanding >= window:
                            recv_one()
                        sent_at.append(time.perf_counter())
                        client.send(kind, row)
                    while client.outstanding:
                        recv_one()
                    t_net = time.perf_counter() - t0
                finally:
                    gc.enable()
                if not np.array_equal(np.array(got), ref):
                    raise RuntimeError("wire results are not bit-identical")

                # a distribution and a block must round-trip exactly too
                mean, var = client.predict_dist(kind, rows[0])
                ref_m, ref_v = model.predict_dist(rows[0][None, :])
                if (mean, var) != (float(ref_m[0]), float(ref_v[0])):
                    raise RuntimeError("wire predict_dist is not bit-identical")
                block = client.predict(kind, rows[:64])
                if not np.array_equal(block, model.predict(rows[:64])):
                    raise RuntimeError("wire block predict is not bit-identical")
            counters = server.counters()
        if counters["shed"]:
            raise RuntimeError("latency stream must never be shed")

    lat_ms = 1e3 * np.asarray(latency_s)

    # --- overload: unthrottled burst against a tiny budget ------------ #
    # a slow deadline flush (no size trigger) holds tickets in flight, so
    # the burst outruns the budget and admission control must shed
    with backend(
        max_batch=4 * overload_requests, max_delay=0.05, cache_entries=1,
    ) as gw:
        with AsyncServeServer(gw, max_in_flight=overload_in_flight) as server:
            with ServeClient(server.host, server.port, timeout=60.0) as client:
                for i in range(overload_requests):
                    client.send(kind, rows[i % n_requests])
                served, shed_seen = [], 0
                for i in range(overload_requests):
                    try:
                        served.append((i, client.recv()))
                    except Exception as exc:
                        if code_of(exc) is not ErrorCode.OVERLOADED:
                            raise
                        shed_seen += 1
            counters_over = server.counters()
    if shed_seen == 0:
        raise RuntimeError("overload burst was never shed")
    if counters_over["shed"] != shed_seen:
        raise RuntimeError("server shed count disagrees with client's")
    for i, value in served:
        if value != ref[i % n_requests]:
            raise RuntimeError("non-shed overload results are not bit-identical")

    return {
        "model": kind,
        "n_trees": n_trees,
        "n_requests": n_requests,
        "max_batch": max_batch,
        "max_delay_ms": round(1e3 * max_delay, 3),
        "window": window,
        "shards": shards,
        "shard_transport": transport if shards > 0 else None,
        "inproc_s": round(t_inproc, 4),
        "net_s": round(t_net, 4),
        "inproc_rps": round(n_requests / t_inproc, 1),
        "net_rps": round(n_requests / t_net, 1),
        "net_p50_ms": round(float(np.percentile(lat_ms, 50)), 3),
        "net_p99_ms": round(float(np.percentile(lat_ms, 99)), 3),
        "net_max_ms": round(float(lat_ms.max()), 3),
        "wire_requests": counters["requests"],
        "wire_responses": counters["responses"],
        "overload_requests": overload_requests,
        "overload_in_flight": overload_in_flight,
        "served": len(served),
        "shed": shed_seen,
        "shed_rate": round(shed_seen / overload_requests, 4),
    }


def run_shard_bench(
    kinds: tuple[str, ...] = ("forest", "gbm"),
    n_train: int = 3000,
    n_features: int = 12,
    n_trees: int = 150,
    n_requests: int = 2000,
    n_shards: int = 2,
    max_batch: int = 256,
    max_delay: float = 0.002,
    seed: int = 0,
    block_repeats: int = 5,
    transport: str = "pipe",
) -> dict:
    """Process-sharded serving comparison, two traffic shapes:

    * **stream** — the gateway bench's interleaved single-row stream, now
      hash-routed across ``n_shards`` worker processes (each name's
      traffic lands on one shard's batcher + cache), and
    * **block** — one large (n_requests, d) batch fanned row-parallel
      across a replicated cluster, against the same ``model.predict`` in
      the parent process.

    Every path is asserted bit-identical (``np.array_equal``) to direct
    in-process predicts before any number is reported — sharding must be
    invisible in the numbers, exactly like micro-batching itself.
    """
    from repro.serve.shard import ShardedServingCluster

    models = {
        kind: make_serve_model(kind, n_train, n_features, n_trees, seed + i)
        for i, kind in enumerate(kinds)
    }
    rows, _ = _synth(n_requests, n_features, seed + 1)
    route = np.random.default_rng(seed + 2).integers(0, len(kinds), n_requests)

    registry = ModelRegistry()
    for kind, model in models.items():
        registry.register(kind, model, promote=True)

    t0 = time.perf_counter()
    ref: dict[str, list[float]] = {kind: [] for kind in kinds}
    for row, r in zip(rows, route):
        kind = kinds[r]
        ref[kind].append(float(models[kind].predict(row[None, :])[0]))
    t_direct = time.perf_counter() - t0

    # --- stream: hash-routed single rows over N shards ---------------- #
    with ShardedServingCluster(
        registry, n_shards=n_shards, route="hash", transport=transport,
        max_batch=max_batch, max_delay=max_delay, cache_entries=2 * n_requests,
    ) as cluster:
        shard_of = {kind: cluster.shard_of(kind) for kind in kinds}
        t0 = time.perf_counter()
        tickets = [(kinds[route[i]], cluster.submit(kinds[route[i]], rows[i]))
                   for i in range(n_requests)]
        cluster.flush()
        got: dict[str, list[float]] = {kind: [] for kind in kinds}
        for kind, ticket in tickets:
            got[kind].append(ticket.result(timeout=60.0))
        t_stream = time.perf_counter() - t0

        for kind in kinds:  # hard gate: survives python -O
            if not np.array_equal(np.array(got[kind]), np.array(ref[kind])):
                raise RuntimeError(f"sharded results for {kind!r} are not bit-identical")
        stats = cluster.stats()

    # --- block: row-parallel fan-out over a replicated cluster -------- #
    kind0 = kinds[0]
    t0 = time.perf_counter()
    for _ in range(block_repeats):
        block_ref = models[kind0].predict(rows)
    t_block_direct = time.perf_counter() - t0

    with ShardedServingCluster(
        registry, n_shards=n_shards, route="replicated", transport=transport,
        max_batch=max_batch, max_delay=max_delay,
    ) as cluster:
        cluster.predict_block(kind0, rows[: n_shards], timeout=60.0)  # warm services
        t0 = time.perf_counter()
        for _ in range(block_repeats):
            block_got = cluster.predict_block(kind0, rows, timeout=60.0)
        t_block = time.perf_counter() - t0

    if not np.array_equal(block_got, block_ref):
        raise RuntimeError("replicated block fan-out is not bit-identical")

    total = stats.total
    return {
        "models": list(kinds),
        "n_shards": n_shards,
        "transport": transport,
        "n_trees": n_trees,
        "n_requests": n_requests,
        "max_batch": max_batch,
        "max_delay_ms": round(1e3 * max_delay, 3),
        "direct_s": round(t_direct, 4),
        "cluster_s": round(t_stream, 4),
        "direct_rps": round(n_requests / t_direct, 1),
        "cluster_rps": round(n_requests / t_stream, 1),
        "speedup_cluster": round(t_direct / t_stream, 2),
        "batches": total.batches,
        "mean_batch_rows": round(total.mean_batch_rows, 1),
        "mean_latency_ms": round(total.mean_latency_ms, 3),
        "shard_of": shard_of,
        "block_model": kind0,
        "block_rows": int(rows.shape[0]),
        "block_repeats": int(block_repeats),
        "block_direct_s": round(t_block_direct, 4),
        "block_cluster_s": round(t_block, 4),
        "speedup_block": round(t_block_direct / t_block, 2),
        "per_shard_requests": {
            sid: gw.total.requests for sid, gw in sorted(stats.per_shard.items())
        },
    }


def run_transport_bench(
    kinds: tuple[str, ...] = ("forest", "gbm"),
    n_train: int = 3000,
    n_features: int = 12,
    n_trees: int = 150,
    n_requests: int = 2000,
    n_shards: int = 2,
    max_batch: int = 256,
    max_delay: float = 0.002,
    seed: int = 0,
    window: int = 64,
    zipf_a: float = 1.3,
    steal_threshold: int = 4,
) -> dict:
    """Transport comparison benchmark: pipe vs socket, steal on vs off.

    Two measurements against hash-routed ``n_shards`` clusters serving a
    Zipf-skewed multi-name stream (each estimator registered under two
    names; request names drawn ``p ∝ rank^-zipf_a``, so a hot head name
    dominates — the load-skew regime the taxonomy paper's deployment
    sections describe):

    * **transport** — the identical windowed stream (at most ``window``
      tickets outstanding, per-request submit→result latency stamped)
      replayed over ``transport="pipe"`` and ``transport="socket"``.
      Both result sets are asserted bit-identical to direct in-process
      predicts *and* to each other before any number is reported — the
      binary ndarray frames must be invisible in the values.
    * **steal** — the stream restricted to the names owned by one shard
      (maximal hash skew: the other worker would idle), replayed with
      ``steal=False`` and ``steal=True``.  With stealing on, congested
      singles reroute to the idle replica (``steals`` must be > 0) and
      every value stays bit-identical — the entry records the tail
      latency both ways.
    """
    import pickle as _pickle
    from collections import deque

    from repro.serve.shard import ShardedServingCluster, shard_for_name

    estimators = [
        make_serve_model(kind, n_train, n_features, n_trees, seed + i)
        for i, kind in enumerate(kinds)
    ]
    # two names per estimator (independent pickle copies: registration
    # freezes in place, and two names must not share one frozen object)
    models = {}
    for i, kind in enumerate(kinds):
        models[f"{kind}-a"] = estimators[i]
        models[f"{kind}-b"] = _pickle.loads(_pickle.dumps(estimators[i]))
    names = sorted(models)

    rows, _ = _synth(n_requests, n_features, seed + 1)
    # Zipf-skewed name stream: p ∝ rank^-a over a seeded rank permutation
    rng = np.random.default_rng(seed + 2)
    ranks = rng.permutation(len(names))
    p = (1.0 + ranks.astype(float)) ** -zipf_a
    p /= p.sum()
    name_ix = rng.choice(len(names), size=n_requests, p=p)
    name_seq = [names[i] for i in name_ix]

    registry = ModelRegistry()
    for name, model in models.items():
        registry.register(name, model, promote=True)

    ref: dict[str, list[float]] = {name: [] for name in names}
    for name, row in zip(name_seq, rows):
        ref[name].append(float(models[name].predict(row[None, :])[0]))

    def stream(cluster, seq) -> tuple[float, np.ndarray, dict[str, list[float]]]:
        """Windowed pipelined replay; returns (wall_s, latency_s, per-name)."""
        pending: deque = deque()
        latency: list[float] = []
        got: dict[str, list[float]] = {name: [] for name in names}

        def drain_one() -> None:
            t_sent, nm, ticket = pending.popleft()
            got[nm].append(ticket.result(timeout=60.0))
            latency.append(time.perf_counter() - t_sent)

        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            for nm, row in zip(seq, rows):
                if len(pending) >= window:
                    drain_one()
                pending.append((time.perf_counter(), nm, cluster.submit(nm, row)))
            cluster.flush()
            while pending:
                drain_one()
            wall = time.perf_counter() - t0
        finally:
            gc.enable()
        return wall, np.asarray(latency), got

    def check(got: dict[str, list[float]], want: dict[str, list[float]], label: str) -> None:
        for nm in names:  # hard gate: survives python -O
            if not np.array_equal(np.array(got[nm]), np.array(want[nm])):
                raise RuntimeError(f"{label} results for {nm!r} are not bit-identical")

    # --- pipe vs socket over the identical skewed stream -------------- #
    per_transport: dict[str, dict] = {}
    got_by_transport: dict[str, dict] = {}
    for transport in ("pipe", "socket"):
        with ShardedServingCluster(
            registry, n_shards=n_shards, route="hash", transport=transport,
            max_batch=max_batch, max_delay=max_delay, cache_entries=1,
        ) as cluster:
            wall, lat, got = stream(cluster, name_seq)
        check(got, ref, f"transport={transport}")
        got_by_transport[transport] = got
        lat_ms = 1e3 * lat
        per_transport[transport] = {
            "wall_s": round(wall, 4),
            "rps": round(n_requests / wall, 1),
            "p50_ms": round(float(np.percentile(lat_ms, 50)), 3),
            "p99_ms": round(float(np.percentile(lat_ms, 99)), 3),
        }
    check(got_by_transport["socket"], got_by_transport["pipe"], "socket-vs-pipe")

    # --- steal off vs on under maximal hash skew ---------------------- #
    # keep only the names one shard owns: every request hash-routes to
    # that owner, the other workers idle — stealing's target regime
    owners = {name: shard_for_name(name, n_shards) for name in names}
    owner_counts = {s: sum(1 for v in owners.values() if v == s) for s in set(owners.values())}
    hot_shard = max(owner_counts, key=lambda s: owner_counts[s])
    hot_names = [name for name in names if owners[name] == hot_shard]
    hot_seq = [hot_names[i % len(hot_names)] for i in name_ix]
    hot_ref: dict[str, list[float]] = {name: [] for name in names}
    for name, row in zip(hot_seq, rows):
        hot_ref[name].append(float(models[name].predict(row[None, :])[0]))

    steal_results: dict[str, dict] = {}
    for steal in (False, True):
        with ShardedServingCluster(
            registry, n_shards=n_shards, route="hash", transport="pipe",
            steal=steal, steal_threshold=steal_threshold,
            max_batch=max_batch, max_delay=max_delay, cache_entries=1,
        ) as cluster:
            wall, lat, got = stream(cluster, hot_seq)
            steals = cluster.steals
        check(got, hot_ref, f"steal={steal}")
        if steal and steals == 0:
            raise RuntimeError("stealing never triggered under maximal skew")
        if not steal and steals != 0:
            raise RuntimeError("steals counted with stealing disabled")
        lat_ms = 1e3 * lat
        steal_results["on" if steal else "off"] = {
            "wall_s": round(wall, 4),
            "rps": round(n_requests / wall, 1),
            "p50_ms": round(float(np.percentile(lat_ms, 50)), 3),
            "p99_ms": round(float(np.percentile(lat_ms, 99)), 3),
            "steals": steals,
        }

    return {
        "models": list(kinds),
        "names": names,
        "shard_of": owners,
        "n_trees": n_trees,
        "n_requests": n_requests,
        "n_shards": n_shards,
        "window": window,
        "zipf_a": zipf_a,
        "max_batch": max_batch,
        "max_delay_ms": round(1e3 * max_delay, 3),
        "pipe": per_transport["pipe"],
        "socket": per_transport["socket"],
        "socket_vs_pipe_rps": round(
            per_transport["socket"]["rps"] / per_transport["pipe"]["rps"], 3),
        "steal": {
            "names": hot_names,
            "owner_shard": hot_shard,
            "threshold": steal_threshold,
            "off": steal_results["off"],
            "on": steal_results["on"],
        },
    }


def run_obs_bench(
    kind: str = "forest",
    n_train: int = 3000,
    n_features: int = 12,
    n_trees: int = 150,
    n_requests: int = 2000,
    n_shards: int = 2,
    max_batch: int = 256,
    max_delay: float = 0.05,
    seed: int = 0,
    repeats: int = 7,
    max_overhead_pct: float = 5.0,
    trace_sample: int = 8,
) -> dict:
    """Observability-plane overhead + trace-completeness benchmark.

    Two measurements, both bit-identity gated:

    * **overhead** — the same single-row stream replayed through an
      untraced and a traced gateway at the high-rate production
      configuration: auto-born traces sampled 1-in-``trace_sample``
      (the stride is the dial that keeps span cost flat as request
      rates grow — exactly the monitor plane's profile ``sample``;
      explicitly carried trace ids are never sampled, so on-demand
      request forensics stay exact).  The monitor bench's measurement
      discipline applies verbatim: ``repeats`` *adjacent* plain/traced
      pairs, overhead = the median pair's ratio, GC pinned off during
      each replay, ``max_delay`` large enough that every flush is a
      size flush (so microseconds of span cost cannot change the batch
      shapes under comparison).  The tracing contract is
      ≤ ``max_overhead_pct`` slower — enforced here, so a regression
      fails the bench instead of shipping.
    * **completeness** — one traced request through a hash-routed
      ``n_shards`` socket-transport cluster must reassemble, by trace
      id and across process boundaries, into at least six distinct
      ``(component, stage)`` spans covering gateway → batcher → cluster
      → worker; and the :class:`~repro.serve.obs.metrics.MetricsRegistry`
      snapshot of that cluster must agree *exactly* with
      ``cluster.stats()`` counters in both JSON and Prometheus forms.
    """
    from repro.serve.obs import MetricsRegistry, Tracer, to_prometheus
    from repro.serve.router import ServingGateway
    from repro.serve.shard import ShardedServingCluster

    model = make_serve_model(kind, n_train, n_features, n_trees, seed)
    rows, _ = _synth(n_requests, n_features, seed + 1)
    ref = np.array([model.predict(row[None, :])[0] for row in rows])

    registry = ModelRegistry()
    registry.register(kind, model, promote=True)

    def stream(gateway) -> tuple[float, np.ndarray]:
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            tickets = [gateway.submit(kind, row) for row in rows]
            gateway.flush()
            out = np.array([t.result(timeout=30.0) for t in tickets])
            return time.perf_counter() - t0, out
        finally:
            gc.enable()

    # --- overhead: untraced vs traced gateway, adjacent pairs --------- #
    overhead_pct = t_plain = t_traced = None
    spans_recorded = spans_dropped = 0
    rounds = 0
    for attempt in range(3):  # noisy-neighbour retries, never a laxer gate
        rounds += 1
        pairs = []  # (overhead_pct, t_plain, t_traced) per adjacent pair
        for _ in range(repeats):
            with ServingGateway(
                registry, max_batch=max_batch, max_delay=max_delay, cache_entries=1,
            ) as gw:
                tp, out = stream(gw)
                if not np.array_equal(out, ref):  # hard gate: survives python -O
                    raise RuntimeError("untraced results are not bit-identical")
            tracer = Tracer()
            with ServingGateway(
                registry, max_batch=max_batch, max_delay=max_delay,
                cache_entries=1, tracer=tracer, trace_sample=trace_sample,
            ) as gw:
                tt, out = stream(gw)
                if not np.array_equal(out, ref):
                    raise RuntimeError("traced results are not bit-identical")
            recorded = tracer.recorded()
            if sum(recorded.values()) == 0:
                raise RuntimeError("traced replay recorded no spans")
            pairs.append((100.0 * (tt - tp) / tp, tt, tp, recorded,
                          tracer.dropped()))
        pairs.sort(key=lambda p: p[0])
        overhead_pct, t_traced, t_plain, recorded, dropped = pairs[len(pairs) // 2]
        spans_recorded = sum(recorded.values())
        spans_dropped = sum(dropped.values())
        if overhead_pct <= max_overhead_pct:
            break
    if overhead_pct > max_overhead_pct:
        raise RuntimeError(
            f"tracing overhead {overhead_pct:.2f}% exceeds the "
            f"{max_overhead_pct:.1f}% budget ({rounds} rounds)"
        )

    # --- completeness: one traced request across a socket cluster ----- #
    with ShardedServingCluster(
        registry, n_shards=n_shards, route="hash", transport="socket",
        max_batch=max_batch, max_delay=0.002, cache_entries=1,
        tracer=Tracer(),
    ) as cluster:
        ctx = cluster._tracer.start_trace()
        probe = rows[0]
        got = cluster.submit(kind, probe, trace=ctx).result(timeout=30.0)
        if got != ref[0]:
            raise RuntimeError("traced cluster result is not bit-identical")
        dump = cluster.trace_spans(ctx.trace_id)
        stages = sorted({(s["component"], s["stage"]) for s in dump["spans"]})
        if len(stages) < 6:
            raise RuntimeError(
                f"trace reassembled only {len(stages)} distinct stages "
                f"({stages}); need >= 6 across gateway/batcher/cluster/worker"
            )

        # export agreement: both formats from one snapshot, values read
        # straight off cluster.stats() — any drift is a hard failure
        reg = MetricsRegistry().add_backend(cluster)
        snapshot = reg.collect()
        st = cluster.stats()
        total = st.total
        fam = snapshot["families"]

        def sample_value(name: str) -> float:
            return fam[name]["samples"][0][2]

        agree = {
            "repro_serve_requests_total": float(total.requests),
            "repro_cluster_steals_total": float(st.steals),
            "repro_gateway_tap_errors_total": float(st.tap_errors_total),
            "repro_cluster_shards_live": float(len(st.per_shard)),
        }
        for name, want in agree.items():
            if sample_value(name) != want:
                raise RuntimeError(
                    f"metrics snapshot {name}={sample_value(name)} "
                    f"disagrees with cluster.stats()={want}"
                )
        prom = to_prometheus(snapshot)
        if reg.prometheus() != prom:
            raise RuntimeError("registry prometheus() drifted from its snapshot")
        for name in agree:
            if name not in prom:
                raise RuntimeError(f"{name} missing from Prometheus text")

    return {
        "model": kind,
        "n_trees": n_trees,
        "n_requests": n_requests,
        "n_shards": n_shards,
        "repeats": repeats,
        "rounds": rounds,
        "trace_sample": trace_sample,  # overhead config: 1-in-N auto traces
        "plain_s": round(t_plain, 4),
        "traced_s": round(t_traced, 4),
        "plain_rps": round(n_requests / t_plain, 1),
        "traced_rps": round(n_requests / t_traced, 1),
        "overhead_pct": round(overhead_pct, 2),
        "max_overhead_pct": max_overhead_pct,
        "spans_recorded": spans_recorded,
        "spans_dropped": spans_dropped,
        "trace_stages": ["/".join(s) for s in stages],
        "distinct_stages": len(stages),
        "metrics_agree": sorted(agree),
    }
