"""Resilience plane: retries, circuit breaking, and self-healing shards.

The coded vocabulary of :mod:`repro.serve.errors` says *what* failed and
whether retrying can help; this module is the machinery that acts on it.
Three cooperating pieces wrap a
:class:`~repro.serve.shard.ShardedServingCluster` without touching its
scoring path (results stay bit-identical — recovery changes *where* a
request scores, never *what* it returns):

* :class:`RetryController` — a submit front door with deadline-budgeted
  retries.  Only ``retryable`` codes are retried (a transient shard crash
  is; malformed input never is — resubmitting the same bytes cannot
  help).  The gate is purely taxonomic —
  ``code.category == "transient" and code.retryable`` — so a channel
  failure surfacing as the transport layer's coded ``TRANSPORT_ERROR``
  (510) feeds breakers and retries exactly like a ``SHARD_CRASHED``
  (503), with no ``BrokenPipeError``/``OSError`` pattern-matching
  anywhere in this plane: pipe and socket transports are
  indistinguishable to the resilience machinery by construction
  (:mod:`repro.serve.transport`).  Exponential backoff stays a pure
  function of the injected clock and the seeded jitter stream: replaying
  the same submit order against the same failure schedule reproduces the
  same sleeps, the same attempt counts, the same outcome.  When the
  wrapped cluster carries a :class:`~repro.serve.obs.trace.Tracer`, every
  logical request gets one trace context spanning *all* its attempts:
  the controller records a ``("resilience", "retry")`` span per
  re-attempt (covering the backoff sleep, tagged with the attempt number
  and the coded failure that triggered it), so a recovered request's
  span dump shows exactly where its latency went.
* :class:`CircuitBreaker` — per-shard failure memory.  ``K`` consecutive
  transient failures open the circuit; after ``reset_timeout_s`` one
  half-open probe is let through, and its outcome closes or re-opens.
  An open breaker stops the retry loop from hammering a corpse while the
  supervisor rebuilds it.
* :class:`ShardSupervisor` — the control loop that makes "transient"
  true.  It watches worker liveness (daemon thread in production,
  hand-stepped under an injected clock in tests, exactly like
  :class:`~repro.serve.adaptive.AdaptiveBatchTuner`), respawns dead
  shards from the current parent snapshot, and backs off exponentially
  per shard when a respawn storms (a worker that dies right back gets a
  doubling delay, capped, reset once it stays up).  Every detection and
  respawn outcome is a coded
  :class:`~repro.serve.monitor.policy.MonitorEvent`, recorded into a
  :class:`~repro.serve.monitor.policy.PolicyEngine` when one is attached
  — shard deaths land on the same audit timeline as drift alerts.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable

import numpy as np

from repro.serve.errors import CodedError, ErrorCode, classify_exception
from repro.serve.monitor.policy import MonitorEvent
from repro.serve.stats import ResilienceStats

__all__ = ["CircuitBreaker", "RetryController", "RetryTicket", "ShardSupervisor"]


class CircuitBreaker:
    """Per-shard circuit breaker: closed → open → half-open → closed.

    ``failure_threshold`` *consecutive* transient failures open the
    circuit (one success resets the count — an occasional blip is not an
    outage).  While open, :meth:`try_acquire` refuses traffic until
    ``reset_timeout_s`` of injected-clock time has passed, then admits
    exactly one half-open probe; the probe's success closes the circuit,
    its failure re-opens it for another full timeout.  All transitions
    are pure functions of the injected clock and the recorded outcome
    sequence.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be > 0")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0          # consecutive transient failures while closed
        self._opened_at = 0.0
        self._probe_in_flight = False
        # transition counters (monitoring; guarded by _lock)
        self.opens = 0
        self.probes = 0
        self.closes = 0

    @property
    def state(self) -> str:
        """``"closed"`` | ``"open"`` | ``"half_open"`` (open may lazily
        report half-open readiness only at the next :meth:`try_acquire`)."""
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def try_acquire(self) -> tuple[bool, float]:
        """May a request go through *now*?

        Returns ``(allowed, wait_hint_s)``: when refused, the hint is how
        long the caller should wait before asking again (time until the
        half-open window opens, or one timeout while another probe is in
        flight).  An ``open`` circuit whose timeout has lapsed transitions
        to half-open here and admits the caller as the probe.
        """
        with self._lock:
            if self._state == "closed":
                return True, 0.0
            now = self._clock()
            if self._state == "open":
                remaining = self._opened_at + self.reset_timeout_s - now
                if remaining > 0:
                    return False, remaining
                self._state = "half_open"
                self._probe_in_flight = True
                self.probes += 1
                return True, 0.0
            # half_open: one probe at a time decides the circuit's fate
            if not self._probe_in_flight:
                self._probe_in_flight = True
                self.probes += 1
                return True, 0.0
            return False, self.reset_timeout_s

    def allow(self) -> bool:
        return self.try_acquire()[0]

    def record_success(self) -> None:
        with self._lock:
            was = self._state
            self._state = "closed"
            self._failures = 0
            self._probe_in_flight = False
            if was != "closed":
                self.closes += 1

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            if self._state == "half_open":
                self._state = "open"
                self._opened_at = self._clock()
                self.opens += 1
                return
            self._failures += 1
            if self._state == "closed" and self._failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = self._clock()
                self.opens += 1


class RetryTicket:
    """Handle for one resilient request.

    The *first* attempt is submitted eagerly (at controller ``submit``
    time), so wrapped requests coalesce into the same micro-batches as
    bare ones — the resilience layer must not change batch shapes on the
    happy path.  Retries run lazily inside :meth:`result`: the calling
    thread does its own waiting (no extra machinery threads), so the
    retry trajectory is deterministic per ticket — the backoff stream is
    seeded by ``(controller seed, submit index)`` and driven by the
    injected clock.  The first :meth:`result` call settles the outcome;
    later calls replay it from cache.
    """

    __slots__ = ("_controller", "_name", "_payload", "_kind", "_block",
                 "_index", "_current", "_settled", "_value", "_error",
                 "_trace")

    def __init__(self, controller: "RetryController", name: str,
                 payload: np.ndarray, kind: str, block: bool, index: int,
                 current: Any = None, trace: Any = None):
        self._controller = controller
        self._name = name
        self._payload = payload
        self._kind = kind
        self._block = block
        self._index = index
        self._current = current  # the eagerly-submitted first attempt
        self._trace = trace      # one context for the whole retry trajectory
        self._settled = False
        self._value: Any = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._settled

    def result(self, timeout: float | None = None) -> Any:
        if not self._settled:
            current, self._current = self._current, None
            try:
                self._value = self._controller._run(
                    self._name, self._payload, self._kind, self._block,
                    self._index, timeout, current, self._trace,
                )
            except BaseException as exc:
                self._error = exc
                self._settled = True
                raise
            self._settled = True
        if self._error is not None:
            raise self._error
        return self._value


class RetryController:
    """Deadline-budgeted retry front door over a sharded cluster.

    Parameters
    ----------
    cluster:
        The :class:`~repro.serve.shard.ShardedServingCluster` (anything
        with ``submit``/``submit_block``/``shard_of``/``route``) to wrap.
    deadline_s:
        Default per-request retry budget; ``result(timeout=)`` overrides
        it per call.  The budget covers everything — waits, backoff
        sleeps, resubmissions.
    base_delay_s, max_delay_s, multiplier, jitter:
        Exponential backoff: attempt ``n`` sleeps
        ``min(max_delay_s, base_delay_s * multiplier**n)`` scaled by a
        seeded jitter factor in ``[1-jitter, 1+jitter]``.
    seed:
        Root of the jitter streams; stream ``i`` (the i-th submitted
        ticket) is ``default_rng((seed, i))`` — independent of thread
        interleaving, reproducible per ticket.
    breaker_threshold, breaker_reset_s:
        Per-shard :class:`CircuitBreaker` parameters.
    clock, sleep:
        Injected time sources (fakes make every trajectory a pure
        function of the failure schedule).
    tracer:
        A :class:`~repro.serve.obs.trace.Tracer` for retry-attempt spans;
        defaults to the wrapped cluster's own tracer when it has one, so
        a traced cluster's front door is traced for free.  Tracing is
        observational only — span recording cannot change a retry
        trajectory.

    Only codes with ``retryable=True`` are ever retried; a 4xx-class
    failure surfaces immediately with zero resubmissions.  Hash-routed
    names gate on their owning shard's breaker before each attempt
    (waiting out an open circuit while budget remains); replicated
    routing needs no gate — the cluster itself re-routes around dead
    workers — but outcomes still feed the breakers for observability.
    """

    def __init__(
        self,
        cluster: Any,
        deadline_s: float = 5.0,
        base_delay_s: float = 0.01,
        max_delay_s: float = 0.25,
        multiplier: float = 2.0,
        jitter: float = 0.1,
        seed: int = 0,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        tracer: Any = None,
    ):
        if deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        if base_delay_s <= 0 or max_delay_s < base_delay_s:
            raise ValueError("delays must satisfy 0 < base_delay_s <= max_delay_s")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not (0.0 <= jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")
        self.cluster = cluster
        self.deadline_s = float(deadline_s)
        self.base_delay_s = float(base_delay_s)
        self.max_delay_s = float(max_delay_s)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_reset_s = float(breaker_reset_s)
        self._clock = clock
        self._sleep = sleep
        self._tracer = tracer if tracer is not None else getattr(cluster, "_tracer", None)
        self._lock = threading.Lock()  # guards counters, breakers, index
        self._breakers: dict[int, CircuitBreaker] = {}
        self._next_index = 0
        # counters (guarded by _lock)
        self.submits = 0
        self.retries = 0
        self.recovered = 0
        self.failed_fast = 0
        self.exhausted = 0

    # ------------------------------------------------------------------ #
    def submit(self, name: str, row: np.ndarray, kind: str = "predict") -> RetryTicket:
        """Enqueue one resilient request (row copied: retries may resend
        it long after the caller reused its buffer)."""
        return self._make_ticket(name, np.array(row, dtype=float), kind, block=False)

    def submit_block(self, name: str, X: np.ndarray, kind: str = "predict") -> RetryTicket:
        """Enqueue one (m, d) block; replicated fan-out degrades gracefully
        (the cluster re-routes a dead shard's rows onto live replicas), and
        a whole-block transient failure retries under the same budget."""
        X = np.array(X, dtype=float)
        if X.ndim != 2:
            raise CodedError(f"block must be 2-D, got ndim={X.ndim}",
                             code=ErrorCode.MALFORMED_REQUEST)
        return self._make_ticket(name, X, kind, block=True)

    def predict(self, name: str, row: np.ndarray, timeout: float | None = None) -> Any:
        return self.submit(name, row).result(timeout)

    def predict_dist(self, name: str, row: np.ndarray, timeout: float | None = None) -> Any:
        return self.submit(name, row, kind="predict_dist").result(timeout)

    def predict_block(self, name: str, X: np.ndarray, timeout: float | None = None) -> Any:
        return self.submit_block(name, X).result(timeout)

    def breaker(self, shard_id: int) -> CircuitBreaker:
        """The (lazily created) breaker guarding one shard."""
        with self._lock:
            br = self._breakers.get(shard_id)
            if br is None:
                br = CircuitBreaker(
                    failure_threshold=self._breaker_threshold,
                    reset_timeout_s=self._breaker_reset_s,
                    clock=self._clock,
                )
                self._breakers[shard_id] = br
            return br

    def backoff_delay(self, attempt: int, rng: np.random.Generator) -> float:
        """The attempt-``n`` sleep: clamped exponential times seeded jitter."""
        delay = min(self.max_delay_s, self.base_delay_s * self.multiplier ** attempt)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def stats(self) -> ResilienceStats:
        with self._lock:
            breakers = list(self._breakers.values())
            return ResilienceStats(
                submits=self.submits,
                retries=self.retries,
                recovered=self.recovered,
                failed_fast=self.failed_fast,
                exhausted=self.exhausted,
                breaker_opens=sum(b.opens for b in breakers),
                breaker_probes=sum(b.probes for b in breakers),
                breaker_closes=sum(b.closes for b in breakers),
            )

    # ------------------------------------------------------------------ #
    def _make_ticket(self, name: str, payload: np.ndarray, kind: str,
                     block: bool) -> RetryTicket:
        with self._lock:
            index = self._next_index
            self._next_index += 1
            self.submits += 1
        # one trace context per logical request: every attempt shares the
        # trace id, so a recovered request's span dump reads end-to-end
        trace = self._tracer.start_trace() if self._tracer is not None else None
        # eager first attempt: wrapped traffic coalesces into the same
        # micro-batches as bare traffic (a hash-routed name behind an
        # un-acquirable breaker defers to result(), which can wait)
        current = None
        if (getattr(self.cluster, "route", "hash") != "hash"
                or self.breaker(self.cluster.shard_of(name)).try_acquire()[0]):
            current = self._attempt(name, payload, kind, block, trace)
        return RetryTicket(self, name, payload, kind, block, index, current, trace)

    def _attempt(self, name: str, payload: np.ndarray, kind: str,
                 block: bool, trace: Any) -> Any:
        """One cluster submission; passes ``trace=`` only when a context
        exists so duck-typed stub clusters keep their bare signature.
        Block submits fan out per part and carry no trace (the cluster's
        own tracer still covers their routing)."""
        if block:
            return self.cluster.submit_block(name, payload, kind)
        if trace is not None:
            return self.cluster.submit(name, payload, kind, trace=trace)
        return self.cluster.submit(name, payload, kind)

    def _shard_ids_of(self, ticket: Any) -> list[int]:
        sid = getattr(ticket, "shard_id", None)
        if sid is not None:
            return [sid] if sid >= 0 else []
        return [p.shard_id for p in getattr(ticket, "_parts", ()) if p.shard_id >= 0]

    def _record(self, ticket: Any, ok: bool, transient: bool) -> None:
        for sid in self._shard_ids_of(ticket):
            if ok or not transient:
                # a non-transient coded reply (malformed row, unknown
                # model, scoring failure) is a completed round-trip from a
                # live worker — availability-wise a success.  It MUST
                # report to the breaker: a half-open probe that recorded
                # neither success nor failure would leak the probe slot
                # and wedge the breaker half-open, starving the shard of
                # traffic until an unrelated request happened to report
                # (the chaos harness catches this as poison floods turning
                # into full-deadline CIRCUIT_OPEN stalls)
                self.breaker(sid).record_success()
            else:
                self.breaker(sid).record_failure()

    def _gate(self, shard_id: int, deadline: float) -> None:
        """Wait out an open circuit while budget remains; raise
        ``CIRCUIT_OPEN`` only once the budget cannot cover the wait."""
        br = self.breaker(shard_id)
        while True:
            allowed, wait = br.try_acquire()
            if allowed:
                return
            remaining = deadline - self._clock()
            if remaining <= 0:
                raise CodedError(
                    f"circuit open for shard {shard_id} "
                    f"(state={br.state}, retry budget spent)",
                    code=ErrorCode.CIRCUIT_OPEN,
                )
            self._sleep(min(wait, remaining))

    def _run(self, name: str, payload: np.ndarray, kind: str, block: bool,
             index: int, timeout: float | None, current: Any = None,
             trace: Any = None) -> Any:
        budget = self.deadline_s if timeout is None else float(timeout)
        deadline = self._clock() + budget
        # per-ticket jitter stream, built lazily: Generator construction
        # is the single biggest per-request cost and the happy path never
        # draws from it — deferring keeps the wrap overhead inside budget
        # without changing any retry trajectory (the stream is still a
        # pure function of (seed, index))
        rng: np.random.Generator | None = None
        hash_routed = getattr(self.cluster, "route", "hash") == "hash"
        attempt = 0
        while True:
            if current is not None:
                ticket, current = current, None
            else:
                if hash_routed:
                    self._gate(self.cluster.shard_of(name), deadline)
                ticket = self._attempt(name, payload, kind, block, trace)
            remaining = deadline - self._clock()
            try:
                value = ticket.result(max(remaining, 1e-9))
            except BaseException as exc:
                code = classify_exception(exc)
                self._record(ticket, ok=False,
                             transient=code.category == "transient" and code.retryable)
                if not code.retryable:
                    with self._lock:
                        self.failed_fast += 1
                    raise  # resubmitting the same bytes cannot help
                remaining = deadline - self._clock()
                if remaining <= 0:
                    with self._lock:
                        self.exhausted += 1
                    raise
                if rng is None:
                    rng = np.random.default_rng((self.seed, index))
                delay = self.backoff_delay(attempt, rng)
                t_retry = trace.now() if trace is not None else 0.0
                self._sleep(min(delay, remaining))
                attempt += 1
                with self._lock:
                    self.retries += 1
                if trace is not None:
                    # the backoff sleep is the retry's latency cost; the
                    # resubmission itself shows up as the next cluster span
                    trace.record(
                        "resilience", "retry", t_retry, trace.now(),
                        meta={"attempt": attempt, "code": int(code)},
                    )
                continue
            self._record(ticket, ok=True, transient=False)
            if attempt > 0:
                with self._lock:
                    self.recovered += 1
            return value


class _SupervisedShard:
    """Supervisor-side memory for one shard id."""

    __slots__ = ("down_since", "respawn_count", "last_respawn_at")

    def __init__(self) -> None:
        self.down_since: float | None = None
        self.respawn_count = 0          # consecutive respawns without stability
        self.last_respawn_at = 0.0


class ShardSupervisor:
    """Liveness watchdog: detect dead workers, respawn them, back off storms.

    Duck-typed over the cluster (``n_shards``, ``live_shards()``,
    ``respawn(shard_ids)``), so determinism tests drive it against a stub
    with a hand-cranked clock.  :meth:`step` is one control pass;
    :meth:`start` runs it from a daemon thread every ``check_interval_s``
    (production mode, same split as the adaptive tuner).

    Respawn-storm backoff is per shard: the first respawn of a freshly
    dead worker is immediate, but a shard that keeps dying waits
    ``backoff_base_s * 2**(n-1)`` (capped at ``backoff_max_s``) after its
    n-th respawn; surviving ``stability_window_s`` of clock time resets
    the count.  Every detection and respawn outcome becomes a coded
    :class:`~repro.serve.monitor.policy.MonitorEvent` in :attr:`events`
    (and in the attached policy engine's audit trail, via
    :meth:`~repro.serve.monitor.policy.PolicyEngine.record`).
    """

    RULE = "shard-supervisor"

    def __init__(
        self,
        cluster: Any,
        policy: Any = None,
        check_interval_s: float = 0.05,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        stability_window_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        max_events: int = 1024,
    ):
        if check_interval_s <= 0:
            raise ValueError("check_interval_s must be > 0")
        if backoff_base_s <= 0 or backoff_max_s < backoff_base_s:
            raise ValueError("backoffs must satisfy 0 < base <= max")
        self.cluster = cluster
        self.policy = policy
        self.check_interval_s = float(check_interval_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.stability_window_s = float(stability_window_s)
        self._clock = clock
        self._lock = threading.Lock()  # serializes whole steps
        self._shards: dict[int, _SupervisedShard] = {}
        self.events: deque[MonitorEvent] = deque(maxlen=max_events)
        self.respawns = 0
        self.respawn_failures = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #
    def backoff_for(self, respawn_count: int) -> float:
        """Delay before respawn attempt ``respawn_count + 1`` of a storm."""
        if respawn_count < 1:
            return 0.0
        return min(self.backoff_max_s, self.backoff_base_s * 2.0 ** (respawn_count - 1))

    def step(self) -> list[MonitorEvent]:
        """One watchdog pass; returns the events it emitted.

        Pure function of the injected clock, the cluster's liveness view,
        and the respawn outcomes — stepping a stub cluster through the
        same schedule twice yields identical event streams.
        """
        with self._lock:
            now = self._clock()
            emitted: list[MonitorEvent] = []
            live = set(self.cluster.live_shards())
            for sid in range(self.cluster.n_shards):
                st = self._shards.setdefault(sid, _SupervisedShard())
                if sid in live:
                    st.down_since = None
                    if st.respawn_count and (
                        now - st.last_respawn_at >= self.stability_window_s
                    ):
                        st.respawn_count = 0  # survived: the storm is over
                    continue
                if st.down_since is None:
                    st.down_since = now
                    emitted.append(self._event(
                        now, "alert", sid,
                        f"shard {sid} worker is dead", ErrorCode.SHARD_CRASHED,
                    ))
                wait = self.backoff_for(st.respawn_count)
                ready_at = (st.last_respawn_at + wait) if st.respawn_count else st.down_since
                if now < ready_at:
                    continue  # storm backoff: let the substrate breathe
                st.respawn_count += 1
                st.last_respawn_at = now
                try:
                    n = int(self.cluster.respawn([sid]))
                except Exception as exc:
                    self.respawn_failures += 1
                    emitted.append(self._event(
                        now, "alert-failed", sid,
                        f"respawn of shard {sid} raised "
                        f"{type(exc).__name__}: {exc} "
                        f"(attempt {st.respawn_count}, "
                        f"next in {self.backoff_for(st.respawn_count):.3f}s)",
                        ErrorCode.RESPAWN_FAILED,
                    ))
                    continue
                if n > 0:
                    self.respawns += 1
                    st.down_since = None
                    emitted.append(self._event(
                        now, "respawn", sid,
                        f"shard {sid} respawned from current snapshot "
                        f"(attempt {st.respawn_count})", None,
                    ))
            self.events.extend(emitted)
        if self.policy is not None:
            for event in emitted:
                self.policy.record(event)
        return emitted

    def _event(self, now: float, action: str, shard_id: int,
               detail: str, code: ErrorCode | None) -> MonitorEvent:
        return MonitorEvent(
            at=now, name=f"shard:{shard_id}", rule=self.RULE,
            action=action, value=float(shard_id), detail=detail, code=code,
        )

    def stats(self) -> ResilienceStats:
        with self._lock:
            return ResilienceStats(
                respawns=self.respawns,
                respawn_failures=self.respawn_failures,
            )

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the daemon watchdog (production mode; tests call
        :meth:`step` directly)."""
        if self._thread is not None:
            raise RuntimeError("supervisor already started")
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(self.check_interval_s):
                try:
                    self.step()
                except Exception:
                    # the cluster may be closing under us; the watchdog
                    # itself must never die of a racing shutdown
                    if self._stop.is_set():
                        return

        self._thread = threading.Thread(target=run, name="shard-supervisor", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
