"""Batched inference serving: registry, micro-batcher, cache, gateway.

The layer that turns the packed-forest kernels into a continuously-queried
service: models live in a :class:`ModelRegistry` (frozen on register,
promoted/rolled back in stages), traffic coalesces through a
:class:`MicroBatcher` into single packed-arena calls with bit-identical
results, and duplicate requests — pervasive in HPC I/O telemetry (§VI.A)
— are answered from a version-keyed :class:`PredictionCache`.
:class:`InferenceService` wires the three together behind one ``submit``
for a single name; :class:`ServingGateway` fronts the whole registry with
lazily-created per-name services, and :class:`AdaptiveBatchTuner` steers
every live batcher's ``max_batch``/``max_delay`` toward a latency target.
:class:`ShardedServingCluster` scales the whole stack past one process:
N worker gateways warm-started from pickled frozen models, hash or
replicated routing, broadcast registry mutations, and crash containment —
still bit-identical to the single-process path.

:mod:`repro.serve.monitor` closes the loop the paper's taxonomy demands:
a :class:`MonitoringPlane` taps the gateway/cluster front door
(observationally — monitored serving stays bit-identical), windows the
live stream's drift and epistemic uncertainty against registered
training references, shadow-scores staged challengers, and lets a
:class:`PolicyEngine` alert, auto-promote, or auto-rollback through the
registry's listener machinery so actions propagate cluster-wide.

:mod:`repro.serve.errors` + :mod:`repro.serve.resilience` are the
operational counterpart of the paper's model-error taxonomy: every
boundary failure carries a frozen :class:`ErrorCode` (category, severity,
``retryable``), and a :class:`RetryController` / per-shard
:class:`CircuitBreaker` / :class:`ShardSupervisor` triple turns
"retryable" into actual recovery — deadline-budgeted resubmission,
storm-capped auto-respawn — without touching the bit-identical scoring
path.

:mod:`repro.serve.net` puts the whole front door behind a TCP socket:
:class:`AsyncServeServer` speaks length-prefixed JSON frames over an
asyncio loop, bridges them to gateway/cluster tickets off-loop, sheds
overload with a structured ``OVERLOADED`` wire error, and stays
bit-identical to the in-process path; :class:`ServeClient` is the
blocking, pipelining counterpart.

:mod:`repro.serve.autoscale` + :mod:`repro.serve.chaos` close the
capacity loop and prove the whole stack under storm conditions:
:class:`SLOAutoscaler` is an AIMD controller one level above the batch
tuner — when the fleet's windowed p99 breaches the SLO it grows the
live shard count through ``scale_to`` (and shrinks it on sustained
calm), emitting coded ``MonitorEvent``s; :func:`run_chaos_soak` is the
harness that earns the claims — hundreds-to-thousands of registered
versions, Zipf multi-tenant bursty traffic, kill/respawn storms under
live promote/rollback churn, poison floods, simulator-driven drift —
with a bit-identity witness on every survivor and p50/p99/p999 tails
recorded into the ``BENCH_chaos.json`` trajectory.

:mod:`repro.serve.obs` makes the whole stack legible: a request-scoped
:class:`TraceContext` (born at the network edge or ``gateway.submit``,
sampled 1-in-N, carried on the frame protocol and across shard
transports) records per-stage :class:`Span`\\ s into bounded
:class:`SpanRing`\\ s with drop accounting and p99+ exemplars; a
:class:`MetricsRegistry` freezes the metric-name catalogue and exports
one consistent snapshot of every stats surface as Prometheus text or
JSON (served over the wire and via ``repro obs``); and
:class:`StructuredLogger` emits trace-correlated, coded-error-aware
JSON log lines.  All of it observational: bit-identical serving with
the plane on or off, ≤ 5 % overhead gated by ``run_obs_bench``.
"""

from repro.serve.adaptive import AdaptiveBatchTuner, TuningDecision
from repro.serve.autoscale import ScalingDecision, SLOAutoscaler
from repro.serve.batcher import MicroBatcher, Ticket
from repro.serve.bench import (
    make_serve_model,
    run_fault_bench,
    run_gateway_bench,
    run_net_bench,
    run_obs_bench,
    run_serve_bench,
    run_shard_bench,
    run_transport_bench,
)
from repro.serve.cache import PredictionCache, request_digest
from repro.serve.chaos import (
    ChaosConfig,
    ChaosLinearModel,
    run_chaos_bench,
    run_chaos_soak,
)
from repro.serve.errors import (
    CodedError,
    ErrorCode,
    classify_exception,
    code_of,
    coded,
    ensure_code,
    from_wire,
    to_wire,
)
from repro.serve.monitor import (
    EuQuantileRule,
    MonitorEvent,
    MonitoringPlane,
    PolicyEngine,
    PsiThresholdRule,
    ShadowScorer,
    ShadowWinnerRule,
    StreamProfile,
    UncertaintyTap,
)
from repro.serve.net import AsyncServeServer, ServeClient
from repro.serve.obs import (
    COMPONENTS,
    METRIC_NAMES,
    METRICS,
    MetricsRegistry,
    STAGES,
    Span,
    SpanRing,
    StructuredLogger,
    TraceContext,
    Tracer,
    to_json,
    to_prometheus,
)
from repro.serve.registry import (
    ModelRegistry,
    ModelVersion,
    ReferenceSnapshot,
    freeze_arrays,
)
from repro.serve.resilience import (
    CircuitBreaker,
    RetryController,
    RetryTicket,
    ShardSupervisor,
)
from repro.serve.router import ServingGateway
from repro.serve.service import CompletedTicket, InferenceService
from repro.serve.shard import ClusterTicket, ShardCrashedError, ShardedServingCluster
from repro.serve.stats import ClusterStats, GatewayStats, ResilienceStats, ServerStats
from repro.serve.transport import (
    PipeTransport,
    SocketListener,
    SocketTransport,
    Transport,
    TransportError,
)

__all__ = [
    "AdaptiveBatchTuner",
    "AsyncServeServer",
    "COMPONENTS",
    "ChaosConfig",
    "ChaosLinearModel",
    "CircuitBreaker",
    "ClusterStats",
    "ClusterTicket",
    "CodedError",
    "CompletedTicket",
    "ErrorCode",
    "EuQuantileRule",
    "GatewayStats",
    "InferenceService",
    "METRICS",
    "METRIC_NAMES",
    "MetricsRegistry",
    "MicroBatcher",
    "ModelRegistry",
    "ModelVersion",
    "MonitorEvent",
    "MonitoringPlane",
    "PipeTransport",
    "PolicyEngine",
    "PredictionCache",
    "PsiThresholdRule",
    "ReferenceSnapshot",
    "ResilienceStats",
    "RetryController",
    "RetryTicket",
    "SLOAutoscaler",
    "STAGES",
    "ScalingDecision",
    "ServeClient",
    "ServerStats",
    "ServingGateway",
    "ShadowScorer",
    "ShadowWinnerRule",
    "ShardCrashedError",
    "ShardSupervisor",
    "ShardedServingCluster",
    "SocketListener",
    "SocketTransport",
    "Span",
    "SpanRing",
    "StreamProfile",
    "StructuredLogger",
    "Ticket",
    "TraceContext",
    "Tracer",
    "Transport",
    "TransportError",
    "TuningDecision",
    "UncertaintyTap",
    "classify_exception",
    "code_of",
    "coded",
    "ensure_code",
    "freeze_arrays",
    "from_wire",
    "make_serve_model",
    "request_digest",
    "run_chaos_bench",
    "run_chaos_soak",
    "run_fault_bench",
    "run_gateway_bench",
    "run_net_bench",
    "run_obs_bench",
    "run_serve_bench",
    "run_shard_bench",
    "run_transport_bench",
    "to_json",
    "to_prometheus",
    "to_wire",
]
