"""Process-sharded serving cluster: N gateway replicas behind one front door.

One Python process tops out at one GIL's worth of request plumbing, and the
taxonomy paper's deployment sections (drift per system, contention, load
skew) are exactly the regimes where a single serving process becomes the
bottleneck.  :class:`ShardedServingCluster` spawns ``n_shards`` worker
processes, each hosting its **own** :class:`~repro.serve.registry.ModelRegistry`
and :class:`~repro.serve.router.ServingGateway` replica, warm-started from a
pickled snapshot of the parent's registry (models were frozen and
fit-sealed on register, so they pickle and re-freeze cleanly — the PR 3
roundtrip fix exists for this path).

The parent keeps a single ``submit(name, row, kind)`` front door:

* **hash routing** (default) — requests route by a consistent
  :func:`blake2b <hashlib.blake2b>` hash of the model name, so one name's
  traffic always lands on one shard and that shard's micro-batcher and
  prediction cache see the whole stream (cache locality survives
  sharding), or
* **replicated routing** — every shard holds every model anyway (registry
  mutations broadcast to all), so single-row traffic round-robins across
  live shards and :meth:`~ShardedServingCluster.submit_block` fans the
  rows of one large batch out across all of them in parallel.

Requests multiplex over one :class:`~repro.serve.transport.Transport`
per shard — ``transport="pipe"`` (a duplex :mod:`multiprocessing` pipe,
the single-node default) or ``transport="socket"`` (the network edge's
length-prefixed frame protocol with binary ndarray frames, the shape a
multi-node cluster needs).  Channel failures surface as one typed
:class:`~repro.serve.transport.TransportError` carrying the coded
``TRANSPORT_ERROR``, so the resilience plane classifies them through the
taxonomy rather than pattern-matching ``BrokenPipeError``/``OSError``.
Each worker answers its submissions **in FIFO order** — the same ticket
semantics as :class:`~repro.serve.batcher.MicroBatcher` — and the parent
completes a :class:`ClusterTicket` per response.  Registry mutations
(register / promote / rollback / unregister) broadcast to every live
shard through the same channel and wait for acknowledgement, so the
version-keyed cache contract holds cluster-wide: after
:meth:`~ShardedServingCluster.promote` returns, no shard will serve the
old version to a new batch.

The cluster adds no scoring path: every shard scores with the same frozen
artifacts, so results stay **bit-identical** (``np.array_equal``) to a
direct single-process :class:`~repro.serve.router.ServingGateway` — the
serve layer's load-bearing invariant.  A worker crash surfaces as
:class:`ShardCrashedError` on the affected tickets (pending *and* future)
and :meth:`~ShardedServingCluster.respawn` rebuilds dead workers from the
parent registry's current state; a client is never left hanging.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import pickle
import queue
import threading
import time
from typing import Any

import numpy as np

from repro.serve.batcher import _private_exception
from repro.serve.errors import ErrorCode, coded, ensure_code
from repro.serve.registry import ModelRegistry
from repro.serve.router import ServingGateway
from repro.serve.stats import ClusterStats
from repro.serve.transport import (
    PipeTransport,
    SocketListener,
    Transport,
    TransportError,
    make_worker_transport,
)

__all__ = ["ClusterTicket", "ShardCrashedError", "ShardedServingCluster"]

_ROUTES = ("hash", "replicated")
_TRANSPORTS = ("pipe", "socket")


class ShardCrashedError(RuntimeError):
    """A shard worker process died (or was killed) with requests on it."""

    code = ErrorCode.SHARD_CRASHED  # retryable: a respawned shard should succeed


def shard_for_name(name: str, n_shards: int) -> int:
    """Consistent shard index for a model name.

    Uses blake2b, not ``hash()`` — Python string hashing is salted per
    process, and the whole point is that parent, workers, tests, and a
    future second front-door process all agree on the owner."""
    digest = hashlib.blake2b(name.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


def _picklable_exception(exc: BaseException) -> BaseException:
    """An exception instance that survives the response pipe.

    Worker-side failures ride the pipe back to the parent; an exception
    whose args don't pickle (estimator objects, locks) would kill the
    response instead of the request, so anything unpicklable is flattened
    to a ``RuntimeError`` carrying its repr."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        flat = RuntimeError(f"{type(exc).__name__}: {exc}")
        code = getattr(exc, "code", None)
        if isinstance(code, ErrorCode):
            flat.code = code  # the coded vocabulary survives the flattening
        return flat


# ---------------------------------------------------------------------- #
# worker side
# ---------------------------------------------------------------------- #
def _apply_control(registry: ModelRegistry, action: str, name: str, payload: Any) -> Any:
    """Replay one parent-side registry mutation on a worker's replica.

    Every action is **idempotent against an already-applied state**: a
    worker respawned between a mutation landing on the parent registry and
    its broadcast going out warm-starts from a snapshot that already
    contains the change, and then receives the queued broadcast anyway.
    Replaying it must be a no-op (``promote`` to the current production
    already is; the others check first), never a divergence or a spurious
    error.
    """
    if action == "register":
        model_bytes, version = payload
        try:
            existing = registry.versions(name)
        except LookupError:
            existing = []
        if version in existing:
            return version  # snapshot already carried it
        got = registry.register(name, pickle.loads(model_bytes), version=version)
        if got != version:
            raise coded(
                RuntimeError(f"replica filed {name!r} under v{got}, parent assigned v{version}"),
                ErrorCode.REPLICA_DIVERGENCE,
            )
        return got
    if action == "promote":
        registry.promote(name, payload)
        return payload
    if action == "rollback":
        # payload is the parent's post-rollback production version
        if registry.production_version(name) == payload:
            return payload  # snapshot already carried it
        got = registry.rollback(name)
        if got != payload:
            raise coded(
                RuntimeError(f"replica rolled {name!r} back to v{got}, parent to v{payload}"),
                ErrorCode.REPLICA_DIVERGENCE,
            )
        return got
    if action == "unregister":
        try:
            if payload not in registry.versions(name):
                return payload  # snapshot already carried it
        except LookupError:
            return payload
        registry.unregister(name, payload)
        return payload
    if action == "set_reference":
        # payload is the parent's pickled ReferenceSnapshot (or None to
        # clear nothing — a missing reference is simply never broadcast);
        # set_reference re-freezes the arrays pickling un-froze.  Replaying
        # onto a replica that already carries it (respawn race) just
        # rewrites the same immutable value — idempotent like the rest.
        ref = pickle.loads(payload)
        registry.set_reference(
            name, ref.X, eu=ref.eu,
            names=list(ref.names) if ref.names else None,
        )
        return name
    raise ValueError(f"unknown control action {action!r}")


def _worker_main(
    shard_id: int,
    transport_spec: tuple,
    snapshot_bytes: bytes,
    gateway_kwargs: dict[str, Any],
    result_timeout: float,
    trace_rings: int = 0,
) -> None:
    """One shard: a gateway replica driven by its request transport.

    ``transport_spec`` is the picklable half of the channel —
    ``("pipe", conn)`` or ``("socket", (host, port), token)`` — resolved
    by :func:`~repro.serve.transport.make_worker_transport`; everything
    below it is transport-agnostic.  The main loop only *enqueues* — a
    submission goes straight into the gateway's micro-batcher and its
    ticket onto the responder queue, so requests coalesce into batches
    exactly as they would in-process.  The responder thread completes
    tickets strictly in arrival order, which is what gives the parent
    FIFO response semantics per shard.

    ``trace_rings > 0`` stands up a process-local
    :class:`~repro.serve.obs.trace.Tracer` (a tracer object itself does
    not cross the spawn pickle — only its ring size does): a submit tuple
    carrying a trace id gets a worker-side context under that id, so the
    batcher/worker spans it records merge with the parent's by trace id
    when the ``obs`` op exports them.  Untraced submissions stay
    span-free — the gateway only adopts contexts, it never starts one
    here.
    """
    try:
        transport = make_worker_transport(transport_spec)
    except TransportError:
        return  # parent vanished before the handshake; nothing to serve
    tracer = None
    if trace_rings > 0:
        from repro.serve.obs.trace import Tracer

        tracer = Tracer(ring_size=trace_rings)
    registry = ModelRegistry()
    registry.restore(pickle.loads(snapshot_bytes))
    gateway = ServingGateway(registry, **gateway_kwargs)
    send_lock = threading.Lock()
    done_q: queue.SimpleQueue = queue.SimpleQueue()

    def send(msg: tuple) -> None:
        with send_lock:
            try:
                transport.send(msg)
            except TransportError:
                pass  # parent gone; nothing useful left to do with a result

    def responder() -> None:
        while True:
            item = done_q.get()
            if item is None:
                return
            req_id, ticket, ctx = item
            try:
                if ctx is not None:
                    t0 = ctx.now()
                    value = ticket.result(timeout=result_timeout)
                    ctx.record("worker", "respond", t0, ctx.now())
                    send(("ok", req_id, value))
                else:
                    send(("ok", req_id, ticket.result(timeout=result_timeout)))
            except BaseException as exc:
                send(("err", req_id, _picklable_exception(exc)))

    resp_thread = threading.Thread(
        target=responder, name=f"shard{shard_id}-responder", daemon=True
    )
    resp_thread.start()
    try:
        while True:
            try:
                msg = transport.recv()
            except TransportError:
                break
            op = msg[0]
            if op == "shutdown":
                break
            if op == "submit":
                # 5-tuple from an untraced parent, 6-tuple carries the
                # trace id — *rest keeps the wire forms interchangeable
                _, req_id, name, row, kind, *rest = msg
                tid = rest[0] if rest else None
                ctx = None
                if tracer is not None and tid is not None:
                    ctx = tracer.context(tid)
                try:
                    if ctx is not None:
                        ticket = gateway.submit(name, row, kind=kind, trace=ctx)
                    else:
                        ticket = gateway.submit(name, row, kind=kind)
                except BaseException as exc:
                    send(("err", req_id, _picklable_exception(exc)))
                else:
                    done_q.put((req_id, ticket, ctx))
            elif op == "flush":
                _, req_id, name = msg
                try:
                    send(("ok", req_id, gateway.flush(name)))
                except BaseException as exc:
                    send(("err", req_id, _picklable_exception(exc)))
            elif op == "stats":
                try:
                    send(("ok", msg[1], gateway.stats()))
                except BaseException as exc:
                    send(("err", msg[1], _picklable_exception(exc)))
            elif op == "control":
                _, req_id, action, name, payload = msg
                try:
                    send(("ok", req_id, _apply_control(registry, action, name, payload)))
                except BaseException as exc:
                    send(("err", req_id, _picklable_exception(exc)))
            elif op == "obs":
                # export this worker's recorded spans (optionally one
                # trace's) so the parent can reassemble cross-process
                # traces by id; JSON-safe, so it rides any transport
                _, req_id, tid = msg
                try:
                    payload = (
                        tracer.export(tid) if tracer is not None
                        else {"spans": [], "dropped": {}, "recorded": {}}
                    )
                    send(("ok", req_id, payload))
                except BaseException as exc:
                    send(("err", req_id, _picklable_exception(exc)))
            else:
                send(("err", msg[1], ValueError(f"unknown op {op!r}")))
    finally:
        try:
            gateway.close()  # completes every in-flight ticket first
        except BaseException:
            pass
        done_q.put(None)  # after close: the responder drains real work first
        resp_thread.join(timeout=result_timeout)
        transport.close()


# ---------------------------------------------------------------------- #
# parent side
# ---------------------------------------------------------------------- #
class ClusterTicket:
    """Handle for one request routed to a shard; blocks in :meth:`result`."""

    __slots__ = ("shard_id", "trace", "trace_t0", "_event", "_value", "_error")

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.trace = None       # TraceContext when the request is traced
        self.trace_t0 = 0.0     # trace-clock send time (starts transport)
        self._event = threading.Event()
        self._value: Any = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Any:
        if not self._event.wait(timeout):
            raise coded(TimeoutError("request not completed within timeout"),
                        ErrorCode.DEADLINE_EXCEEDED)
        if self._error is not None:
            # private copy per raise, same rule as batcher.Ticket: two
            # threads re-raising one instance would race on __traceback__
            raise _private_exception(self._error)
        return self._value

    def _complete(self, value: Any, error: BaseException | None) -> None:
        self._value = value
        self._error = error
        self._event.set()


class _BlockTicket:
    """Row-parallel fan-out of one block: a ticket over per-shard parts."""

    __slots__ = ("_parts", "_kind")

    def __init__(self, parts: list[ClusterTicket], kind: str):
        self._parts = parts
        self._kind = kind

    def done(self) -> bool:
        return all(p.done() for p in self._parts)

    def result(self, timeout: float | None = None) -> Any:
        deadline = None if timeout is None else time.monotonic() + timeout
        values = []
        for part in self._parts:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            values.append(part.result(remaining))
        if len(values) == 1:
            return values[0]
        if self._kind == "predict_dist":
            means, variances = zip(*values)
            return np.concatenate(means), np.concatenate(variances)
        return np.concatenate(values)


class _ShardHandle:
    """Parent-side bookkeeping for one worker: transport, process, pending map."""

    def __init__(self, shard_id: int, process: Any, transport: Transport):
        self.shard_id = shard_id
        self.process = process
        self.transport = transport
        self.lock = threading.Lock()  # guards pending, next_req, alive, and sends
        self.pending: dict[int, ClusterTicket] = {}
        self.next_req = 0
        self.alive = True
        self.reader: threading.Thread | None = None


class ShardedServingCluster:
    """Serve one registry from ``n_shards`` gateway worker processes.

    Parameters
    ----------
    registry:
        The parent-side :class:`~repro.serve.registry.ModelRegistry` — the
        cluster's source of truth.  Its current contents seed every worker;
        later mutations must flow through :meth:`register` (models have to
        ship to the workers), while ``promote``/``rollback``/``unregister``
        may be called on either the cluster or the registry directly — a
        registry listener broadcasts stage changes to every shard either
        way.
    n_shards:
        Worker process count.
    route:
        ``"hash"`` pins each name to one shard (cache/batcher locality);
        ``"replicated"`` round-robins rows across shards and enables
        :meth:`submit_block` fan-out.
    start_method:
        :mod:`multiprocessing` start method; default prefers ``fork``
        (cheap, instant warm-start) and falls back to ``spawn``.  Both
        paths hand workers the same pickled snapshot, so behaviour is
        method-invariant.
    transport:
        ``"pipe"`` (default) keeps today's duplex mp pipe;
        ``"socket"`` runs every parent↔worker channel over the frame
        protocol on a loopback TCP socket (token-handshaked, binary
        ndarray frames) — bit-identical results, multi-node-shaped
        plumbing.  See :mod:`repro.serve.transport`.
    steal, steal_threshold:
        Work-stealing dispatch for ``"hash"`` routing: when the routed
        owner's pending depth is at least ``steal_threshold`` and some
        other live shard is completely idle, a stealable request (a
        single row — blocks keep batcher locality) reroutes to the idle
        replica.  Safe because every live shard holds every model at
        every version (mutations are ack-gated broadcasts; respawns
        warm-start from the parent snapshot) and scoring is stateless
        and version-pinned, so the stolen request is bit-identical; the
        per-ticket completion contract is unchanged.  ``steals`` counts
        reroutes.  Off by default.
    max_batch, max_delay, cache_entries, n_jobs:
        Per-shard gateway defaults (each worker's per-name services are
        created from these, exactly as in a single-process gateway).
    request_timeout:
        Worker-side cap on how long a responder waits for one ticket
        before answering with an error — a wedged flush must not dam the
        FIFO response stream forever.
    tracer:
        Optional parent-side :class:`~repro.serve.obs.trace.Tracer`.
        When set, traced submissions record ``route``/``steal`` and
        ``transport`` spans here, the trace id rides the submit tuple to
        the shard, and every worker stands up its own tracer (same ring
        size) whose spans :meth:`trace_spans` fetches back by the ``obs``
        op.  ``None`` (the default) keeps all paths tracing-free.
    trace_sample:
        Auto-born traces sample 1-in-``trace_sample`` submissions
        (deterministic stride, the monitor plane's ``sample`` dial);
        inbound ``trace=`` contexts are always honoured, never sampled.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        n_shards: int = 2,
        route: str = "hash",
        start_method: str | None = None,
        transport: str = "pipe",
        steal: bool = False,
        steal_threshold: int = 8,
        max_batch: int = 256,
        max_delay: float = 0.005,
        cache_entries: int = 4096,
        n_jobs: int | None = 1,
        request_timeout: float = 60.0,
        tracer: Any = None,
        trace_sample: int = 1,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if trace_sample < 1:
            raise ValueError("trace_sample must be >= 1")
        if route not in _ROUTES:
            raise ValueError(f"route must be one of {_ROUTES}, got {route!r}")
        if transport not in _TRANSPORTS:
            raise ValueError(
                f"transport must be one of {_TRANSPORTS}, got {transport!r}")
        if steal_threshold < 1:
            raise ValueError("steal_threshold must be >= 1")
        self.registry = registry
        self.route = route
        self.transport = transport
        self.steal = bool(steal)
        self.steal_threshold = int(steal_threshold)
        self._steal_lock = threading.Lock()
        self._steals = 0
        self.request_timeout = float(request_timeout)
        self._tracer = tracer
        self._trace_sample = int(trace_sample)
        self._trace_tick = itertools.count()  # atomic under the GIL
        # workers rebuild their own tracer from the ring size alone (a
        # Tracer holds locks and a clock — it must not cross the pickle)
        self._trace_rings = int(getattr(tracer, "ring_size", 0)) if tracer else 0
        self._gateway_kwargs = {
            "max_batch": int(max_batch),
            "max_delay": float(max_delay),
            "cache_entries": int(cache_entries),
            "n_jobs": n_jobs,
        }
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()  # serializes broadcasts and close
        self._closed = False
        self._rr = itertools.count()
        # copy-on-write, like the gateway's: submit reads lock-free
        self._taps: tuple[Any, ...] = ()
        self._request_taps: tuple[Any, ...] = ()
        # same dedicated counter lock as the gateway's: concurrent
        # submitters racing a bare += here would lose increments
        self._tap_err_lock = threading.Lock()
        self._tap_errors = 0
        # one snapshot serialization per registry state — the models
        # dominate the bytes and are identical for every worker, so the
        # initial fleet, a K-shard respawn wave, and a scale-up burst all
        # reuse one pickle keyed on the registry's mutation counter
        # (mutated only under self._lock / __init__)
        self._snapshot_cache: tuple[int, bytes] | None = None
        snapshot_bytes = self._snapshot_bytes()
        self._shards: list[_ShardHandle] = [
            self._spawn(i, snapshot_bytes) for i in range(n_shards)
        ]
        registry.add_listener(self._on_stage_change)

    # ------------------------------------------------------------------ #
    # worker lifecycle
    # ------------------------------------------------------------------ #
    def _snapshot_bytes(self) -> bytes:
        """Pickled registry snapshot, cached per registry state.

        The mutation counter is read *before* the snapshot: a mutation
        landing between the two leaves a newer snapshot filed under an
        older counter, which the next call simply re-serializes — the
        cache can waste one pickle but can never serve stale bytes as
        current.  A registry without the counter (a duck-typed stand-in)
        just serializes every time."""
        marker = getattr(self.registry, "mutations", None)
        if marker is None:
            return pickle.dumps(self.registry.snapshot())
        cached = self._snapshot_cache
        if cached is not None and cached[0] == marker:
            return cached[1]
        data = pickle.dumps(self.registry.snapshot())
        self._snapshot_cache = (marker, data)
        return data

    def _spawn(self, shard_id: int, snapshot_bytes: bytes | None = None) -> _ShardHandle:
        if snapshot_bytes is None:  # respawn path: the state may have moved
            snapshot_bytes = self._snapshot_bytes()
        if self.transport == "socket":
            # bind before forking so the worker's connect can never race a
            # missing listener; the token hello authenticates the peer
            listener = SocketListener()
            spec: tuple = ("socket", listener.address, listener.token)
            parent_end = None
        else:
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            spec = ("pipe", child_conn)
            parent_end = parent_conn
        process = self._ctx.Process(
            target=_worker_main,
            args=(shard_id, spec, snapshot_bytes, self._gateway_kwargs,
                  self.request_timeout, self._trace_rings),
            name=f"serve-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        if self.transport == "socket":
            try:
                transport: Transport = listener.accept(timeout=30.0)
            finally:
                listener.close()  # one worker per listener, accepted or not
        else:
            child_conn.close()  # the worker's copy is the only write end left
            transport = PipeTransport(parent_end)
        handle = _ShardHandle(shard_id, process, transport)
        handle.reader = threading.Thread(
            target=self._reader, args=(handle,), name=f"shard{shard_id}-reader", daemon=True
        )
        handle.reader.start()
        return handle

    def _reader(self, handle: _ShardHandle) -> None:
        """Complete tickets from one shard's response stream; when the
        stream ends — a :class:`TransportError` from a worker exit/kill,
        *or* any unexpected decode failure — fail everything still
        pending.  The cleanup is a ``finally`` because a reader that dies
        without marking the shard dead would leave clients blocking
        forever on tickets nobody will complete."""
        try:
            while True:
                try:
                    msg = handle.transport.recv()
                except TransportError:
                    break
                tag, req_id, payload = msg
                with handle.lock:
                    ticket = handle.pending.pop(req_id, None)
                if ticket is None:
                    continue  # late reply after a crash-fail; ticket already errored
                ctx = ticket.trace
                if ctx is not None:
                    # transport = parent send → worker response landed,
                    # both ends read on the parent's clock
                    ctx.record("cluster", "transport", ticket.trace_t0,
                               ctx.now(), meta={"shard": handle.shard_id})
                if tag == "ok":
                    ticket._complete(payload, None)
                else:
                    ticket._complete(None, payload)
        finally:
            with handle.lock:
                handle.alive = False
                orphans = list(handle.pending.values())
                handle.pending.clear()
            if orphans:
                err = ShardCrashedError(
                    f"shard {handle.shard_id} worker exited with "
                    f"{len(orphans)} request(s) in flight"
                )
                for ticket in orphans:
                    ticket._complete(None, err)

    def respawn(self, shard_ids: "list[int] | set[int] | None" = None) -> int:
        """Rebuild dead shards from the registry's current state; returns
        how many were restarted.  ``shard_ids`` limits the sweep to those
        shards (the supervisor's per-shard backoff path); the default
        rebuilds every dead worker.  The replacement warm-starts from
        a fresh snapshot, so mutations that happened while the shard was
        down are already applied when it takes traffic again."""
        wanted = None if shard_ids is None else set(shard_ids)
        respawned = 0
        with self._lock:
            if self._closed:
                raise coded(RuntimeError("ShardedServingCluster is closed"),
                            ErrorCode.CLOSED)
            # copy-on-write: lock-free readers index a consistent list
            shards = list(self._shards)
            for i, handle in enumerate(shards):
                if wanted is not None and handle.shard_id not in wanted:
                    continue
                with handle.lock:
                    dead = not handle.alive
                if dead:
                    handle.transport.close()
                    handle.process.join(timeout=1.0)
                    shards[i] = self._spawn(handle.shard_id)
                    respawned += 1
            self._shards = shards
        return respawned

    def scale_to(self, n_shards: int) -> int:
        """Grow or shrink the live fleet to ``n_shards`` workers; returns
        the resulting shard count.

        Scaling is **tail-only**, preserving the ``index == shard_id``
        invariant the router and :meth:`kill_shard` rely on: growth spawns
        shards ``len..n_shards-1`` from one cached snapshot serialization,
        shrink retires the highest-numbered shards.  A retired worker gets
        the same drain-then-exit shutdown as :meth:`close` (its gateway
        completes in-flight tickets first); a request racing the
        retirement surfaces the usual coded :class:`ShardCrashedError`,
        which the resilience plane retries onto a surviving shard.  The
        supervisor and the hash router follow the new width automatically
        (both re-read ``n_shards`` every pass)."""
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        retired: list[_ShardHandle] = []
        with self._lock:
            if self._closed:
                raise coded(RuntimeError("ShardedServingCluster is closed"),
                            ErrorCode.CLOSED)
            shards = list(self._shards)
            if n_shards > len(shards):
                snapshot_bytes = self._snapshot_bytes()
                while len(shards) < n_shards:
                    shards.append(self._spawn(len(shards), snapshot_bytes))
            else:
                while len(shards) > n_shards:
                    retired.append(shards.pop())
            self._shards = shards
        # drain retired workers outside the broadcast lock: submissions
        # already read the new (shorter) list, so nothing new routes here
        for handle in retired:
            self._retire(handle)
        return len(shards)

    def _retire(self, handle: _ShardHandle, timeout: float = 10.0) -> None:
        """Drain-then-stop one worker removed from the routing table."""
        with handle.lock:
            if handle.alive:
                try:
                    handle.transport.send(("shutdown",))
                except TransportError:
                    pass  # already dying; the kill below still reaps it
        handle.process.join(timeout=timeout)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=1.0)
        handle.transport.close()
        if handle.reader is not None:
            handle.reader.join(timeout=timeout)

    def kill_shard(self, shard_id: int) -> None:
        """Hard-kill one worker (chaos hook for crash-path tests).  The
        reader notices EOF, fails the shard's pending tickets, and marks
        it dead; :meth:`respawn` brings a replacement up."""
        handle = self._shards[shard_id]
        handle.process.kill()
        handle.process.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    # routing + submission
    # ------------------------------------------------------------------ #
    def shard_of(self, name: str) -> int:
        """The shard index hash routing assigns to ``name``."""
        return shard_for_name(name, len(self._shards))

    def live_shards(self) -> list[int]:
        out = []
        for handle in self._shards:
            with handle.lock:
                if handle.alive:
                    out.append(handle.shard_id)
        return out

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def _pick_shard(self, exclude: set[int] = frozenset()) -> _ShardHandle | None:
        """Next replicated-route shard: round-robin strictly over live
        workers (minus ``exclude``, the shards a retry loop already tried).
        Returns ``None`` only when no live candidate remains — a dead
        worker is *skipped*, never selected while a live one exists."""
        live = [
            h for h in self._shards if h.alive and h.shard_id not in exclude
        ]
        if not live:
            return None
        return live[next(self._rr) % len(live)]

    def _route(self, name: str) -> _ShardHandle | None:
        if self.route == "hash":
            shards = self._shards  # one snapshot: see submit()
            return shards[shard_for_name(name, len(shards))]
        return self._pick_shard()

    @property
    def steals(self) -> int:
        """How many hash-routed requests the dispatcher rerouted to an
        idle replica (0 unless ``steal=True``)."""
        return self._steals

    def _steal_target(self, owner: _ShardHandle) -> _ShardHandle | None:
        """An idle live shard to steal to, or ``None`` to stay home.

        Stealing triggers only when the hash-routed owner is congested —
        pending depth at ``steal_threshold`` or beyond — and some *other*
        live shard has nothing in flight.  An idle replica is a valid
        stand-in for any name at any version: registry mutations are
        ack-gated broadcasts and respawns warm-start from the parent
        snapshot, so every live worker scores with identical frozen
        artifacts (bit-identity holds wherever the row lands).  The cost
        is the owner's batcher/cache locality for that one row, which is
        exactly the trade a congested owner wants.
        """
        with owner.lock:
            congested = owner.alive and len(owner.pending) >= self.steal_threshold
        if not congested:
            return None
        for handle in self._shards:
            if handle is owner:
                continue
            with handle.lock:
                if handle.alive and not handle.pending:
                    return handle
        return None

    def _no_live_shard_ticket(self) -> ClusterTicket:
        ticket = ClusterTicket(-1)
        ticket._complete(None, coded(
            ShardCrashedError("no live shard available (call respawn())"),
            ErrorCode.SHARD_CRASHED,
        ))
        return ticket

    def _send_request(
        self, handle: _ShardHandle, op: str, *args: Any, trace: Any = None
    ) -> ClusterTicket:
        ticket = self._try_send(handle, op, *args, trace=trace)
        if ticket is not None:
            return ticket
        ticket = ClusterTicket(handle.shard_id)
        ticket._complete(None, coded(ShardCrashedError(
            f"shard {handle.shard_id} is down (call respawn())"
        ), ErrorCode.SHARD_CRASHED))
        return ticket

    def _try_send(
        self, handle: _ShardHandle, op: str, *args: Any, trace: Any = None
    ) -> ClusterTicket | None:
        """Enqueue one request on ``handle``; ``None`` means the shard is
        dead (or its transport broke mid-send, in which case it is marked
        dead so the next :meth:`_pick_shard` skips it) and the caller may
        try another shard instead of surfacing the failure."""
        ticket = ClusterTicket(handle.shard_id)
        if trace is not None:
            ticket.trace = trace
            ticket.trace_t0 = trace.now()  # the reader ends this span
        with handle.lock:
            if self._closed:
                ticket._complete(None, coded(
                    RuntimeError("ShardedServingCluster is closed"), ErrorCode.CLOSED
                ))
                return ticket
            if not handle.alive:
                return None
            req_id = handle.next_req
            handle.next_req += 1
            handle.pending[req_id] = ticket
            try:
                handle.transport.send((op, req_id, *args))
            except TransportError:
                handle.pending.pop(req_id, None)
                handle.alive = False  # the reader will confirm via its own error
                return None
        return ticket

    def _submit_replicated(
        self, name: str, arr: np.ndarray, kind: str, trace: Any = None
    ) -> ClusterTicket:
        """Replicated-route submission with dead-shard absorption: a shard
        found dead at send time (routing race, broken pipe) is excluded and
        the request re-routes to the next live worker.  Only when *every*
        shard is down does the ticket surface a coded crash error."""
        tried: set[int] = set()
        args = (name, arr, kind) if trace is None else (
            name, arr, kind, trace.trace_id
        )
        while True:
            handle = self._pick_shard(tried)
            if handle is None:
                return self._no_live_shard_ticket()
            ticket = self._try_send(handle, "submit", *args, trace=trace)
            if ticket is not None:
                return ticket
            tried.add(handle.shard_id)

    # ------------------------------------------------------------------ #
    # monitoring taps (parent-side: the front door sees every request)
    # ------------------------------------------------------------------ #
    def add_tap(self, tap: Any) -> None:
        """Register a request-side monitoring tap.

        ``tap.on_request(name, row, kind)`` fires per submission at the
        cluster front door — every row crosses the parent, so a
        parent-side monitoring plane profiles the whole stream no matter
        which shard scores it.  Result-side taps (``on_result``) need the
        scored values and live on the in-process
        :class:`~repro.serve.router.ServingGateway`; policy actions taken
        here (promote/rollback via the parent registry) still propagate
        cluster-wide through the ack-gated broadcast machinery.  Same
        contract as the gateway's taps: observational only, exceptions
        swallowed and counted in ``tap_errors``.
        """
        with self._lock:
            self._taps = (*self._taps, tap)
            self._rebuild_tap_views()

    def remove_tap(self, tap: Any) -> None:
        """Deregister a tap (no-op when absent)."""
        with self._lock:
            self._taps = tuple(t for t in self._taps if t is not tap)
            self._rebuild_tap_views()

    def _rebuild_tap_views(self) -> None:
        # pre-bound callables, same copy-on-write shape as the gateway's
        self._request_taps = tuple(
            fn for t in self._taps
            if (fn := getattr(t, "on_request", None)) is not None
        )

    @property
    def tap_errors(self) -> int:
        """Observer exceptions swallowed (monitoring accuracy only)."""
        return self._tap_errors

    def _notify_request(self, name: str, row: np.ndarray, kind: str) -> None:
        for fn in self._request_taps:
            try:
                fn(name, row, kind)
            except Exception:
                with self._tap_err_lock:
                    self._tap_errors += 1

    def submit(
        self, name: str, row: np.ndarray, kind: str = "predict", trace: Any = None
    ) -> ClusterTicket:
        """Route one request; returns a ticket whose ``result()`` blocks.

        A dead route never hangs: the ticket completes immediately with
        :class:`ShardCrashedError` (replicated routing first re-routes to
        any remaining live shard).  ``trace`` adopts an inbound
        :class:`~repro.serve.obs.trace.TraceContext`; with none given and
        a ``tracer`` configured, the trace is born here for every
        ``trace_sample``-th submission."""
        arr = np.asarray(row, dtype=float)
        if trace is None and self._tracer is not None and (
            next(self._trace_tick) % self._trace_sample == 0
        ):
            trace = self._tracer.start_trace()
        t0 = trace.now() if trace is not None else 0.0
        if self.route == "hash":
            # pin one routing-table snapshot: a concurrent scale_to swaps
            # self._shards copy-on-write, so index and length must come
            # from the same list
            shards = self._shards
            owner = shards[shard_for_name(name, len(shards))]
            handle = owner
            stage = "route"
            if self.steal and arr.ndim == 1:
                idle = self._steal_target(owner)
                if idle is not None:
                    handle = idle
                    stage = "steal"  # the reroute is part of the trace
                    with self._steal_lock:
                        self._steals += 1
            if trace is not None:
                ticket = self._send_request(
                    handle, "submit", name, arr, kind, trace.trace_id,
                    trace=trace,
                )
                trace.record("cluster", stage, t0, trace.now(),
                             meta={"shard": handle.shard_id})
            else:
                ticket = self._send_request(handle, "submit", name, arr, kind)
        else:
            ticket = self._submit_replicated(name, arr, kind, trace=trace)
            if trace is not None:
                trace.record("cluster", "route", t0, trace.now(),
                             meta={"shard": ticket.shard_id})
        if self._request_taps:
            # a private copy for observers: the caller may reuse its buffer
            # once submit returns (the worker scores the pickled bytes, but
            # a tap retaining `arr` would see later mutations)
            self._notify_request(name, np.array(arr), kind)
        return ticket

    def submit_block(self, name: str, X: np.ndarray, kind: str = "predict"):
        """Submit a whole (m, d) block.

        Under ``"replicated"`` routing the rows split across every live
        shard and score in parallel processes; the composite ticket
        reassembles them in order.  Under ``"hash"`` routing the block
        rides to the name's owner whole (one shard, one batch)."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise coded(ValueError(f"block must be 2-D, got ndim={X.ndim}"),
                        ErrorCode.MALFORMED_REQUEST)
        if self.route == "hash":
            return self.submit(name, X, kind)
        n_live = len(self.live_shards())
        n_parts = max(1, min(max(1, n_live), X.shape[0]))
        # each part routes through the dead-shard-absorbing path: a worker
        # that dies between the live count and the send just means its
        # chunk lands on a surviving replica instead of erroring the block
        parts = [
            self._submit_replicated(name, chunk, kind)
            for chunk in np.array_split(X, n_parts)
        ]
        if self._request_taps:
            self._notify_request(name, np.array(X), kind)  # one private-copy observation
        return _BlockTicket(parts, kind)

    def predict(self, name: str, row: np.ndarray, timeout: float | None = None) -> Any:
        return self.submit(name, row).result(timeout)

    def predict_dist(self, name: str, row: np.ndarray, timeout: float | None = None) -> Any:
        return self.submit(name, row, kind="predict_dist").result(timeout)

    def predict_block(self, name: str, X: np.ndarray, timeout: float | None = None) -> Any:
        return self.submit_block(name, X).result(timeout)

    def flush(self, name: str | None = None) -> int:
        """Force-score pending requests on every live shard."""
        tickets = [
            self._send_request(h, "flush", name) for h in self._shards if h.alive
        ]
        return sum(self._gather(tickets))

    # ------------------------------------------------------------------ #
    # registry mutations (broadcast)
    # ------------------------------------------------------------------ #
    def register(self, name: str, model: Any, promote: bool = False) -> int:
        """Register on the parent registry, then ship the frozen, sealed
        model to every shard pinned under the same version number.

        Registration *must* go through the cluster (a listener can't see
        plain registers, and the workers need the model bytes); the stage
        aliases may be moved through either the cluster or the registry.
        """
        version = self.registry.register(name, model, promote=False)
        frozen = self.registry.get(name, version)  # post-freeze, post-seal
        self._broadcast("register", name, (pickle.dumps(frozen), version))
        if promote:
            self.registry.promote(name, version)  # listener broadcasts
        return version

    def promote(self, name: str, version: int) -> None:
        self.registry.promote(name, version)

    def rollback(self, name: str) -> int:
        return self.registry.rollback(name)

    def unregister(self, name: str, version: int) -> None:
        self.registry.unregister(name, version)

    def _on_stage_change(self, name: str, version: int, action: str) -> None:
        if action in ("promote", "rollback", "unregister"):
            self._broadcast(action, name, version)
        elif action == "set_reference":
            # monitor-plane config: ship the new training-reference
            # baseline to every replica so a worker-side (or respawned)
            # monitor scores against exactly the parent's snapshot
            ref = self.registry.get_reference(name)
            if ref is not None:
                self._broadcast("set_reference", name, pickle.dumps(ref))

    def _broadcast(self, action: str, name: str, payload: Any) -> None:
        """Apply one mutation on every live shard and wait for the acks —
        after this returns, no live shard scores a new batch against the
        pre-mutation stage.  Dead shards are skipped; their replacement
        respawns from the parent snapshot, which already has the change.
        A worker that *fails* to apply (replica divergence) is loud."""
        with self._lock:
            if self._closed:
                return
            tickets = [
                self._send_request(h, "control", action, name, payload)
                for h in self._shards if h.alive
            ]
        self._gather(tickets)

    def _gather(self, tickets: list[ClusterTicket]) -> list[Any]:
        """Results of a fan-out, tolerating shards that died or wedged
        mid-call.

        One ``request_timeout`` budget is shared across the *whole*
        fan-out — each ticket waits only the remaining budget, so a kill
        storm that wedges every shard costs one timeout, not
        ``n_shards ×`` of them.  A ticket that times out is skipped like
        a crashed one (its shard is wedged; the supervisor's liveness
        pass decides its fate) rather than stalling or failing the
        surviving shards' results."""
        deadline = time.monotonic() + self.request_timeout
        values = []
        for ticket in tickets:
            remaining = max(deadline - time.monotonic(), 1e-9)
            try:
                values.append(ticket.result(timeout=remaining))
            except ShardCrashedError:
                continue  # the reader marked it dead; respawn() recovers
            except TimeoutError:
                continue  # wedged shard: don't dam the rest of the fan-out
        return values

    # ------------------------------------------------------------------ #
    def stats(self) -> ClusterStats:
        """Per-shard :class:`GatewayStats` snapshots (dead shards absent),
        rolled up by :class:`~repro.serve.stats.ClusterStats`."""
        pairs = [
            (h.shard_id, self._send_request(h, "stats"))
            for h in self._shards if h.alive
        ]
        # one shared deadline across the fan-out, same contract as _gather:
        # a fleet of wedged shards costs one request_timeout, not n of them
        deadline = time.monotonic() + self.request_timeout
        per_shard = {}
        for shard_id, ticket in pairs:
            remaining = max(deadline - time.monotonic(), 1e-9)
            try:
                per_shard[shard_id] = ticket.result(timeout=remaining)
            except (ShardCrashedError, TimeoutError):
                continue
        return ClusterStats(per_shard=per_shard, tap_errors=self._tap_errors,
                            steals=self._steals)

    def trace_spans(self, trace_id: str | None = None) -> dict[str, Any]:
        """Reassemble a cross-process trace (or dump everything recorded).

        Merges the parent tracer's export with every live worker's
        (fetched by the ``obs`` op under one shared ``request_timeout``
        budget, the same fan-out contract as :meth:`stats`); spans from
        different processes share the trace id, drop/recorded counters
        sum per component.  Dead or wedged shards are simply absent —
        their rings died with them."""
        if self._tracer is not None:
            out = self._tracer.export(trace_id)
        else:
            out = {"spans": [], "dropped": {}, "recorded": {}}
        pairs = [
            (h.shard_id, self._send_request(h, "obs", trace_id))
            for h in self._shards if h.alive
        ]
        deadline = time.monotonic() + self.request_timeout
        for shard_id, ticket in pairs:
            remaining = max(deadline - time.monotonic(), 1e-9)
            try:
                worker = ticket.result(timeout=remaining)
            except (ShardCrashedError, TimeoutError):
                continue
            out["spans"].extend(worker["spans"])
            for key in ("dropped", "recorded"):
                for comp, n in worker[key].items():
                    out[key][comp] = out[key].get(comp, 0) + n
        return out

    # ------------------------------------------------------------------ #
    def close(self, timeout: float = 10.0) -> None:
        """Shut every worker down; idempotent and safe from ``__del__``.

        Workers drain their in-flight tickets before exiting (their
        gateway ``close`` completes everything), so responses already on
        the wire still land; anything left after the timeout is killed.
        """
        shards = getattr(self, "_shards", None)
        lock = getattr(self, "_lock", None)
        if shards is None or lock is None:
            return  # __init__ never got far enough to own workers
        with lock:
            if self._closed:
                return
            self._closed = True
        try:
            self.registry.remove_listener(self._on_stage_change)
        except Exception:
            pass
        deadline = time.monotonic() + timeout
        for handle in shards:
            with handle.lock:  # sends share the transport with _send_request
                if handle.alive:
                    try:
                        handle.transport.send(("shutdown",))
                    except TransportError:
                        pass
        for handle in shards:
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
            handle.transport.close()
            if handle.reader is not None:
                handle.reader.join(timeout=max(0.1, deadline - time.monotonic()))

    def __enter__(self) -> "ShardedServingCluster":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except BaseException:
            pass
