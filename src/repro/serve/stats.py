"""Aggregated serving counters, snapshotted as immutable values.

:class:`ServerStats` is one service's point-in-time view;
:class:`GatewayStats` is the multi-model roll-up the
:class:`~repro.serve.router.ServingGateway` exposes — per-name snapshots
plus a field-wise total, so fleet dashboards and per-model debugging read
from the same object.  :class:`ClusterStats` stacks one more level: the
per-shard :class:`GatewayStats` of a
:class:`~repro.serve.shard.ShardedServingCluster`, rolled up both by name
(across shards) and into one fleet total.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable

import numpy as np

__all__ = ["ClusterStats", "GatewayStats", "ResilienceStats", "ServerStats", "sum_stats"]

# cap on a rolled-up latency sample (sum_stats concatenates per-source
# bounded rings; a wide fleet roll-up is decimated back under this, so
# the bounded-memory invariant survives aggregation at any fan-in)
_MERGED_SAMPLE_CAP = 16384


@dataclass(frozen=True)
class ServerStats:
    """One point-in-time view of a service's traffic and cache behaviour."""

    requests: int           # submissions seen by the service (incl. cache hits)
    rows: int               # rows that reached the batcher
    batches: int            # flushes executed
    completed: int          # requests whose flush finished scoring
    size_flushes: int
    deadline_flushes: int
    manual_flushes: int
    abandoned: int          # tickets tombstoned by a result() timeout
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    cache_invalidations: int
    cache_entries: int
    total_latency_s: float  # summed enqueue→completion time of completed requests
    # latency samples lost to ring overwrite or roll-up decimation — the
    # silent-loss satellite: eviction is counted, never invisible
    latency_dropped: int = 0
    # bounded ring of recent per-request latencies (seconds) — the sample
    # behind the tail percentiles; () on snapshots that predate the ring
    latency_samples: tuple[float, ...] = ()

    @property
    def hit_rate(self) -> float:
        seen = self.cache_hits + self.cache_misses
        return self.cache_hits / seen if seen else 0.0

    @property
    def mean_batch_rows(self) -> float:
        return self.rows / self.batches if self.batches else 0.0

    @property
    def mean_latency_ms(self) -> float:
        # total_latency_s only accumulates when a flush finishes, so the
        # denominator must be the completed count — dividing by submitted
        # requests would understate latency whenever tickets are pending
        return 1e3 * self.total_latency_s / self.completed if self.completed > 0 else 0.0

    def percentile_ms(self, q: float) -> float:
        """The ``q``-th latency percentile in ms over the bounded sample
        (0.0 with no samples — dashboards poll before traffic arrives)."""
        if not self.latency_samples:
            return 0.0
        return 1e3 * float(np.percentile(np.asarray(self.latency_samples), q))

    @property
    def p50_ms(self) -> float:
        return self.percentile_ms(50.0)

    @property
    def p99_ms(self) -> float:
        return self.percentile_ms(99.0)

    @property
    def p999_ms(self) -> float:
        return self.percentile_ms(99.9)

    def summary(self) -> str:
        return (
            f"requests={self.requests} batches={self.batches} "
            f"(size={self.size_flushes} deadline={self.deadline_flushes} "
            f"manual={self.manual_flushes}, mean {self.mean_batch_rows:.1f} rows) "
            f"abandoned={self.abandoned} "
            f"cache hit-rate={self.hit_rate:.1%} "
            f"mean latency={self.mean_latency_ms:.2f}ms"
            + (f" p50={self.p50_ms:.2f} p99={self.p99_ms:.2f} "
               f"p999={self.p999_ms:.2f}ms" if self.latency_samples else "")
        )


def sum_stats(snapshots: Iterable[ServerStats]) -> ServerStats:
    """Counter-wise sum of snapshots (ratios recompute from the summed
    counters, so e.g. the result's ``hit_rate`` is the traffic-weighted
    aggregate rate, not a mean of per-snapshot rates).

    An empty iterable sums to the all-zero snapshot, and every ratio
    property guards its denominator — so a gateway that has served
    nothing, or a cluster whose every shard is dead, rolls up to
    well-defined 0.0 ratios instead of NaN/ZeroDivision (edge-case
    tested; dashboards poll stats long before traffic arrives)."""
    snapshots = list(snapshots)
    sums = {
        f.name: sum(getattr(s, f.name) for s in snapshots)
        for f in fields(ServerStats)
        if f.name != "latency_samples"
    }
    sums["total_latency_s"] = float(sums["total_latency_s"])
    # latency samples concatenate (each source ring is bounded, so the
    # union is the honest cross-source percentile sample), then decimate
    # by even striding when a wide fan-in would outgrow the cap — an
    # unbiased thinning that keeps the roll-up's memory bounded too
    merged: list[float] = []
    for s in snapshots:
        merged.extend(s.latency_samples)
    if len(merged) > _MERGED_SAMPLE_CAP:
        stride = -(-len(merged) // _MERGED_SAMPLE_CAP)  # ceil division
        thinned = merged[::stride]
        # decimated-away samples are dropped samples — account for them
        sums["latency_dropped"] += len(merged) - len(thinned)
        merged = thinned
    sums["latency_samples"] = tuple(merged)
    return ServerStats(**sums)


@dataclass(frozen=True)
class ResilienceStats:
    """Point-in-time view of the resilience plane's recovery work.

    Snapshotted by :meth:`repro.serve.resilience.RetryController.stats` and
    :meth:`repro.serve.resilience.ShardSupervisor.stats`; counters a field
    does not apply to are simply zero (a controller never respawns, a
    supervisor never retries requests).
    """

    submits: int = 0            # requests accepted by the retry front door
    retries: int = 0            # re-submissions performed (attempts - submits)
    recovered: int = 0          # requests that succeeded after >= 1 retry
    failed_fast: int = 0        # non-retryable coded failures (zero retries)
    exhausted: int = 0          # retryable failures that ran out of deadline
    breaker_opens: int = 0      # closed -> open transitions across all shards
    breaker_probes: int = 0     # half-open trial requests allowed through
    breaker_closes: int = 0     # half-open -> closed recoveries
    respawns: int = 0           # shard workers rebuilt by the supervisor
    respawn_failures: int = 0   # respawn attempts that raised

    def summary(self) -> str:
        return (
            f"submits={self.submits} retries={self.retries} "
            f"recovered={self.recovered} failed_fast={self.failed_fast} "
            f"exhausted={self.exhausted} breaker(open={self.breaker_opens} "
            f"probe={self.breaker_probes} close={self.breaker_closes}) "
            f"respawns={self.respawns} respawn_failures={self.respawn_failures}"
        )


@dataclass(frozen=True)
class GatewayStats:
    """Per-name service snapshots plus their field-wise aggregate."""

    per_name: dict[str, ServerStats]
    # monitoring-tap exceptions swallowed by this gateway (observational
    # failures must not fail requests, but they must not vanish either)
    tap_errors: int = 0

    @property
    def total(self) -> ServerStats:
        return sum_stats(self.per_name.values())

    def summary(self) -> str:
        lines = [f"{name}: {s.summary()}" for name, s in sorted(self.per_name.items())]
        lines.append(
            f"TOTAL ({len(self.per_name)} models): {self.total.summary()} "
            f"tap_errors={self.tap_errors}"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class ClusterStats:
    """Per-shard gateway snapshots plus cross-shard roll-ups.

    ``per_shard`` keys are shard ids (dead shards simply have no entry);
    ``per_name`` merges each name's counters across every shard that
    served it — under hash routing a name normally lives on one shard,
    under replication on all of them — and ``total`` is the whole fleet.
    """

    per_shard: dict[int, GatewayStats]
    # the parent cluster's own tap failures (shard-local ones live on the
    # per-shard GatewayStats; tap_errors_total folds both levels)
    tap_errors: int = 0
    # hash-routed requests rerouted to an idle shard by work stealing
    steals: int = 0

    @property
    def per_name(self) -> dict[str, ServerStats]:
        merged: dict[str, list[ServerStats]] = {}
        for gw in self.per_shard.values():
            for name, snap in gw.per_name.items():
                merged.setdefault(name, []).append(snap)
        return {name: sum_stats(snaps) for name, snaps in merged.items()}

    @property
    def total(self) -> ServerStats:
        return sum_stats(gw.total for gw in self.per_shard.values())

    @property
    def tap_errors_total(self) -> int:
        """Tap failures across every rollup level: the parent cluster's
        own plus each shard gateway's."""
        return self.tap_errors + sum(gw.tap_errors for gw in self.per_shard.values())

    def summary(self) -> str:
        lines = [
            f"shard {sid}: {gw.total.summary()} tap_errors={gw.tap_errors}"
            for sid, gw in sorted(self.per_shard.items())
        ]
        lines.append(
            f"CLUSTER ({len(self.per_shard)} shards, "
            f"{len(self.per_name)} names): {self.total.summary()} "
            f"steals={self.steals} tap_errors={self.tap_errors_total}"
        )
        return "\n".join(lines)
