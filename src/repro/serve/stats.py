"""Aggregated serving counters, snapshotted as one immutable value."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServerStats"]


@dataclass(frozen=True)
class ServerStats:
    """One point-in-time view of a service's traffic and cache behaviour."""

    requests: int           # submissions seen by the service (incl. cache hits)
    rows: int               # rows that reached the batcher
    batches: int            # flushes executed
    size_flushes: int
    deadline_flushes: int
    manual_flushes: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    cache_invalidations: int
    cache_entries: int
    total_latency_s: float  # summed enqueue→completion time of batched requests

    @property
    def hit_rate(self) -> float:
        seen = self.cache_hits + self.cache_misses
        return self.cache_hits / seen if seen else 0.0

    @property
    def mean_batch_rows(self) -> float:
        return self.rows / self.batches if self.batches else 0.0

    @property
    def mean_latency_ms(self) -> float:
        batched = self.requests - self.cache_hits
        return 1e3 * self.total_latency_s / batched if batched > 0 else 0.0

    def summary(self) -> str:
        return (
            f"requests={self.requests} batches={self.batches} "
            f"(size={self.size_flushes} deadline={self.deadline_flushes} "
            f"manual={self.manual_flushes}, mean {self.mean_batch_rows:.1f} rows) "
            f"cache hit-rate={self.hit_rate:.1%} "
            f"mean latency={self.mean_latency_ms:.2f}ms"
        )
