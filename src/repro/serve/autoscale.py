"""SLO autoscaler: steer the live shard count toward a tail-latency target.

:class:`~repro.serve.adaptive.AdaptiveBatchTuner` tunes *within* one
worker — flush limits against a mean-latency target.  This module sits
one level above it: when the whole fleet's p99 breaches the SLO, no
amount of batch retuning helps — the cluster needs more workers; when
the fleet idles far under target, the extra processes are pure memory
and respawn surface.  :class:`SLOAutoscaler` closes that loop with the
same AIMD discipline —

* **SLO breach** (windowed p99 over target for ``breach_windows``
  consecutive windows) → additive growth, ``+grow_step`` shards, clamped
  at ``max_shards``;
* **sustained calm** (p99 under ``low_watermark × target`` for
  ``calm_windows`` consecutive windows) → multiplicative shrink toward
  ``min_shards``;
* anything in between → hold, and both streaks reset.

Scale actions ride :meth:`ShardedServingCluster.scale_to
<repro.serve.shard.ShardedServingCluster.scale_to>` — tail-only
growth/shrink over the same spawn/retire machinery the supervisor's
respawn path uses, so a scale-up warm-starts from the cached registry
snapshot and a scale-down drains in-flight work before the worker exits.
Separate up/down cooldowns prevent flapping (scale-downs are cheap to
defer, scale-ups are not).

Every action (and every failed action) is a coded
:class:`~repro.serve.monitor.policy.MonitorEvent` — ``SLO_BREACH`` tags
the breach that forced a scale-up, ``AUTOSCALE_FAILED`` a scale call
that raised — recorded into an attached
:class:`~repro.serve.monitor.policy.PolicyEngine` so capacity changes
land on the same audit timeline as drift alerts and respawns.

Like the tuner and the supervisor, the controller is deterministic under
an injected clock: :meth:`SLOAutoscaler.step` reads the cluster's
windowed counters and the bounded latency ring, does no sleeping, and
reads no wall time of its own — tests drive it against a stub cluster
with a hand-cranked clock and replay identical trajectories.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.serve.errors import ErrorCode
from repro.serve.monitor.policy import MonitorEvent

__all__ = ["ScalingDecision", "SLOAutoscaler"]


@dataclass(frozen=True)
class ScalingDecision:
    """One control-pass record (the autoscaler's audit trail)."""

    at: float               # clock time of the step
    n_shards: int           # fleet width after any action
    window_completed: int   # requests completing in the window
    observed_ms: float      # the latency signal judged against the SLO
    target_ms: float        # the SLO at step time
    direction: str          # "up" | "down" | "hold"


class SLOAutoscaler:
    """AIMD controller for a sharded cluster's worker count.

    Parameters
    ----------
    cluster:
        Anything with ``stats()`` (a
        :class:`~repro.serve.stats.ClusterStats`-shaped roll-up),
        ``scale_to(n)``, and ``n_shards`` — the real
        :class:`~repro.serve.shard.ShardedServingCluster`, or a stub in
        determinism tests.
    target_p99_ms:
        The SLO: windowed p99 completed-request latency to stay under.
    min_shards, max_shards:
        Inclusive fleet-width clamps.
    grow_step:
        Additive increase — shards added per scale-up.
    shrink_factor:
        Multiplicative decrease — the fleet shrinks toward
        ``ceil(n × shrink_factor)`` (always at least one worker fewer,
        never below ``min_shards``).
    low_watermark:
        Calm threshold as a fraction of the target: only windows with
        p99 under ``low_watermark × target_p99_ms`` count toward shrink.
    breach_windows, calm_windows:
        Consecutive evidence windows required before acting in each
        direction (scale-ups react fast by default, scale-downs demand
        sustained calm).
    up_cooldown_s, down_cooldown_s:
        Minimum clock time after *any* scale action before the next
        up/down action — newly spawned workers need a window of traffic
        before their latency means anything.
    interval_s:
        :meth:`maybe_step` cadence (and the daemon thread's period).
    clock:
        Injected monotonic time source.
    policy:
        Optional :class:`~repro.serve.monitor.policy.PolicyEngine`; every
        emitted event is also recorded there.
    history_limit, max_events:
        Bounds on the :class:`ScalingDecision` trail and the event deque
        (the controller may run for the process lifetime).
    """

    RULE = "slo-autoscaler"

    def __init__(
        self,
        cluster: Any,
        target_p99_ms: float = 50.0,
        min_shards: int = 1,
        max_shards: int = 8,
        grow_step: int = 1,
        shrink_factor: float = 0.5,
        low_watermark: float = 0.3,
        breach_windows: int = 1,
        calm_windows: int = 3,
        up_cooldown_s: float = 1.0,
        down_cooldown_s: float = 5.0,
        interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        policy: Any = None,
        history_limit: int = 1024,
        max_events: int = 1024,
    ):
        if target_p99_ms <= 0:
            raise ValueError("target_p99_ms must be > 0")
        if min_shards < 1 or min_shards > max_shards:
            raise ValueError("shard bounds must satisfy 1 <= min_shards <= max_shards")
        if grow_step < 1:
            raise ValueError("grow_step must be >= 1")
        if not (0.0 < shrink_factor < 1.0):
            raise ValueError("shrink_factor must be in (0, 1)")
        if not (0.0 < low_watermark < 1.0):
            raise ValueError("low_watermark must be in (0, 1)")
        if breach_windows < 1 or calm_windows < 1:
            raise ValueError("evidence windows must be >= 1")
        self.cluster = cluster
        self.target_p99_ms = float(target_p99_ms)
        self.min_shards = int(min_shards)
        self.max_shards = int(max_shards)
        self.grow_step = int(grow_step)
        self.shrink_factor = float(shrink_factor)
        self.low_watermark = float(low_watermark)
        self.breach_windows = int(breach_windows)
        self.calm_windows = int(calm_windows)
        self.up_cooldown_s = float(up_cooldown_s)
        self.down_cooldown_s = float(down_cooldown_s)
        self.interval_s = float(interval_s)
        self._clock = clock
        self.policy = policy

        self._lock = threading.Lock()  # serializes whole steps
        self._prev: dict[str, float] | None = None  # last total counters
        self._breach_streak = 0
        self._calm_streak = 0
        self._last_action_at: float | None = None
        self._last_step: float | None = None
        self.history: deque[ScalingDecision] = deque(maxlen=history_limit)
        self.events: deque[MonitorEvent] = deque(maxlen=max_events)
        self.scale_ups = 0
        self.scale_downs = 0
        self.scale_failures = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #
    def step(self) -> ScalingDecision | None:
        """One control pass; returns the decision (``None`` on the very
        first call, which only baselines the counters).

        Pure function of the injected clock and the cluster's stats
        sequence: the same schedule replays to the same trajectory.
        """
        with self._lock:
            now = self._clock()
            self._last_step = now
            total = self.cluster.stats().total
            cur = {
                "completed": float(total.completed),
                "total_latency_s": float(total.total_latency_s),
            }
            prev, self._prev = self._prev, cur
            if prev is None:
                return None  # baseline only: no window to judge yet
            completed = int(cur["completed"] - prev["completed"])
            n = int(self.cluster.n_shards)
            if completed <= 0:
                # no evidence either way: hold without touching the streaks
                # (an idle fleet must not "calm" its way down to min_shards)
                decision = ScalingDecision(now, n, 0, 0.0, self.target_p99_ms, "hold")
                self.history.append(decision)
                return decision
            # the SLO signal: tail percentile over the bounded ring when
            # the fleet keeps one, windowed mean as the degraded fallback
            observed = total.p99_ms if total.latency_samples else (
                1e3 * (cur["total_latency_s"] - prev["total_latency_s"]) / completed
            )
            direction = "hold"
            emitted: list[MonitorEvent] = []
            if observed > self.target_p99_ms:
                self._breach_streak += 1
                self._calm_streak = 0
                if (self._breach_streak >= self.breach_windows
                        and self._cooled(now, self.up_cooldown_s)
                        and n < self.max_shards):
                    target = min(self.max_shards, n + self.grow_step)
                    n, direction, emitted = self._apply(now, n, target, "up", observed)
            elif observed < self.low_watermark * self.target_p99_ms:
                self._calm_streak += 1
                self._breach_streak = 0
                if (self._calm_streak >= self.calm_windows
                        and self._cooled(now, self.down_cooldown_s)
                        and n > self.min_shards):
                    target = max(self.min_shards, min(n - 1, round(n * self.shrink_factor)))
                    n, direction, emitted = self._apply(now, n, target, "down", observed)
            else:
                self._breach_streak = 0
                self._calm_streak = 0
            decision = ScalingDecision(
                now, n, completed, observed, self.target_p99_ms, direction,
            )
            self.history.append(decision)
            self.events.extend(emitted)
        if self.policy is not None:
            for event in emitted:
                self.policy.record(event)
        return decision

    def maybe_step(self) -> ScalingDecision | None:
        """Run :meth:`step` iff ``interval_s`` elapsed since the last one."""
        if self._last_step is not None and self._clock() - self._last_step < self.interval_s:
            return None
        return self.step()

    # ------------------------------------------------------------------ #
    def _cooled(self, now: float, cooldown_s: float) -> bool:
        return self._last_action_at is None or now - self._last_action_at >= cooldown_s

    def _apply(self, now: float, n: int, target: int, direction: str,
               observed: float) -> tuple[int, str, list[MonitorEvent]]:
        """Execute one scale action; returns (fleet width, direction,
        events) — a failed action holds the width and reports itself."""
        try:
            result = int(self.cluster.scale_to(target))
        except Exception as exc:
            self.scale_failures += 1
            return n, "hold", [self._event(
                now, "scale-failed", float(target),
                f"scale_to({target}) raised {type(exc).__name__}: {exc} "
                f"(p99 {observed:.2f}ms vs SLO {self.target_p99_ms:.2f}ms)",
                ErrorCode.AUTOSCALE_FAILED,
            )]
        self._last_action_at = now
        self._breach_streak = 0
        self._calm_streak = 0
        if direction == "up":
            self.scale_ups += 1
            event = self._event(
                now, "scale-up", float(result),
                f"SLO breach: p99 {observed:.2f}ms > {self.target_p99_ms:.2f}ms "
                f"— scaled {n} -> {result} shards",
                ErrorCode.SLO_BREACH,
            )
        else:
            self.scale_downs += 1
            event = self._event(
                now, "scale-down", float(result),
                f"sustained calm: p99 {observed:.2f}ms < "
                f"{self.low_watermark * self.target_p99_ms:.2f}ms "
                f"— scaled {n} -> {result} shards",
                None,
            )
        return result, direction, [event]

    def _event(self, now: float, action: str, value: float,
               detail: str, code: ErrorCode | None) -> MonitorEvent:
        return MonitorEvent(
            at=now, name="cluster", rule=self.RULE,
            action=action, value=value, detail=detail, code=code,
        )

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the daemon control loop (production mode; tests call
        :meth:`step` directly)."""
        if self._thread is not None:
            raise RuntimeError("autoscaler already started")
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(self.interval_s):
                try:
                    self.step()
                except Exception:
                    # the cluster may be closing under us; the controller
                    # must never die of a racing shutdown
                    if self._stop.is_set():
                        return

        self._thread = threading.Thread(target=run, name="slo-autoscaler", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "SLOAutoscaler":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
