"""Asyncio socket front door over the ticket-based serve stack.

:class:`AsyncServeServer` is the network edge ROADMAP direction 1 calls
for: an event loop accepts connections and speaks the length-prefixed
JSON frame protocol (:mod:`repro.serve.net.protocol`), while every
blocking ticket operation happens off-loop so one slow flush can never
stall another connection's accept/read path.

Per connection the data path is three stages, mirroring the shard
worker's enqueue/responder split:

* the **reader coroutine** (event loop) parses frames and applies
  admission control, then hands work to
* the **submitter thread**, which bridges each request to
  ``backend.submit(name, row, kind)`` — a :class:`ServingGateway` or a
  :class:`ShardedServingCluster`; a size-triggered flush scores *inline*
  in the submitting thread, which is exactly why submission cannot run on
  the loop — and chains the ticket to
* the **collector thread**, which blocks on ``ticket.result()`` strictly
  in submission order and marshals each response back to the event loop
  with ``loop.call_soon_threadsafe`` for writing.

Because every stage drains FIFO and ``call_soon_threadsafe`` callbacks
run in scheduling order, responses leave each connection **in request
order** — the batcher's FIFO witness semantics extend to the wire.

**Admission control** sheds load instead of queueing it unboundedly: a
request arriving while the server-wide in-flight budget
(``max_in_flight``) or the connection's pending cap
(``max_pending_per_conn``) is exhausted is answered immediately — still
in FIFO position — with a structured ``OVERLOADED`` (513) wire error and
never reaches the gateway.  The client sees ``retryable: true`` and backs
off; the server's queues stay bounded, so p99 latency under overload is
a shed, not a stall.

The server adds no scoring path: every value a client reads is the
``to_wire``/JSON image of exactly what the in-process ticket returned,
bit-identical under ``np.array_equal`` (``tests/test_net.py`` pins this
against the same gateway).
"""

from __future__ import annotations

import asyncio
import queue
import threading
from typing import Any

from repro.serve.errors import ErrorCode, coded, ensure_code
from repro.serve.net.protocol import (
    MAX_FRAME_BYTES,
    encode_value,
    error_response,
    ok_response,
    overload_error,
    parse_request,
    read_frame,
)

__all__ = ["AsyncServeServer"]


class _Conn:
    """Per-connection state shared between the loop and the two threads."""

    __slots__ = ("writer", "submit_q", "done_q", "pending", "threads")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.submit_q: queue.SimpleQueue = queue.SimpleQueue()
        self.done_q: queue.SimpleQueue = queue.SimpleQueue()
        self.pending = 0  # submitted-not-yet-responded; loop-thread only
        self.threads: list[threading.Thread] = []


class AsyncServeServer:
    """Serve a ticket backend over asyncio sockets with admission control.

    Parameters
    ----------
    backend:
        Anything with the serve stack's front-door shape —
        ``submit(name, row, kind)`` returning a ticket whose ``result()``
        blocks: a :class:`~repro.serve.router.ServingGateway` or a
        :class:`~repro.serve.shard.ShardedServingCluster`.  The server
        never closes the backend; it usually outlives the edge.
    host, port:
        Bind address; ``port=0`` picks a free port (``.port`` has the real
        one after :meth:`start`).
    max_in_flight:
        Server-wide budget of submitted-but-unanswered requests.  The
        knob that bounds total queue memory and tail latency: request
        ``max_in_flight + 1`` is shed with ``OVERLOADED``.
    max_pending_per_conn:
        Per-connection pending cap — one firehose client saturating the
        global budget cannot starve its neighbours beyond this depth.
    max_frame_bytes:
        Largest acceptable frame; oversized headers are refused before
        allocation.
    request_timeout:
        Collector-side cap on one ticket; a wedged flush answers with a
        coded ``DEADLINE_EXCEEDED`` instead of damming the connection.
    """

    def __init__(
        self,
        backend: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_in_flight: int = 1024,
        max_pending_per_conn: int = 512,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        request_timeout: float = 60.0,
    ):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_pending_per_conn < 1:
            raise ValueError("max_pending_per_conn must be >= 1")
        self.backend = backend
        self.host = host
        self.port = int(port)
        self.max_in_flight = int(max_in_flight)
        self.max_pending_per_conn = int(max_pending_per_conn)
        self.max_frame_bytes = int(max_frame_bytes)
        self.request_timeout = float(request_timeout)

        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._closed = False
        self._in_flight = 0  # loop-thread only (reader inc, _respond dec)
        self._conns: set[_Conn] = set()

        # counters; loop-thread writes, snapshot reads via counters()
        self.connections = 0
        self.requests = 0   # frames parsed as requests (incl. shed)
        self.submitted = 0  # requests that reached backend.submit
        self.responses = 0  # response frames handed to the transport
        self.shed = 0       # requests answered OVERLOADED by admission
        self.wire_errors = 0  # frame-level failures (bad JSON, oversize)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "AsyncServeServer":
        """Bind and serve on a dedicated event-loop thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("AsyncServeServer.start() called twice")
        self._thread = threading.Thread(
            target=self._run_loop, name="serve-net-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            raise self._startup_error
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle, self.host, self.port)
            )
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._server = server
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting, drop connections, and join the loop thread.

        Idempotent.  In-flight tickets finish in their collector threads
        but their responses go nowhere (the transports are closed) — a
        deliberate hard edge: ``close`` is shutdown, not drain.
        """
        if self._closed or self._loop is None:
            self._closed = True
            return
        self._closed = True
        loop = self._loop

        async def shutdown() -> None:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            for conn in list(self._conns):
                try:
                    conn.writer.close()
                except Exception:
                    pass
            loop.stop()

        def kickoff() -> None:
            loop.create_task(shutdown())

        try:
            loop.call_soon_threadsafe(kickoff)
        except RuntimeError:
            pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "AsyncServeServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    def counters(self) -> dict[str, int]:
        return {
            "connections": self.connections,
            "requests": self.requests,
            "submitted": self.submitted,
            "responses": self.responses,
            "shed": self.shed,
            "wire_errors": self.wire_errors,
            "in_flight": self._in_flight,
        }

    # ------------------------------------------------------------------ #
    # connection handling (event loop)
    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(writer)
        self._conns.add(conn)
        self.connections += 1
        submitter = threading.Thread(
            target=self._submitter, args=(conn,), name="serve-net-submit", daemon=True
        )
        collector = threading.Thread(
            target=self._collector, args=(conn,), name="serve-net-collect", daemon=True
        )
        conn.threads = [submitter, collector]
        submitter.start()
        collector.start()
        try:
            while True:
                try:
                    msg = await read_frame(reader, self.max_frame_bytes)
                except Exception as exc:
                    # frame-level failure: the stream offset can no longer
                    # be trusted, so answer (id unknowable) and close
                    self.wire_errors += 1
                    conn.submit_q.put(("err", None, ensure_code(exc), False))
                    break
                if msg is None:
                    break  # clean disconnect (EOF or mid-frame cut)
                try:
                    req_id, name, kind, arr, single = parse_request(msg)
                except Exception as exc:
                    # a well-framed but invalid request: coded reply in
                    # FIFO position, connection stays up
                    self.requests += 1
                    rid = msg.get("id")
                    rid = rid if isinstance(rid, int) and not isinstance(rid, bool) else None
                    conn.submit_q.put(("err", rid, ensure_code(exc), False))
                    continue
                self.requests += 1
                if (
                    self._in_flight >= self.max_in_flight
                    or conn.pending >= self.max_pending_per_conn
                ):
                    self.shed += 1
                    scope = (
                        "server in-flight budget"
                        if self._in_flight >= self.max_in_flight
                        else "connection pending cap"
                    )
                    conn.submit_q.put((
                        "err", req_id,
                        overload_error(f"request shed: {scope} exhausted"),
                        False,
                    ))
                    continue
                self._in_flight += 1
                conn.pending += 1
                self.submitted += 1
                conn.submit_q.put(("req", req_id, name, kind, arr, single))
        finally:
            conn.submit_q.put(None)  # chained through to the collector

    def _finish_conn(self, conn: _Conn) -> None:
        # runs on the loop after the collector drained everything: all
        # responses are already written (or skipped on a dead transport)
        self._conns.discard(conn)
        try:
            conn.writer.close()
        except Exception:
            pass

    def _respond(self, conn: _Conn, data: bytes, counted: bool) -> None:
        """Write one response frame; runs on the event loop.

        ``counted`` releases the admission slots taken at submit time —
        also on a dead transport, so a client that vanished mid-burst can
        never leak in-flight budget."""
        if counted:
            self._in_flight -= 1
            conn.pending -= 1
        if not conn.writer.is_closing():
            try:
                conn.writer.write(data)
                self.responses += 1
            except Exception:
                pass  # peer gone; the reader will see the close

    # ------------------------------------------------------------------ #
    # per-connection worker threads (off loop)
    # ------------------------------------------------------------------ #
    def _submitter(self, conn: _Conn) -> None:
        """Bridge requests to ``backend.submit`` in arrival order.

        Submission blocks at most one connection (a size-triggered flush
        scores inline here — by design off the event loop); the resulting
        ticket chains to the collector, so later requests keep submitting
        while earlier ones are still scoring.
        """
        while True:
            item = conn.submit_q.get()
            if item is None:
                conn.done_q.put(None)
                return
            if item[0] == "err":
                conn.done_q.put(item)
                continue
            _, req_id, name, kind, arr, single = item
            try:
                ticket = self.backend.submit(name, arr, kind=kind)
            except BaseException as exc:
                conn.done_q.put(("err", req_id, ensure_code(exc), True))
            else:
                conn.done_q.put(("ticket", req_id, kind, single, ticket))

    def _collector(self, conn: _Conn) -> None:
        """Complete tickets strictly FIFO and marshal responses loop-side."""
        while True:
            item = conn.done_q.get()
            if item is None:
                self._call_loop(self._finish_conn, conn)
                return
            if item[0] == "err":
                _, req_id, exc, counted = item
                data = error_response(req_id, exc)
            else:
                _, req_id, kind, single, ticket = item
                counted = True
                try:
                    value = ticket.result(timeout=self.request_timeout)
                except BaseException as exc:
                    data = error_response(req_id, ensure_code(exc))
                else:
                    try:
                        data = ok_response(req_id, encode_value(kind, single, value))
                    except BaseException as exc:
                        data = error_response(
                            req_id,
                            coded(RuntimeError(f"result not serializable: {exc}"),
                                  ErrorCode.INTERNAL),
                        )
            self._call_loop(self._respond, conn, data, counted)

    def _call_loop(self, fn: Any, *args: Any) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass  # loop closed mid-shutdown; counters no longer matter
