"""Asyncio socket front door over the ticket-based serve stack.

:class:`AsyncServeServer` is the network edge ROADMAP direction 1 calls
for: an event loop accepts connections and speaks the length-prefixed
JSON frame protocol (:mod:`repro.serve.net.protocol`), while every
blocking ticket operation happens off-loop so one slow flush can never
stall another connection's accept/read path.

Per connection the data path is three stages, mirroring the shard
worker's enqueue/responder split:

* the **reader coroutine** (event loop) parses frames and applies
  admission control, then hands work to
* the **submitter thread**, which bridges each request to
  ``backend.submit(name, row, kind)`` — a :class:`ServingGateway` or a
  :class:`ShardedServingCluster`; a size-triggered flush scores *inline*
  in the submitting thread, which is exactly why submission cannot run on
  the loop — and chains the ticket to
* the **collector thread**, which blocks on ``ticket.result()`` strictly
  in submission order and marshals each response back to the event loop
  with ``loop.call_soon_threadsafe`` for writing.

Because every stage drains FIFO and ``call_soon_threadsafe`` callbacks
run in scheduling order, responses leave each connection **in request
order** — the batcher's FIFO witness semantics extend to the wire.

**Admission control** sheds load instead of queueing it unboundedly: a
request arriving while the server-wide in-flight budget
(``max_in_flight``) or the connection's pending cap
(``max_pending_per_conn``) is exhausted is answered immediately — still
in FIFO position — with a structured ``OVERLOADED`` (513) wire error and
never reaches the gateway.  The client sees ``retryable: true`` and backs
off; the server's queues stay bounded, so p99 latency under overload is
a shed, not a stall.

The server adds no scoring path: every value a client reads is the
``to_wire``/JSON image of exactly what the in-process ticket returned,
bit-identical under ``np.array_equal`` (``tests/test_net.py`` pins this
against the same gateway).
"""

from __future__ import annotations

import asyncio
import itertools
import queue
import threading
from typing import Any

from repro.serve.errors import ErrorCode, coded, ensure_code
from repro.serve.net.protocol import (
    MAX_FRAME_BYTES,
    encode_value,
    error_response,
    ok_response,
    overload_error,
    parse_request,
    read_frame,
)
from repro.serve.obs.metrics import MetricsRegistry

__all__ = ["AsyncServeServer"]

_OPS = ("metrics", "trace", "slowest")


class _Conn:
    """Per-connection state shared between the loop and the two threads."""

    __slots__ = ("writer", "submit_q", "done_q", "pending", "threads")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.submit_q: queue.SimpleQueue = queue.SimpleQueue()
        self.done_q: queue.SimpleQueue = queue.SimpleQueue()
        self.pending = 0  # submitted-not-yet-responded; loop-thread only
        self.threads: list[threading.Thread] = []


class AsyncServeServer:
    """Serve a ticket backend over asyncio sockets with admission control.

    Parameters
    ----------
    backend:
        Anything with the serve stack's front-door shape —
        ``submit(name, row, kind)`` returning a ticket whose ``result()``
        blocks: a :class:`~repro.serve.router.ServingGateway` or a
        :class:`~repro.serve.shard.ShardedServingCluster`.  The server
        never closes the backend; it usually outlives the edge.
    host, port:
        Bind address; ``port=0`` picks a free port (``.port`` has the real
        one after :meth:`start`).
    max_in_flight:
        Server-wide budget of submitted-but-unanswered requests.  The
        knob that bounds total queue memory and tail latency: request
        ``max_in_flight + 1`` is shed with ``OVERLOADED``.
    max_pending_per_conn:
        Per-connection pending cap — one firehose client saturating the
        global budget cannot starve its neighbours beyond this depth.
    max_frame_bytes:
        Largest acceptable frame; oversized headers are refused before
        allocation.
    request_timeout:
        Collector-side cap on one ticket; a wedged flush answers with a
        coded ``DEADLINE_EXCEEDED`` instead of damming the connection.
    tracer:
        Optional :class:`~repro.serve.obs.trace.Tracer` — the obs plane's
        edge attachment.  A request then gets a trace context (born here
        for every ``trace_sample``-th request, or adopted — always — from
        the frame's ``"trace"`` field) recording
        ``parse``/``admission``/``respond`` edge spans, errors carry the
        trace id inside their wire payload, and the ``trace``/``slowest``
        op frames export spans.  Share one tracer between the server and
        a traced backend so edge and backend spans land in one place.
    trace_sample:
        Auto-born traces sample 1-in-``trace_sample`` requests
        (deterministic stride, the monitor plane's ``sample`` dial); a
        frame carrying an explicit ``"trace"`` id is always traced.

    Whatever the tracer, :attr:`metrics` is a
    :class:`~repro.serve.obs.metrics.MetricsRegistry` over the backend,
    this server's edge counters, and any attached tracers — the source
    the ``metrics`` op frame answers from (Prometheus text or JSON).
    """

    def __init__(
        self,
        backend: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_in_flight: int = 1024,
        max_pending_per_conn: int = 512,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        request_timeout: float = 60.0,
        tracer: Any = None,
        trace_sample: int = 1,
    ):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_pending_per_conn < 1:
            raise ValueError("max_pending_per_conn must be >= 1")
        if trace_sample < 1:
            raise ValueError("trace_sample must be >= 1")
        self.backend = backend
        self.host = host
        self.port = int(port)
        self.max_in_flight = int(max_in_flight)
        self.max_pending_per_conn = int(max_pending_per_conn)
        self.max_frame_bytes = int(max_frame_bytes)
        self.request_timeout = float(request_timeout)
        self.tracer = tracer
        self.trace_sample = int(trace_sample)
        self._trace_tick = itertools.count()  # loop-thread only
        # one unified metrics surface: backend stats + edge counters +
        # span-ring accounting, all read at op time (never cached)
        self.metrics = MetricsRegistry().add_backend(backend).add_server(self)
        if tracer is not None:
            self.metrics.add_tracer(tracer)
        backend_tracer = getattr(backend, "_tracer", None)
        if backend_tracer is not None:
            self.metrics.add_tracer(backend_tracer)  # dedups shared tracers

        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._closed = False
        self._in_flight = 0  # loop-thread only (reader inc, _respond dec)
        self._conns: set[_Conn] = set()

        # counters; loop-thread writes, snapshot reads via counters()
        self.connections = 0
        self.requests = 0   # frames parsed as requests (incl. shed)
        self.submitted = 0  # requests that reached backend.submit
        self.responses = 0  # response frames handed to the transport
        self.shed = 0       # requests answered OVERLOADED by admission
        self.wire_errors = 0  # frame-level failures (bad JSON, oversize)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "AsyncServeServer":
        """Bind and serve on a dedicated event-loop thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("AsyncServeServer.start() called twice")
        self._thread = threading.Thread(
            target=self._run_loop, name="serve-net-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            raise self._startup_error
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle, self.host, self.port)
            )
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._server = server
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting, drop connections, and join the loop thread.

        Idempotent.  In-flight tickets finish in their collector threads
        but their responses go nowhere (the transports are closed) — a
        deliberate hard edge: ``close`` is shutdown, not drain.
        """
        if self._closed or self._loop is None:
            self._closed = True
            return
        self._closed = True
        loop = self._loop

        async def shutdown() -> None:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            for conn in list(self._conns):
                try:
                    conn.writer.close()
                except Exception:
                    pass
            loop.stop()

        def kickoff() -> None:
            loop.create_task(shutdown())

        try:
            loop.call_soon_threadsafe(kickoff)
        except RuntimeError:
            pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "AsyncServeServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    def counters(self) -> dict[str, int]:
        return {
            "connections": self.connections,
            "requests": self.requests,
            "submitted": self.submitted,
            "responses": self.responses,
            "shed": self.shed,
            "wire_errors": self.wire_errors,
            "in_flight": self._in_flight,
        }

    # ------------------------------------------------------------------ #
    # connection handling (event loop)
    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(writer)
        self._conns.add(conn)
        self.connections += 1
        submitter = threading.Thread(
            target=self._submitter, args=(conn,), name="serve-net-submit", daemon=True
        )
        collector = threading.Thread(
            target=self._collector, args=(conn,), name="serve-net-collect", daemon=True
        )
        conn.threads = [submitter, collector]
        submitter.start()
        collector.start()
        try:
            while True:
                try:
                    msg = await read_frame(reader, self.max_frame_bytes)
                except Exception as exc:
                    # frame-level failure: the stream offset can no longer
                    # be trusted, so answer (id unknowable) and close
                    self.wire_errors += 1
                    conn.submit_q.put(("err", None, ensure_code(exc), False))
                    break
                if msg is None:
                    break  # clean disconnect (EOF or mid-frame cut)
                op = msg.get("op")
                if isinstance(op, str):
                    # observability op frame: answered from server state in
                    # FIFO position, never routed to the backend and never
                    # charged against the admission budget (ops are cheap
                    # reads — shedding them would blind the operator at
                    # exactly the moment the budget is exhausted)
                    self.requests += 1
                    rid = msg.get("id")
                    rid = rid if isinstance(rid, int) and not isinstance(rid, bool) else None
                    conn.submit_q.put(("op", rid, op, msg))
                    continue
                ctx = None
                if self.tracer is not None:
                    tid = msg.get("trace")
                    if isinstance(tid, str):
                        ctx = self.tracer.context(tid)  # explicit: never sampled
                    elif next(self._trace_tick) % self.trace_sample == 0:
                        ctx = self.tracer.context(None)
                    if ctx is not None:
                        t_parse = self.tracer.now()
                try:
                    req_id, name, kind, arr, single = parse_request(msg)
                except Exception as exc:
                    # a well-framed but invalid request: coded reply in
                    # FIFO position, connection stays up
                    self.requests += 1
                    rid = msg.get("id")
                    rid = rid if isinstance(rid, int) and not isinstance(rid, bool) else None
                    if ctx is not None:
                        _tag_trace(exc, ctx)
                    conn.submit_q.put(("err", rid, ensure_code(exc), False))
                    continue
                self.requests += 1
                if ctx is not None:
                    t_admit = ctx.now()
                    ctx.record("edge", "parse", t_parse, t_admit)
                if (
                    self._in_flight >= self.max_in_flight
                    or conn.pending >= self.max_pending_per_conn
                ):
                    self.shed += 1
                    scope = (
                        "server in-flight budget"
                        if self._in_flight >= self.max_in_flight
                        else "connection pending cap"
                    )
                    shed_exc = overload_error(f"request shed: {scope} exhausted")
                    if ctx is not None:
                        _tag_trace(shed_exc, ctx)
                    conn.submit_q.put(("err", req_id, shed_exc, False))
                    continue
                self._in_flight += 1
                conn.pending += 1
                self.submitted += 1
                if ctx is not None:
                    ctx.record("edge", "admission", t_admit, ctx.now())
                conn.submit_q.put(("req", req_id, name, kind, arr, single, ctx))
        finally:
            conn.submit_q.put(None)  # chained through to the collector

    def _finish_conn(self, conn: _Conn) -> None:
        # runs on the loop after the collector drained everything: all
        # responses are already written (or skipped on a dead transport)
        self._conns.discard(conn)
        try:
            conn.writer.close()
        except Exception:
            pass

    def _respond(self, conn: _Conn, data: bytes, counted: bool) -> None:
        """Write one response frame; runs on the event loop.

        ``counted`` releases the admission slots taken at submit time —
        also on a dead transport, so a client that vanished mid-burst can
        never leak in-flight budget."""
        if counted:
            self._in_flight -= 1
            conn.pending -= 1
        if not conn.writer.is_closing():
            try:
                conn.writer.write(data)
                self.responses += 1
            except Exception:
                pass  # peer gone; the reader will see the close

    # ------------------------------------------------------------------ #
    # per-connection worker threads (off loop)
    # ------------------------------------------------------------------ #
    def _submitter(self, conn: _Conn) -> None:
        """Bridge requests to ``backend.submit`` in arrival order.

        Submission blocks at most one connection (a size-triggered flush
        scores inline here — by design off the event loop); the resulting
        ticket chains to the collector, so later requests keep submitting
        while earlier ones are still scoring.
        """
        while True:
            item = conn.submit_q.get()
            if item is None:
                conn.done_q.put(None)
                return
            if item[0] == "err":
                conn.done_q.put(item)
                continue
            if item[0] == "op":
                _, rid, opname, msg = item
                try:
                    value = self._exec_op(opname, msg)
                except BaseException as exc:
                    conn.done_q.put(("err", rid, ensure_code(exc), False))
                else:
                    conn.done_q.put(("meta", rid, value))
                continue
            _, req_id, name, kind, arr, single, ctx = item
            try:
                # the trace kwarg only exists when a context does — an
                # untraced server drives duck-typed backends unchanged
                if ctx is not None:
                    ticket = self.backend.submit(name, arr, kind=kind, trace=ctx)
                else:
                    ticket = self.backend.submit(name, arr, kind=kind)
            except BaseException as exc:
                if ctx is not None:
                    _tag_trace(exc, ctx)
                conn.done_q.put(("err", req_id, ensure_code(exc), True))
            else:
                conn.done_q.put(("ticket", req_id, kind, single, ticket, ctx))

    def _collector(self, conn: _Conn) -> None:
        """Complete tickets strictly FIFO and marshal responses loop-side."""
        while True:
            item = conn.done_q.get()
            if item is None:
                self._call_loop(self._finish_conn, conn)
                return
            if item[0] == "err":
                _, req_id, exc, counted = item
                data = error_response(req_id, exc)
            elif item[0] == "meta":
                # op-frame answer: raw value, never admission-counted
                _, req_id, value = item
                counted = False
                data = ok_response(req_id, value)
            else:
                _, req_id, kind, single, ticket, ctx = item
                counted = True
                t0 = ctx.now() if ctx is not None else 0.0
                try:
                    value = ticket.result(timeout=self.request_timeout)
                except BaseException as exc:
                    if ctx is not None:
                        _tag_trace(exc, ctx)
                    data = error_response(req_id, ensure_code(exc))
                else:
                    try:
                        data = ok_response(req_id, encode_value(kind, single, value))
                    except BaseException as exc:
                        if ctx is not None:
                            _tag_trace(exc, ctx)
                        data = error_response(
                            req_id,
                            coded(RuntimeError(f"result not serializable: {exc}"),
                                  ErrorCode.INTERNAL),
                        )
                if ctx is not None:
                    # result wait + response encode, ended loop-handoff side
                    ctx.record("edge", "respond", t0, ctx.now())
            self._call_loop(self._respond, conn, data, counted)

    def _call_loop(self, fn: Any, *args: Any) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass  # loop closed mid-shutdown; counters no longer matter

    # ------------------------------------------------------------------ #
    # observability op frames
    # ------------------------------------------------------------------ #
    def _exec_op(self, op: str, msg: dict[str, Any]) -> Any:
        """Answer one observability op frame (submitter thread).

        ``metrics`` → the unified snapshot (``fmt``: ``"json"`` default,
        ``"prom"`` for Prometheus text); ``trace`` → the merged span dump
        for ``msg["trace"]`` (or everything recorded); ``slowest`` → the
        top-``k`` spans by duration across every attached tracer.
        """
        if op == "metrics":
            fmt = msg.get("fmt", "json")
            if fmt == "prom":
                return self.metrics.prometheus()
            if fmt == "json":
                return self.metrics.collect()
            raise coded(ValueError(f"metrics fmt must be 'json' or 'prom', got {fmt!r}"),
                        ErrorCode.MALFORMED_REQUEST)
        if op == "trace":
            tid = msg.get("trace")
            return self.collect_spans(tid if isinstance(tid, str) else None)
        if op == "slowest":
            k = msg.get("k", 10)
            if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                raise coded(ValueError("'k' must be a positive integer"),
                            ErrorCode.MALFORMED_REQUEST)
            spans = self.collect_spans(None)["spans"]
            spans.sort(key=lambda s: s["end"] - s["start"], reverse=True)
            return spans[:k]
        raise coded(ValueError(f"unknown op {op!r}; valid: {_OPS}"),
                    ErrorCode.MALFORMED_REQUEST)

    def collect_spans(self, trace_id: str | None = None) -> dict[str, Any]:
        """Merged span export: the edge tracer plus the backend's
        ``trace_spans`` (which, on a cluster, already fans out to the
        workers).  A tracer shared between edge and backend is exported
        once — identity-checked, never double-counted."""
        backend_fn = getattr(self.backend, "trace_spans", None)
        if callable(backend_fn):
            out = backend_fn(trace_id)
            if self.tracer is not None and self.tracer is not getattr(
                self.backend, "_tracer", None
            ):
                _merge_export(out, self.tracer.export(trace_id))
            return out
        if self.tracer is not None:
            return self.tracer.export(trace_id)
        return {"spans": [], "dropped": {}, "recorded": {}}


def _merge_export(dst: dict[str, Any], src: dict[str, Any]) -> dict[str, Any]:
    """Fold one tracer export into another: spans concatenate, the
    per-component drop/recorded counters sum."""
    dst["spans"].extend(src["spans"])
    for key in ("dropped", "recorded"):
        for comp, n in src[key].items():
            dst[key][comp] = dst[key].get(comp, 0) + n
    return dst


def _tag_trace(exc: BaseException, ctx: Any) -> None:
    """Stamp the trace id onto an outbound error so its ``to_wire``
    payload carries the join key (best-effort: slotted exceptions that
    refuse attributes still ship their coded payload untagged)."""
    try:
        exc.trace_id = ctx.trace_id
    except AttributeError:
        pass
