"""Length-prefixed JSON frame protocol for the serving network edge.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Requests and responses both travel as frames::

    request  = {"id": int, "name": str, "kind": "predict"|"predict_dist",
                "row":  [f, ...]}          # single row, or
               {..., "rows": [[f, ...]]}   # an (m, d) block
               # optional: "trace": str — a trace id the obs plane adopts
    op       = {"id": int, "op": "metrics"|"trace"|"slowest", ...params}
               # observability frames answered from server state, never
               # routed to the backend (see net.server._exec_op)
    response = {"id": int, "ok": true,  "value": <kind-shaped JSON>}
             | {"id": int|null, "ok": false, "error": <to_wire() payload>}

The error payload is exactly :func:`repro.serve.errors.to_wire` — the
frozen coded vocabulary crosses the network unchanged, so a remote client
retries/alerts on ``category``/``retryable`` the same way an in-process
consumer does (``docs/errors.md``).

Values round-trip **bit-identically**: ``json`` serializes floats with
``repr``, the shortest digit string that parses back to the same IEEE-754
double, so a prediction crossing the wire equals the in-process
``ServingGateway.submit`` result under ``np.array_equal`` — the serve
stack's standing invariant extends to the network boundary.

Framing keeps misbehaving peers cheap to reject: a header announcing more
than ``max_frame_bytes`` is refused *before* any allocation with a coded
``FRAME_TOO_LARGE`` (the cap is in the message — raise ``max_frame_bytes``
at both ends to ship bigger blocks), a frame that is not a JSON object
raises a coded ``MALFORMED_REQUEST``, and a stream that ends mid-frame
reads as a plain disconnect (``None``), never a hang.

**Binary frames.**  The header's high bit flags a *binary* frame (payload
is raw bytes, not JSON), which caps a single frame at 2 GiB and keeps the
wire backward compatible: JSON-only peers never set the bit, and the
JSON-edge readers reject a flagged frame as ``MALFORMED_REQUEST`` instead
of misparsing it.  Binary frames carry ndarrays between shard transports
(:mod:`repro.serve.transport`) via :func:`encode_ndarray` /
:func:`decode_ndarray` — a dtype/shape/order header plus the raw buffer,
so shard traffic skips JSON float repr entirely while staying
bit-identical (the buffer bytes *are* the IEEE-754 doubles).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

import numpy as np

from repro.serve.errors import CodedError, ErrorCode, coded, to_wire

__all__ = [
    "MAX_FRAME_BYTES",
    "decode_ndarray",
    "decode_payload",
    "decode_value",
    "encode_binary_frame",
    "encode_frame",
    "encode_ndarray",
    "encode_value",
    "error_response",
    "frame_too_large",
    "ok_response",
    "overload_error",
    "parse_request",
    "read_frame",
    "recv_any_frame",
    "recv_frame",
    "request_frame",
]

MAX_FRAME_BYTES = 8 << 20  # refuse absurd headers before allocating
_HEADER = struct.Struct(">I")
_BINARY_FLAG = 0x80000000  # high header bit: payload is raw bytes, not JSON
_LENGTH_MASK = 0x7FFFFFFF
_KINDS = ("predict", "predict_dist")


def frame_too_large(length: int, max_frame_bytes: int) -> CodedError:
    """The coded oversize refusal — the cap rides in the message so an
    operator knows which knob (``max_frame_bytes``) to raise."""
    return CodedError(
        f"frame of {length} bytes exceeds the {max_frame_bytes}-byte cap "
        f"(max_frame_bytes={max_frame_bytes}; raise it at both ends to "
        f"ship larger blocks)",
        code=ErrorCode.FRAME_TOO_LARGE,
    )


def encode_frame(obj: dict[str, Any]) -> bytes:
    """One wire frame: length header + compact JSON payload."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(payload)) + payload


def encode_binary_frame(payload: bytes) -> bytes:
    """One binary frame: length header with the high bit set + raw bytes."""
    if len(payload) > _LENGTH_MASK:
        raise frame_too_large(len(payload), _LENGTH_MASK)
    return _HEADER.pack(len(payload) | _BINARY_FLAG) + payload


# ---------------------------------------------------------------------- #
# raw ndarray payloads (binary-frame bodies)
# ---------------------------------------------------------------------- #
def encode_ndarray(arr: np.ndarray) -> bytes:
    """Serialize an ndarray as dtype/shape/order header + raw buffer bytes.

    The dtype string carries byte order (``"<f8"``), the order flag
    preserves F-contiguity, and the buffer bytes are the array's exact
    memory — no float formatting, so the round-trip is bit-identical by
    construction.  Object dtypes are refused (no pickle smuggling through
    the binary path).
    """
    a = np.asarray(arr)
    if a.dtype.hasobject:
        raise coded(TypeError("object-dtype arrays cannot cross the binary frame"),
                    ErrorCode.MALFORMED_REQUEST)
    order = "F" if (a.flags.f_contiguous and not a.flags.c_contiguous) else "C"
    dt = a.dtype.str.encode("ascii")
    parts = [
        struct.pack(">B", len(dt)), dt,
        order.encode("ascii"),
        struct.pack(">B", a.ndim),
        struct.pack(f">{a.ndim}Q", *a.shape),
        a.tobytes(order=order),
    ]
    return b"".join(parts)


def decode_ndarray(data: bytes) -> np.ndarray:
    """Inverse of :func:`encode_ndarray`; coded ``MALFORMED_REQUEST`` on a
    truncated or inconsistent payload.  Returns a fresh writable array
    (``np.frombuffer`` views are read-only; serving code owns its rows)."""
    try:
        (dt_len,) = struct.unpack_from(">B", data, 0)
        off = 1 + dt_len
        dtype = np.dtype(data[1:off].decode("ascii"))
        order = data[off:off + 1].decode("ascii")
        if order not in ("C", "F"):
            raise ValueError(f"bad order flag {order!r}")
        (ndim,) = struct.unpack_from(">B", data, off + 1)
        off += 2
        shape = struct.unpack_from(f">{ndim}Q", data, off)
        off += 8 * ndim
        count = 1
        for s in shape:
            count *= s
        if len(data) - off != count * dtype.itemsize:
            raise ValueError(
                f"buffer holds {len(data) - off} bytes, "
                f"shape {shape} x {dtype} needs {count * dtype.itemsize}")
        flat = np.frombuffer(data, dtype=dtype, count=count, offset=off)
    except Exception as exc:
        # total: np.dtype() alone can raise struct.error, TypeError,
        # ValueError, even SyntaxError (it ast-parses some strings) —
        # every parse failure is the same coded wire error
        raise coded(ValueError(f"malformed ndarray payload: {exc}"),
                    ErrorCode.MALFORMED_REQUEST) from exc
    return flat.reshape(shape, order=order).copy(order=order)


def decode_payload(data: bytes) -> dict[str, Any]:
    """Parse one frame's payload; coded ``MALFORMED_REQUEST`` on garbage."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise coded(ValueError(f"frame payload is not valid JSON: {exc}"),
                    ErrorCode.MALFORMED_REQUEST) from exc
    if not isinstance(obj, dict):
        raise coded(ValueError("frame payload must be a JSON object"),
                    ErrorCode.MALFORMED_REQUEST)
    return obj


async def read_frame(
    reader: asyncio.StreamReader, max_frame_bytes: int = MAX_FRAME_BYTES
) -> dict[str, Any] | None:
    """Read one frame from an asyncio stream.

    Returns ``None`` on a clean disconnect — EOF at a frame boundary *or*
    mid-frame (a peer dying between header and payload must read as a
    close, never block the handler).  An oversized length header raises a
    coded ``FRAME_TOO_LARGE`` before any payload allocation; a binary
    frame is a protocol violation at the JSON edge (``MALFORMED_REQUEST``).
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None
    (raw,) = _HEADER.unpack(header)
    if raw & _BINARY_FLAG:
        raise coded(
            ValueError("binary frame is not accepted on the JSON edge"),
            ErrorCode.MALFORMED_REQUEST,
        )
    length = raw & _LENGTH_MASK
    if length > max_frame_bytes:
        raise frame_too_large(length, max_frame_bytes)
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None
    return decode_payload(payload)


def recv_frame(
    sock: socket.socket, max_frame_bytes: int = MAX_FRAME_BYTES
) -> dict[str, Any] | None:
    """Blocking counterpart of :func:`read_frame` (the client's read path)."""

    def read_exactly(n: int) -> bytes | None:
        chunks = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    header = read_exactly(_HEADER.size)
    if header is None:
        return None
    (raw,) = _HEADER.unpack(header)
    if raw & _BINARY_FLAG:
        raise coded(
            ValueError("binary frame is not accepted on the JSON edge"),
            ErrorCode.MALFORMED_REQUEST,
        )
    length = raw & _LENGTH_MASK
    if length > max_frame_bytes:
        raise frame_too_large(length, max_frame_bytes)
    payload = read_exactly(length)
    if payload is None:
        return None
    return decode_payload(payload)


def recv_any_frame(
    sock: socket.socket, max_frame_bytes: int = MAX_FRAME_BYTES
) -> tuple[bool, bytes] | None:
    """Read one frame of either kind → ``(is_binary, payload_bytes)``.

    The shard transport's read path: both JSON envelopes and binary
    ndarray blobs travel the same stream, distinguished by the header's
    high bit.  ``None`` on clean EOF (boundary or mid-frame), coded
    ``FRAME_TOO_LARGE`` on an oversized header before allocation.
    """

    def read_exactly(n: int) -> bytes | None:
        chunks = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    header = read_exactly(_HEADER.size)
    if header is None:
        return None
    (raw,) = _HEADER.unpack(header)
    is_binary = bool(raw & _BINARY_FLAG)
    length = raw & _LENGTH_MASK
    if length > max_frame_bytes:
        raise frame_too_large(length, max_frame_bytes)
    payload = read_exactly(length)
    if payload is None:
        return None
    return is_binary, payload


# ---------------------------------------------------------------------- #
# request / response shapes
# ---------------------------------------------------------------------- #
def request_frame(
    req_id: int, name: str, row: np.ndarray, kind: str,
    trace_id: str | None = None,
) -> bytes:
    """Encode one request (1-D ``row`` or 2-D block) as a wire frame.

    ``trace_id`` rides as the optional ``"trace"`` envelope field — a
    client-chosen trace id the traced server adopts (and echoes inside
    error payloads), so client-side logs and server-side span dumps join
    on one key.  Absent by default; servers without a tracer ignore it,
    keeping the field backward- and forward-compatible.
    """
    arr = np.asarray(row, dtype=float)
    body: dict[str, Any] = {"id": int(req_id), "name": name, "kind": kind}
    if trace_id is not None:
        body["trace"] = str(trace_id)
    if arr.ndim == 1:
        body["row"] = arr.tolist()
    else:
        body["rows"] = arr.tolist()
    return encode_frame(body)


def parse_request(msg: dict[str, Any]) -> tuple[int, str, str, np.ndarray, bool]:
    """Validate one request object → ``(id, name, kind, array, single)``.

    Every rejection is a coded ``MALFORMED_REQUEST`` so the caller can
    answer with a structured wire error instead of dropping the frame.
    """
    req_id = msg.get("id")
    if not isinstance(req_id, int) or isinstance(req_id, bool):
        raise coded(ValueError("request 'id' must be an integer"),
                    ErrorCode.MALFORMED_REQUEST)
    name = msg.get("name")
    if not isinstance(name, str) or not name:
        raise coded(ValueError("request 'name' must be a non-empty string"),
                    ErrorCode.MALFORMED_REQUEST)
    kind = msg.get("kind", "predict")
    if kind not in _KINDS:
        raise coded(ValueError(f"kind must be one of {_KINDS}, got {kind!r}"),
                    ErrorCode.MALFORMED_REQUEST)
    has_row, has_rows = "row" in msg, "rows" in msg
    if has_row == has_rows:  # neither, or both
        raise coded(ValueError("request needs exactly one of 'row' or 'rows'"),
                    ErrorCode.MALFORMED_REQUEST)
    try:
        arr = np.asarray(msg["row"] if has_row else msg["rows"], dtype=float)
    except (TypeError, ValueError) as exc:
        raise coded(ValueError(f"request rows are not numeric: {exc}"),
                    ErrorCode.MALFORMED_REQUEST) from exc
    if has_row and arr.ndim != 1:
        raise coded(ValueError(f"'row' must be 1-D, got ndim={arr.ndim}"),
                    ErrorCode.MALFORMED_REQUEST)
    if has_rows and arr.ndim != 2:
        raise coded(ValueError(f"'rows' must be 2-D, got ndim={arr.ndim}"),
                    ErrorCode.MALFORMED_REQUEST)
    return req_id, name, kind, arr, has_row


def encode_value(kind: str, single: bool, value: Any) -> Any:
    """Ticket result → JSON shape (the request's kind/arity decides)."""
    if kind == "predict":
        return float(value) if single else np.asarray(value, dtype=float).tolist()
    mean, var = value
    if single:
        return [float(mean), float(var)]
    return [np.asarray(mean, dtype=float).tolist(),
            np.asarray(var, dtype=float).tolist()]


def decode_value(kind: str, single: bool, value: Any) -> Any:
    """JSON shape → exactly what the in-process ticket would have returned."""
    if kind == "predict":
        return float(value) if single else np.asarray(value, dtype=float)
    mean, var = value
    if single:
        return float(mean), float(var)
    return np.asarray(mean, dtype=float), np.asarray(var, dtype=float)


def ok_response(req_id: int, value: Any) -> bytes:
    return encode_frame({"id": int(req_id), "ok": True, "value": value})


def error_response(
    req_id: int | None, exc: BaseException | ErrorCode, detail: str | None = None
) -> bytes:
    """A structured failure frame carrying the coded ``to_wire`` payload."""
    return encode_frame({"id": req_id, "ok": False, "error": to_wire(exc, detail)})


def overload_error(detail: str) -> CodedError:
    """The admission-control shed error (5xx, retryable: back off, retry)."""
    return CodedError(detail, code=ErrorCode.OVERLOADED)
