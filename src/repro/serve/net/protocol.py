"""Length-prefixed JSON frame protocol for the serving network edge.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Requests and responses both travel as frames::

    request  = {"id": int, "name": str, "kind": "predict"|"predict_dist",
                "row":  [f, ...]}          # single row, or
               {..., "rows": [[f, ...]]}   # an (m, d) block
    response = {"id": int, "ok": true,  "value": <kind-shaped JSON>}
             | {"id": int|null, "ok": false, "error": <to_wire() payload>}

The error payload is exactly :func:`repro.serve.errors.to_wire` — the
frozen coded vocabulary crosses the network unchanged, so a remote client
retries/alerts on ``category``/``retryable`` the same way an in-process
consumer does (``docs/errors.md``).

Values round-trip **bit-identically**: ``json`` serializes floats with
``repr``, the shortest digit string that parses back to the same IEEE-754
double, so a prediction crossing the wire equals the in-process
``ServingGateway.submit`` result under ``np.array_equal`` — the serve
stack's standing invariant extends to the network boundary.

Framing keeps misbehaving peers cheap to reject: a header announcing more
than ``max_frame_bytes`` is refused *before* any allocation, a frame that
is not a JSON object raises a coded ``MALFORMED_REQUEST``, and a stream
that ends mid-frame reads as a plain disconnect (``None``), never a hang.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

import numpy as np

from repro.serve.errors import CodedError, ErrorCode, coded, to_wire

__all__ = [
    "MAX_FRAME_BYTES",
    "decode_payload",
    "decode_value",
    "encode_frame",
    "encode_value",
    "error_response",
    "ok_response",
    "overload_error",
    "parse_request",
    "read_frame",
    "recv_frame",
    "request_frame",
]

MAX_FRAME_BYTES = 8 << 20  # refuse absurd headers before allocating
_HEADER = struct.Struct(">I")
_KINDS = ("predict", "predict_dist")


def encode_frame(obj: dict[str, Any]) -> bytes:
    """One wire frame: length header + compact JSON payload."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(payload)) + payload


def decode_payload(data: bytes) -> dict[str, Any]:
    """Parse one frame's payload; coded ``MALFORMED_REQUEST`` on garbage."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise coded(ValueError(f"frame payload is not valid JSON: {exc}"),
                    ErrorCode.MALFORMED_REQUEST) from exc
    if not isinstance(obj, dict):
        raise coded(ValueError("frame payload must be a JSON object"),
                    ErrorCode.MALFORMED_REQUEST)
    return obj


async def read_frame(
    reader: asyncio.StreamReader, max_frame_bytes: int = MAX_FRAME_BYTES
) -> dict[str, Any] | None:
    """Read one frame from an asyncio stream.

    Returns ``None`` on a clean disconnect — EOF at a frame boundary *or*
    mid-frame (a peer dying between header and payload must read as a
    close, never block the handler).  An oversized length header raises a
    coded ``MALFORMED_REQUEST`` before any payload allocation.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise coded(
            ValueError(f"frame of {length} bytes exceeds the {max_frame_bytes} cap"),
            ErrorCode.MALFORMED_REQUEST,
        )
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None
    return decode_payload(payload)


def recv_frame(
    sock: socket.socket, max_frame_bytes: int = MAX_FRAME_BYTES
) -> dict[str, Any] | None:
    """Blocking counterpart of :func:`read_frame` (the client's read path)."""

    def read_exactly(n: int) -> bytes | None:
        chunks = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    header = read_exactly(_HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise coded(
            ValueError(f"frame of {length} bytes exceeds the {max_frame_bytes} cap"),
            ErrorCode.MALFORMED_REQUEST,
        )
    payload = read_exactly(length)
    if payload is None:
        return None
    return decode_payload(payload)


# ---------------------------------------------------------------------- #
# request / response shapes
# ---------------------------------------------------------------------- #
def request_frame(req_id: int, name: str, row: np.ndarray, kind: str) -> bytes:
    """Encode one request (1-D ``row`` or 2-D block) as a wire frame."""
    arr = np.asarray(row, dtype=float)
    body: dict[str, Any] = {"id": int(req_id), "name": name, "kind": kind}
    if arr.ndim == 1:
        body["row"] = arr.tolist()
    else:
        body["rows"] = arr.tolist()
    return encode_frame(body)


def parse_request(msg: dict[str, Any]) -> tuple[int, str, str, np.ndarray, bool]:
    """Validate one request object → ``(id, name, kind, array, single)``.

    Every rejection is a coded ``MALFORMED_REQUEST`` so the caller can
    answer with a structured wire error instead of dropping the frame.
    """
    req_id = msg.get("id")
    if not isinstance(req_id, int) or isinstance(req_id, bool):
        raise coded(ValueError("request 'id' must be an integer"),
                    ErrorCode.MALFORMED_REQUEST)
    name = msg.get("name")
    if not isinstance(name, str) or not name:
        raise coded(ValueError("request 'name' must be a non-empty string"),
                    ErrorCode.MALFORMED_REQUEST)
    kind = msg.get("kind", "predict")
    if kind not in _KINDS:
        raise coded(ValueError(f"kind must be one of {_KINDS}, got {kind!r}"),
                    ErrorCode.MALFORMED_REQUEST)
    has_row, has_rows = "row" in msg, "rows" in msg
    if has_row == has_rows:  # neither, or both
        raise coded(ValueError("request needs exactly one of 'row' or 'rows'"),
                    ErrorCode.MALFORMED_REQUEST)
    try:
        arr = np.asarray(msg["row"] if has_row else msg["rows"], dtype=float)
    except (TypeError, ValueError) as exc:
        raise coded(ValueError(f"request rows are not numeric: {exc}"),
                    ErrorCode.MALFORMED_REQUEST) from exc
    if has_row and arr.ndim != 1:
        raise coded(ValueError(f"'row' must be 1-D, got ndim={arr.ndim}"),
                    ErrorCode.MALFORMED_REQUEST)
    if has_rows and arr.ndim != 2:
        raise coded(ValueError(f"'rows' must be 2-D, got ndim={arr.ndim}"),
                    ErrorCode.MALFORMED_REQUEST)
    return req_id, name, kind, arr, has_row


def encode_value(kind: str, single: bool, value: Any) -> Any:
    """Ticket result → JSON shape (the request's kind/arity decides)."""
    if kind == "predict":
        return float(value) if single else np.asarray(value, dtype=float).tolist()
    mean, var = value
    if single:
        return [float(mean), float(var)]
    return [np.asarray(mean, dtype=float).tolist(),
            np.asarray(var, dtype=float).tolist()]


def decode_value(kind: str, single: bool, value: Any) -> Any:
    """JSON shape → exactly what the in-process ticket would have returned."""
    if kind == "predict":
        return float(value) if single else np.asarray(value, dtype=float)
    mean, var = value
    if single:
        return float(mean), float(var)
    return np.asarray(mean, dtype=float), np.asarray(var, dtype=float)


def ok_response(req_id: int, value: Any) -> bytes:
    return encode_frame({"id": int(req_id), "ok": True, "value": value})


def error_response(
    req_id: int | None, exc: BaseException | ErrorCode, detail: str | None = None
) -> bytes:
    """A structured failure frame carrying the coded ``to_wire`` payload."""
    return encode_frame({"id": req_id, "ok": False, "error": to_wire(exc, detail)})


def overload_error(detail: str) -> CodedError:
    """The admission-control shed error (5xx, retryable: back off, retry)."""
    return CodedError(detail, code=ErrorCode.OVERLOADED)
