"""Network front door for the serving stack.

``repro.serve.net`` puts the existing ticket API (:class:`ServingGateway`
/ :class:`ShardedServingCluster` ``submit``) behind a TCP socket:

* :mod:`~repro.serve.net.protocol` — length-prefixed JSON frames, the
  frozen coded-error payload on the wire, bit-identical float transport.
* :mod:`~repro.serve.net.server` — :class:`AsyncServeServer`, an asyncio
  acceptor bridging frames to blocking tickets without blocking the loop,
  with per-server/per-connection admission control (``OVERLOADED`` sheds).
* :mod:`~repro.serve.net.client` — :class:`ServeClient`, a blocking,
  pipelining client for tests and benches.
"""

from repro.serve.net.client import ServeClient
from repro.serve.net.protocol import (
    MAX_FRAME_BYTES,
    decode_ndarray,
    decode_payload,
    decode_value,
    encode_binary_frame,
    encode_frame,
    encode_ndarray,
    encode_value,
    error_response,
    frame_too_large,
    ok_response,
    overload_error,
    parse_request,
    read_frame,
    recv_any_frame,
    recv_frame,
    request_frame,
)
from repro.serve.net.server import AsyncServeServer

__all__ = [
    "AsyncServeServer",
    "MAX_FRAME_BYTES",
    "ServeClient",
    "decode_ndarray",
    "decode_payload",
    "decode_value",
    "encode_binary_frame",
    "encode_frame",
    "encode_ndarray",
    "encode_value",
    "error_response",
    "frame_too_large",
    "ok_response",
    "overload_error",
    "parse_request",
    "read_frame",
    "recv_any_frame",
    "recv_frame",
    "request_frame",
]
