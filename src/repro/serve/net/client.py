"""Blocking client for the serving network edge (tests, benches, demos).

:class:`ServeClient` speaks the frame protocol over one TCP connection.
The server answers strictly in request order per connection, so the
client pipelines: :meth:`send` queues any number of requests without
waiting, :meth:`recv` collects answers FIFO — which is exactly what lets
a remote stream coalesce into the same micro-batches an in-process
caller's would.  Convenience wrappers (:meth:`predict`,
:meth:`predict_dist`, :meth:`call`) do one round-trip.

A response with ``ok: false`` raises the reconstructed coded error
(:func:`repro.serve.errors.from_wire`) — the remote failure carries the
same frozen ``ErrorCode`` contract an in-process ticket would, including
``OVERLOADED`` (513, retryable) when admission control shed the request.

One client is one connection and is **not** thread-safe; open one per
thread (connections are cheap; the server's budget is global anyway).
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Any

import numpy as np

from repro.serve.errors import CodedError, ErrorCode, coded, from_wire
from repro.serve.net.protocol import (
    MAX_FRAME_BYTES,
    decode_value,
    encode_frame,
    recv_frame,
    request_frame,
)

__all__ = ["ServeClient"]

# sentinel kind for op frames in the FIFO pipeline: the response value is
# handed back raw (metrics snapshots, span dumps — not a prediction)
_OP_KIND = "_op"


class ServeClient:
    """Blocking, pipelining client for one :class:`AsyncServeServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self.max_frame_bytes = int(max_frame_bytes)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._next_id = 0
        self._sent: deque[tuple[int, str, bool]] = deque()  # (id, kind, single)
        self._closed = False

    # ------------------------------------------------------------------ #
    def send(
        self, name: str, row: np.ndarray, kind: str = "predict",
        trace_id: str | None = None,
    ) -> int:
        """Queue one request (1-D row or 2-D block); returns its id.

        Does not wait — pair with :meth:`recv`, which yields results in
        exactly this send order.  ``trace_id`` rides the frame's optional
        ``"trace"`` field; a traced server adopts it, so :meth:`trace`
        can later fetch the request's span dump under the same id."""
        if self._closed:
            raise coded(RuntimeError("ServeClient is closed"), ErrorCode.CLOSED)
        arr = np.asarray(row, dtype=float)
        req_id = self._next_id
        self._next_id += 1
        self._sock.sendall(request_frame(req_id, name, arr, kind, trace_id=trace_id))
        self._sent.append((req_id, kind, arr.ndim == 1))
        return req_id

    def send_op(self, op: str, **params: Any) -> int:
        """Queue one observability op frame (``metrics``/``trace``/
        ``slowest``); rides the same FIFO pipeline as requests, and
        :meth:`recv` hands its value back raw (no kind decoding)."""
        if self._closed:
            raise coded(RuntimeError("ServeClient is closed"), ErrorCode.CLOSED)
        req_id = self._next_id
        self._next_id += 1
        self._sock.sendall(encode_frame({"id": req_id, "op": op, **params}))
        self._sent.append((req_id, _OP_KIND, False))
        return req_id

    def recv(self, timeout: float | None = None) -> Any:
        """The next pending response, FIFO; raises its coded error.

        ``timeout`` overrides the connection default for this call only.
        A response that does not arrive in time raises a coded
        ``DEADLINE_EXCEEDED`` (never a raw ``socket.timeout``) and leaves
        the request *pending*: a whole-frame-late response can still be
        collected by a later ``recv``.  (A timeout that strikes mid-frame
        desynchronizes the stream — close the client then.)
        """
        if not self._sent:
            raise RuntimeError("recv() with no request pending")
        req_id, kind, single = self._sent[0]  # pop only once a frame lands
        restore = False
        if timeout is not None:
            default = self._sock.gettimeout()
            self._sock.settimeout(timeout)
            restore = True
        try:
            msg = recv_frame(self._sock, self.max_frame_bytes)
        except socket.timeout as exc:
            budget = timeout if timeout is not None else self._sock.gettimeout()
            raise CodedError(
                f"no response to request {req_id} within {budget}s",
                code=ErrorCode.DEADLINE_EXCEEDED,
            ) from exc
        finally:
            if restore:
                self._sock.settimeout(default)
        self._sent.popleft()
        if msg is None:
            raise coded(ConnectionError("server closed the connection"),
                        ErrorCode.SHARD_CRASHED)
        got_id = msg.get("id")
        if got_id is not None and got_id != req_id:
            raise coded(
                RuntimeError(f"response id {got_id} != expected {req_id} (FIFO break)"),
                ErrorCode.INTERNAL,
            )
        if not msg.get("ok"):
            raise from_wire(msg.get("error") or {})
        if kind == _OP_KIND:
            return msg["value"]  # op answers are already their final shape
        return decode_value(kind, single, msg["value"])

    def drain(self) -> list[Any]:
        """``recv`` everything outstanding; errors surface as the raised
        exception of the first failing response."""
        return [self.recv() for _ in range(len(self._sent))]

    @property
    def outstanding(self) -> int:
        return len(self._sent)

    # ------------------------------------------------------------------ #
    def call(self, name: str, row: np.ndarray, kind: str = "predict") -> Any:
        """One synchronous round-trip (requires an empty pipeline)."""
        if self._sent:
            raise RuntimeError("call() with responses outstanding; use send/recv")
        self.send(name, row, kind=kind)
        return self.recv()

    def predict(self, name: str, row: np.ndarray) -> Any:
        return self.call(name, row, kind="predict")

    def predict_dist(self, name: str, row: np.ndarray) -> Any:
        return self.call(name, row, kind="predict_dist")

    # ------------------------------------------------------------------ #
    # observability ops (one round-trip each; empty pipeline required)
    # ------------------------------------------------------------------ #
    def _call_op(self, op: str, **params: Any) -> Any:
        if self._sent:
            raise RuntimeError(f"{op}() with responses outstanding; use send/recv")
        self.send_op(op, **params)
        return self.recv()

    def metrics(self, fmt: str = "json") -> Any:
        """The server's unified metrics snapshot — ``"json"`` for the
        structured families dict, ``"prom"`` for Prometheus text."""
        return self._call_op("metrics", fmt=fmt)

    def trace(self, trace_id: str | None = None) -> dict[str, Any]:
        """Span dump for one trace id (or everything recorded), merged
        across the edge, the backend, and — on a cluster — every worker."""
        params = {} if trace_id is None else {"trace": trace_id}
        return self._call_op("trace", **params)

    def slowest(self, k: int = 10) -> list[dict[str, Any]]:
        """The top-``k`` recorded spans by duration (tail forensics)."""
        return self._call_op("slowest", k=k)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
