"""Adaptive micro-batch tuning: steer flush limits toward a latency target.

Fixed ``max_batch``/``max_delay`` values are only right for one traffic
shape.  Under sparse traffic a large ``max_delay`` is pure added tail
latency; under a burst a small ``max_batch`` wastes the arena's
batch-of-batches throughput.  :class:`AdaptiveBatchTuner` closes the loop
using the counters every :class:`~repro.serve.batcher.MicroBatcher`
already keeps: per window it computes the mean completed-request latency
per name and applies an AIMD-style update —

* **over target** → multiplicative backoff of both limits (latency is
  hurting *now*, retreat fast),
* **at/under target** → gentle growth (additive rows, multiplicative
  delay) to re-harvest batching efficiency,

with both limits clamped to configured bounds.  All writes go through
:meth:`MicroBatcher.set_limits` — the only legal way to retune a live
batcher — and the whole tuner is deterministic given an injected clock:
``step()`` does no sleeping and reads no wall time of its own, so tests
drive it with a fake clock and synthetic counters.

Run one tuner per gateway (equivalently: per batcher).  Two tuners
steering the same batcher would fight through read-modify-write updates.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.serve.batcher import MicroBatcher

__all__ = ["AdaptiveBatchTuner", "TuningDecision"]


@dataclass(frozen=True)
class TuningDecision:
    """One per-name adjustment record (the tuner's audit trail)."""

    name: str
    at: float               # clock time of the step
    window_completed: int   # requests completing in the window
    window_latency_ms: float
    max_batch: int          # limits after the adjustment
    max_delay: float
    direction: str          # "backoff" | "grow" | "hold"


class AdaptiveBatchTuner:
    """AIMD controller for per-name micro-batch limits.

    Parameters
    ----------
    source:
        A :class:`~repro.serve.router.ServingGateway` (its lazily-growing
        ``batchers()`` view is re-read every step, so names that appear
        after the tuner starts are picked up automatically), a mapping
        ``{name: MicroBatcher}``, or a zero-arg callable returning one.
    target_latency_ms:
        Mean completed-request latency to steer each name toward.
    interval_s:
        Minimum clock time between :meth:`maybe_step` adjustments (and the
        cadence of the optional background thread).
    clock:
        Monotonic time source; inject a fake for deterministic tests.
    backoff, grow, batch_step:
        Multiplicative decrease factor, delay growth factor, and additive
        batch increment of the AIMD update.
    batch_bounds, delay_bounds:
        Inclusive clamps for ``max_batch`` (rows) and ``max_delay``
        (seconds).
    history_limit:
        Most recent :class:`TuningDecision` records retained in
        ``history`` (the tuner may run for the process lifetime).
    """

    def __init__(
        self,
        source: Any,
        target_latency_ms: float = 5.0,
        interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        backoff: float = 0.5,
        grow: float = 1.25,
        batch_step: int = 16,
        batch_bounds: tuple[int, int] = (8, 4096),
        delay_bounds: tuple[float, float] = (2e-4, 0.05),
        history_limit: int = 1024,
    ):
        if target_latency_ms <= 0:
            raise ValueError("target_latency_ms must be > 0")
        if not (0.0 < backoff < 1.0):
            raise ValueError("backoff must be in (0, 1)")
        if grow <= 1.0:
            raise ValueError("grow must be > 1")
        if batch_bounds[0] < 1 or batch_bounds[0] > batch_bounds[1]:
            raise ValueError("batch_bounds must satisfy 1 <= lo <= hi")
        if delay_bounds[0] <= 0 or delay_bounds[0] > delay_bounds[1]:
            raise ValueError("delay_bounds must satisfy 0 < lo <= hi")
        if hasattr(source, "batchers"):
            self._batchers: Callable[[], Mapping[str, MicroBatcher]] = source.batchers
        elif callable(source):
            self._batchers = source
        else:
            self._batchers = lambda: source
        self.target_latency_ms = float(target_latency_ms)
        self.interval_s = float(interval_s)
        self._clock = clock
        self.backoff = float(backoff)
        self.grow = float(grow)
        self.batch_step = int(batch_step)
        self.batch_bounds = (int(batch_bounds[0]), int(batch_bounds[1]))
        self.delay_bounds = (float(delay_bounds[0]), float(delay_bounds[1]))

        self._seen: dict[str, dict[str, float]] = {}  # last counters per name
        self._last_step: float | None = None
        # bounded: a daemon-thread tuner steps forever, and an unbounded
        # audit trail would be a slow leak in a long-lived serving process
        self.history: deque[TuningDecision] = deque(maxlen=history_limit)
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #
    def limits(self) -> dict[str, tuple[int, float]]:
        """Current ``(max_batch, max_delay)`` per known name."""
        return {n: (b.max_batch, b.max_delay) for n, b in self._batchers().items()}

    def step(self) -> list[TuningDecision]:
        """One control pass: read every batcher's window, adjust its limits.

        The first observation of a name only snapshots its counters (no
        window to judge yet); a window with zero completed requests holds
        — there is no latency evidence to act on.
        """
        now = self._clock()
        decisions: list[TuningDecision] = []
        for name, batcher in self._batchers().items():
            cur = batcher.counters()
            prev = self._seen.get(name)
            self._seen[name] = cur
            if prev is None:
                continue
            completed = int(cur["completed"] - prev["completed"])
            if completed <= 0:
                decisions.append(TuningDecision(
                    name, now, 0, 0.0, batcher.max_batch, batcher.max_delay, "hold",
                ))
                continue
            latency_ms = 1e3 * (cur["total_latency_s"] - prev["total_latency_s"]) / completed
            if latency_ms > self.target_latency_ms:
                direction = "backoff"
                new_batch = int(batcher.max_batch * self.backoff)
                new_delay = batcher.max_delay * self.backoff
            else:
                direction = "grow"
                new_batch = batcher.max_batch + self.batch_step
                new_delay = batcher.max_delay * self.grow
            new_batch = min(max(new_batch, self.batch_bounds[0]), self.batch_bounds[1])
            new_delay = min(max(new_delay, self.delay_bounds[0]), self.delay_bounds[1])
            if (new_batch, new_delay) != (batcher.max_batch, batcher.max_delay):
                batcher.set_limits(max_batch=new_batch, max_delay=new_delay)
            decisions.append(TuningDecision(
                name, now, completed, latency_ms, new_batch, new_delay, direction,
            ))
        self._last_step = now
        self.history.extend(decisions)
        return decisions

    def maybe_step(self) -> list[TuningDecision] | None:
        """Run :meth:`step` iff ``interval_s`` elapsed since the last one."""
        if self._last_step is not None and self._clock() - self._last_step < self.interval_s:
            return None
        return self.step()

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn a daemon thread stepping every ``interval_s`` seconds
        (the production mode; tests call :meth:`step` directly)."""
        if self._thread is not None:
            raise RuntimeError("tuner already started")
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(self.interval_s):
                self.step()

        self._thread = threading.Thread(target=run, name="adaptive-batch-tuner", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "AdaptiveBatchTuner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
