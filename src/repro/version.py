"""Package version, kept separate so metadata tools can read it cheaply."""

__version__ = "1.0.0"
