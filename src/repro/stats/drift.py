"""Concept-drift detection for deployed I/O models.

The generalization failures of §VIII (and of Madireddy et al.'s adaptive
concept-drift study, ref [5]) begin as *distribution shift*: the deployed
feature stream slides away from the training corpus.  This module scores
that shift without labels:

* :func:`population_stability_index` — the banking-world PSI over a fixed
  quantile binning of the training column;
* :func:`ks_statistic` — two-sample Kolmogorov-Smirnov distance;
* :class:`DriftMonitor` — per-feature PSI over a reference matrix, with a
  conventional alert threshold (PSI > 0.25 ⇒ "investigate").

The drift-monitoring example pairs this with the EU-based OoD tagging:
PSI fires on *population-level* shift, epistemic uncertainty on
*individual* novel jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["population_stability_index", "ks_statistic", "DriftMonitor", "DriftReport"]


def population_stability_index(
    reference: np.ndarray, current: np.ndarray, n_bins: int = 10
) -> float:
    """PSI between a reference and a current 1-D sample.

    Bins are deciles of the *reference*; both histograms are floored at a
    small epsilon so empty bins do not produce infinities.  Rule of thumb:
    < 0.10 stable, 0.10–0.25 drifting, > 0.25 investigate.
    """
    reference = np.asarray(reference, dtype=float)
    current = np.asarray(current, dtype=float)
    if reference.size < n_bins or current.size == 0:
        raise ValueError("need at least n_bins reference points and non-empty current")
    qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    edges = np.unique(np.quantile(reference, qs))
    ref_hist = np.bincount(np.searchsorted(edges, reference), minlength=edges.size + 1)
    cur_hist = np.bincount(np.searchsorted(edges, current), minlength=edges.size + 1)
    p = np.maximum(ref_hist / reference.size, 1e-6)
    q = np.maximum(cur_hist / current.size, 1e-6)
    return float(np.sum((q - p) * np.log(q / p)))


def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample KS distance (sup of |ECDF difference|)."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


@dataclass
class DriftReport:
    """Per-feature drift scores against the reference matrix."""

    psi: np.ndarray
    names: list[str]
    threshold: float

    @property
    def drifted(self) -> np.ndarray:
        return self.psi > self.threshold

    @property
    def n_drifted(self) -> int:
        return int(self.drifted.sum())

    def worst(self, k: int = 5) -> list[tuple[str, float]]:
        order = np.argsort(self.psi)[::-1][:k]
        return [(self.names[i], float(self.psi[i])) for i in order]


class DriftMonitor:
    """Column-wise PSI monitor over a frozen reference matrix."""

    def __init__(self, threshold: float = 0.25, n_bins: int = 10):
        self.threshold = float(threshold)
        self.n_bins = int(n_bins)
        self._reference: np.ndarray | None = None
        self._names: list[str] | None = None

    def fit(self, X: np.ndarray, names: list[str] | None = None) -> "DriftMonitor":
        X = np.asarray(X, dtype=float)
        self._reference = X
        self._names = list(names) if names is not None else [f"f{i}" for i in range(X.shape[1])]
        if len(self._names) != X.shape[1]:
            raise ValueError("one name per column required")
        return self

    def score(self, X: np.ndarray) -> DriftReport:
        if self._reference is None:
            raise RuntimeError("score called before fit")
        X = np.asarray(X, dtype=float)
        if X.shape[1] != self._reference.shape[1]:
            raise ValueError("column count differs from reference")
        psi = np.array(
            [
                population_stability_index(self._reference[:, j], X[:, j], self.n_bins)
                for j in range(X.shape[1])
            ]
        )
        return DriftReport(psi=psi, names=list(self._names), threshold=self.threshold)
