"""Concept-drift detection for deployed I/O models.

The generalization failures of §VIII (and of Madireddy et al.'s adaptive
concept-drift study, ref [5]) begin as *distribution shift*: the deployed
feature stream slides away from the training corpus.  This module scores
that shift without labels:

* :func:`population_stability_index` — the banking-world PSI over a fixed
  quantile binning of the training column;
* :func:`ks_statistic` — two-sample Kolmogorov-Smirnov distance;
* :class:`DriftMonitor` — per-feature PSI over a reference matrix, with a
  conventional alert threshold (PSI > 0.25 ⇒ "investigate");
* :class:`ReferenceBinning` — the streaming/windowed form: per-column
  reference bins and probabilities precomputed **once**, so an online
  monitor (:mod:`repro.serve.monitor`) can re-score a sliding window of
  live traffic per flush without re-quantiling the training corpus.

The drift-monitoring example pairs this with the EU-based OoD tagging:
PSI fires on *population-level* shift, epistemic uncertainty on
*individual* novel jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DriftMonitor",
    "DriftReport",
    "ReferenceBinning",
    "ks_statistic",
    "population_stability_index",
    "reference_bin_edges",
]


def reference_bin_edges(reference: np.ndarray, n_bins: int = 10) -> np.ndarray:
    """Quantile bin edges of a reference column, safe for constant columns.

    Decile edges of a constant (or near-constant) column all coincide, so
    the candidate edges collapse — ``np.unique`` can leave a *single*
    edge.  Binning against one exact value would throw any current value
    that differs from the constant by float noise (a re-serialized
    telemetry counter, a log-transform computed in a different order)
    into the epsilon-floored "other" bin and emit PSI ≈ 2·ln(1e6) ≈ 27.6
    — maximal drift from a representation detail.

    Documented fallback: when the edges collapse to a single value ``c``,
    the binning degenerates to three bins — *below*, *equal to the
    constant*, *above* — where "equal" means within an absolute+relative
    tolerance band ``[c - tol, c + tol]`` (``tol = 1e-9 · max(1, |c|)``).
    Only mass that genuinely leaves the constant counts as moved.
    """
    reference = np.asarray(reference, dtype=float)
    if reference.size < n_bins:
        raise ValueError("need at least n_bins reference points")
    qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    edges = np.unique(np.quantile(reference, qs))
    if edges.size == 1:
        c = float(edges[0])
        tol = 1e-9 * max(1.0, abs(c))
        edges = np.array([c - tol, c + tol])
    return edges


def _psi_from_counts(
    ref_counts: np.ndarray, cur_counts: np.ndarray, n_ref: int, n_cur: int
) -> float:
    """PSI from per-bin counts with the conventional epsilon floor.

    Each term ``(q - p) · ln(q / p)`` is non-negative (the factors share
    sign), so the statistic itself is ≥ 0 and exactly 0 when the two
    histograms have identical proportions.
    """
    p = np.maximum(ref_counts / n_ref, 1e-6)
    q = np.maximum(cur_counts / n_cur, 1e-6)
    return float(np.sum((q - p) * np.log(q / p)))


def population_stability_index(
    reference: np.ndarray, current: np.ndarray, n_bins: int = 10
) -> float:
    """PSI between a reference and a current 1-D sample.

    Bins are deciles of the *reference* (collapsed to unique edges, with
    the constant-column fallback of :func:`reference_bin_edges`); both
    histograms are floored at a small epsilon so empty bins do not
    produce infinities.  Rule of thumb: < 0.10 stable, 0.10–0.25
    drifting, > 0.25 investigate.
    """
    reference = np.asarray(reference, dtype=float)
    current = np.asarray(current, dtype=float)
    if reference.size < n_bins or current.size == 0:
        raise ValueError("need at least n_bins reference points and non-empty current")
    edges = reference_bin_edges(reference, n_bins)
    ref_hist = np.bincount(np.searchsorted(edges, reference), minlength=edges.size + 1)
    cur_hist = np.bincount(np.searchsorted(edges, current), minlength=edges.size + 1)
    return _psi_from_counts(ref_hist, cur_hist, reference.size, current.size)


def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample KS distance (sup of |ECDF difference|)."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


class ReferenceBinning:
    """Per-column reference bins precomputed for streaming re-scoring.

    The offline path (:class:`DriftMonitor`) re-quantiles the whole
    reference matrix on every ``score`` call — fine for a monthly report,
    wasteful for an online monitor evaluating a sliding window every few
    hundred requests.  This class does the reference work once per fit:
    quantile edges (constant-column-safe, see :func:`reference_bin_edges`)
    and reference bin counts per column, plus sorted reference columns for
    the windowed KS distance.  ``psi``/``ks`` then cost one
    ``searchsorted`` pass over the current window per column.

    Numerically identical to calling :func:`population_stability_index` /
    :func:`ks_statistic` column by column — the offline and online paths
    must never disagree about what counts as drift.
    """

    def __init__(
        self,
        reference: np.ndarray,
        n_bins: int = 10,
        names: list[str] | None = None,
    ):
        reference = np.asarray(reference, dtype=float)
        if reference.ndim != 2:
            raise ValueError(f"reference must be 2-D, got ndim={reference.ndim}")
        if reference.shape[0] < n_bins:
            raise ValueError("need at least n_bins reference rows")
        self.n_bins = int(n_bins)
        self.n_features = int(reference.shape[1])
        self.n_reference = int(reference.shape[0])
        self.names = (
            list(names) if names is not None else [f"f{i}" for i in range(self.n_features)]
        )
        if len(self.names) != self.n_features:
            raise ValueError("one name per column required")
        edges = [
            reference_bin_edges(reference[:, j], self.n_bins)
            for j in range(self.n_features)
        ]
        # the online monitor re-scores a window on the serving box every
        # few hundred requests, so the per-window pass is vectorized over
        # *all* columns at once: edges pad to a (d, max_edges) matrix with
        # +inf (no value exceeds the padding, so padded bins count zero on
        # both sides and contribute exactly 0.0 to the PSI sum) and one
        # broadcasted comparison bins the whole window
        self._n_edges = max(e.size for e in edges)
        self._edges_padded = np.full((self.n_features, self._n_edges), np.inf)
        for j, e in enumerate(edges):
            self._edges_padded[j, :e.size] = e
        self._stride = self._n_edges + 1  # bins per column incl. overflow
        self._offsets = np.arange(self.n_features) * self._stride
        # true bins per column: the per-column PSI sums run over exactly
        # these lengths so the pairwise float summation groups like the
        # scalar population_stability_index (bit-equal, not just close)
        self._bins_per_col = [e.size + 1 for e in edges]
        self._ref_counts = self._bin_counts(reference)
        # sorted copy per column for the windowed KS statistic
        self._sorted_ref = np.sort(reference, axis=0)

    def _bin_counts(self, X: np.ndarray) -> np.ndarray:
        """(d, stride) per-column bin counts of a 2-D sample.

        ``searchsorted(edges, v, side="left")`` equals the count of edges
        strictly below ``v`` (edges are unique), so one broadcasted
        ``v > edge`` sum reproduces it exactly for every column at once.
        """
        idx = (X[:, :, None] > self._edges_padded[None, :, :]).sum(axis=2)
        flat = (idx + self._offsets[None, :]).ravel()
        return np.bincount(flat, minlength=self.n_features * self._stride).reshape(
            self.n_features, self._stride
        )

    def psi(self, current: np.ndarray) -> np.ndarray:
        """Per-column PSI of a current sample against the reference.

        Numerically identical to :func:`population_stability_index` per
        column (padding bins are empty on both sides, flooring to equal
        epsilons whose term is exactly 0.0)."""
        current = self._check(current)
        p = np.maximum(self._ref_counts / self.n_reference, 1e-6)
        q = np.maximum(self._bin_counts(current) / current.shape[0], 1e-6)
        terms = (q - p) * np.log(q / p)
        return np.array([
            terms[j, :n].sum() for j, n in enumerate(self._bins_per_col)
        ])

    def ks(self, current: np.ndarray) -> np.ndarray:
        """Per-column two-sample KS distance against the reference."""
        current = self._check(current)
        out = np.empty(self.n_features)
        for j in range(self.n_features):
            a = self._sorted_ref[:, j]
            b = np.sort(current[:, j])
            grid = np.concatenate([a, b])
            cdf_a = np.searchsorted(a, grid, side="right") / a.size
            cdf_b = np.searchsorted(b, grid, side="right") / b.size
            out[j] = np.abs(cdf_a - cdf_b).max()
        return out

    def _check(self, current: np.ndarray) -> np.ndarray:
        current = np.asarray(current, dtype=float)
        if current.ndim != 2 or current.shape[1] != self.n_features:
            raise ValueError(
                f"current must be 2-D with {self.n_features} columns, "
                f"got shape {current.shape}"
            )
        if current.shape[0] == 0:
            raise ValueError("current sample must be non-empty")
        return current


@dataclass
class DriftReport:
    """Per-feature drift scores against the reference matrix."""

    psi: np.ndarray
    names: list[str]
    threshold: float

    @property
    def drifted(self) -> np.ndarray:
        return self.psi > self.threshold

    @property
    def n_drifted(self) -> int:
        return int(self.drifted.sum())

    def worst(self, k: int = 5) -> list[tuple[str, float]]:
        order = np.argsort(self.psi)[::-1][:k]
        return [(self.names[i], float(self.psi[i])) for i in order]


class DriftMonitor:
    """Column-wise PSI monitor over a frozen reference matrix."""

    def __init__(self, threshold: float = 0.25, n_bins: int = 10):
        self.threshold = float(threshold)
        self.n_bins = int(n_bins)
        self._reference: np.ndarray | None = None
        self._names: list[str] | None = None

    def fit(self, X: np.ndarray, names: list[str] | None = None) -> "DriftMonitor":
        X = np.asarray(X, dtype=float)
        self._reference = X
        self._names = list(names) if names is not None else [f"f{i}" for i in range(X.shape[1])]
        if len(self._names) != X.shape[1]:
            raise ValueError("one name per column required")
        return self

    def score(self, X: np.ndarray) -> DriftReport:
        if self._reference is None:
            raise RuntimeError("score called before fit")
        X = np.asarray(X, dtype=float)
        if X.shape[1] != self._reference.shape[1]:
            raise ValueError("column count differs from reference")
        psi = np.array(
            [
                population_stability_index(self._reference[:, j], X[:, j], self.n_bins)
                for j in range(X.shape[1])
            ]
        )
        return DriftReport(psi=psi, names=list(self._names), threshold=self.threshold)
