"""Percentile bootstrap confidence intervals.

The paper reports point estimates (median absolute error, noise bands);
because our substrate is a finite simulation, every reproduced number
carries sampling error.  These helpers attach percentile-bootstrap CIs so
EXPERIMENTS.md can state "10.3 % [9.8, 10.9]" instead of a bare number —
and so the calibration tests can assert with known statistical power.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.rng import generator_from

__all__ = ["bootstrap_ci", "bootstrap_median_ci"]


def bootstrap_ci(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    n_boot: int = 1000,
    coverage: float = 0.95,
    random_state: int = 0,
) -> tuple[float, float, float]:
    """(point, lo, hi) percentile bootstrap for an arbitrary statistic.

    ``statistic`` maps a 1-D resample to a scalar.  The point estimate is
    the statistic of the original sample.
    """
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        raise ValueError("need at least 2 values to bootstrap")
    if not 0.0 < coverage < 1.0:
        raise ValueError("coverage must be in (0, 1)")
    rng = generator_from(random_state)
    point = float(statistic(values))
    n = values.size
    stats = np.empty(n_boot)
    for b in range(n_boot):
        stats[b] = statistic(values[rng.integers(0, n, n)])
    alpha = (1.0 - coverage) / 2.0
    lo, hi = np.quantile(stats, [alpha, 1.0 - alpha])
    return point, float(lo), float(hi)


def bootstrap_median_ci(
    values: np.ndarray,
    n_boot: int = 1000,
    coverage: float = 0.95,
    random_state: int = 0,
) -> tuple[float, float, float]:
    """(median, lo, hi) — vectorized fast path for the common case."""
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        raise ValueError("need at least 2 values to bootstrap")
    rng = generator_from(random_state)
    n = values.size
    idx = rng.integers(0, n, (n_boot, n))
    medians = np.median(values[idx], axis=1)
    alpha = (1.0 - coverage) / 2.0
    lo, hi = np.quantile(medians, [alpha, 1.0 - alpha])
    return float(np.median(values)), float(lo), float(hi)
