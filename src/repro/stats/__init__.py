"""Statistical utilities shared by litmus tests, benches and examples.

* :mod:`repro.stats.bootstrap` — percentile bootstrap confidence intervals
  for the medians/bands the paper reports (every headline number in
  EXPERIMENTS.md carries a resampling CI, which the paper itself omits)
* :mod:`repro.stats.weighted`  — weighted quantiles for duplicate-pair
  statistics, where large sets would otherwise dominate (§IX weighting)
* :mod:`repro.stats.drift`     — distribution-shift scores (PSI, KS) for
  deployment-time concept-drift monitoring (the ref [5] problem)
"""

from repro.stats.bootstrap import bootstrap_ci, bootstrap_median_ci
from repro.stats.drift import (
    DriftMonitor,
    ReferenceBinning,
    ks_statistic,
    population_stability_index,
    reference_bin_edges,
)
from repro.stats.weighted import weighted_median, weighted_quantile

__all__ = [
    "bootstrap_ci",
    "bootstrap_median_ci",
    "weighted_quantile",
    "weighted_median",
    "population_stability_index",
    "ks_statistic",
    "DriftMonitor",
    "ReferenceBinning",
    "reference_bin_edges",
]
