"""Weighted quantiles (duplicate-pair statistics, §IX).

A duplicate set of size n contributes n·(n−1)/2 pairs, so unweighted pair
statistics are dominated by a handful of huge sets (the periodic IOR-style
benchmark alone would swamp everything).  The paper notes its Fig. 1c/6
distributions are "weighted so that large duplicate sets are not
overrepresented" — these are the estimators that implement that weighting.
"""

from __future__ import annotations

import numpy as np

__all__ = ["weighted_quantile", "weighted_median"]


def weighted_quantile(
    values: np.ndarray, weights: np.ndarray, q: float | np.ndarray
) -> float | np.ndarray:
    """Quantile(s) of a weighted sample (interpolated, C=1/2 convention).

    Weights must be non-negative with a positive sum.  Matches the
    unweighted ``np.quantile`` (linear interpolation) when all weights are
    equal and n is large.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape:
        raise ValueError("values and weights must have the same shape")
    if values.size == 0:
        raise ValueError("empty sample")
    if np.any(weights < 0.0):
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0.0:
        raise ValueError("weights must not all be zero")

    order = np.argsort(values, kind="stable")
    v = values[order]
    w = weights[order]
    # mid-point cumulative positions (Hazen / C=1/2)
    cum = np.cumsum(w) - 0.5 * w
    positions = cum / total
    out = np.interp(np.asarray(q, dtype=float), positions, v)
    return float(out) if np.ndim(q) == 0 else out


def weighted_median(values: np.ndarray, weights: np.ndarray) -> float:
    """Weighted 50th percentile."""
    return float(weighted_quantile(values, weights, 0.5))
