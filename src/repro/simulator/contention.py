"""ζl(t, j): resource contention between concurrent jobs.

The local system impact has two parts (paper §IX):

* a *systematic* part driven by the aggregate I/O pressure of the jobs that
  overlap job ``j`` in time — reconstructed exactly with an event sweep over
  the job timeline (O(n log n)), and
* an *idiosyncratic* part from placement: two identical jobs submitted at
  the same instant land on different nodes/OSTs and see different neighbour
  traffic.  This part is unobservable in any log and is what makes the
  Δt = 0 duplicate distribution wider than pure measurement noise.

The :class:`LoadTimeline` is also consumed by :mod:`repro.telemetry.lmt` so
the LMT features and the contention term describe the *same* traffic.
"""

from __future__ import annotations

import numpy as np

from repro.config import PlatformConfig
from repro.rng import generator_from

__all__ = ["LoadTimeline", "BackgroundLoad", "contention_dex"]


class LoadTimeline:
    """Piecewise-constant aggregate load reconstructed from job intervals.

    Load is expressed as a fraction of platform peak bandwidth; values above
    1 mean the storage system is oversubscribed.
    """

    def __init__(self, starts: np.ndarray, ends: np.ndarray, demands: np.ndarray):
        starts = np.asarray(starts, dtype=float)
        ends = np.asarray(ends, dtype=float)
        demands = np.asarray(demands, dtype=float)
        if np.any(ends < starts):
            raise ValueError("job interval with end < start")
        events = np.concatenate([starts, ends])
        deltas = np.concatenate([demands, -demands])
        order = np.argsort(events, kind="stable")
        self._t = events[order]
        load = np.cumsum(deltas[order])
        # guard against tiny negative float residue at the tail
        self._load = np.maximum(load, 0.0)
        # prefix integral of load for O(1) window averages:
        # I[k] = ∫_{t0}^{t_k} L dt, with L constant on [t_k, t_{k+1})
        seg = np.diff(self._t)
        self._integral = np.concatenate([[0.0], np.cumsum(self._load[:-1] * seg)])

    def load_at(self, t: np.ndarray) -> np.ndarray:
        """Instantaneous load (fraction of peak) at times ``t``."""
        t = np.asarray(t, dtype=float)
        idx = np.searchsorted(self._t, t, side="right") - 1
        out = np.where(idx >= 0, self._load[np.clip(idx, 0, self._load.size - 1)], 0.0)
        return np.where(idx >= self._load.size, 0.0, out)

    def _integral_at(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        idx = np.clip(np.searchsorted(self._t, t, side="right") - 1, 0, self._t.size - 1)
        base = self._integral[idx]
        frac = (t - self._t[idx]) * self._load[idx]
        below = t < self._t[0]
        return np.where(below, 0.0, base + np.maximum(frac, 0.0))

    def mean_load(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """Average load over each window ``[start, end]`` (exact, vectorized)."""
        starts = np.asarray(starts, dtype=float)
        ends = np.asarray(ends, dtype=float)
        dur = np.maximum(ends - starts, 1e-9)
        return (self._integral_at(ends) - self._integral_at(starts)) / dur


class BackgroundLoad:
    """Ambient storage traffic from jobs *outside* the dataset.

    The paper's datasets keep only jobs moving more than 1 GiB; the storage
    system nevertheless serves everything else (small jobs, interactive use,
    purges).  We model that ambient pressure as a diurnal + weekly cycle
    plus an OU burst process, realized once per platform on an hourly grid.
    Without it, contention statistics would depend on how many dataset jobs
    we happen to simulate — with it they are scale-invariant.
    """

    def __init__(self, span: float, rng, mean: float = 0.42, diurnal: float = 0.14,
                 weekly: float = 0.06, burst_sigma: float = 0.16, burst_tau_hours: float = 9.0):
        gen = generator_from(rng)
        self.mean = float(mean)
        self.diurnal = float(diurnal)
        self.weekly = float(weekly)
        dt = 3600.0
        n = max(2, int(span / dt) + 2)
        alpha = np.exp(-1.0 / burst_tau_hours)
        innov = gen.normal(0.0, burst_sigma * np.sqrt(1.0 - alpha**2), n)
        ou = np.empty(n)
        ou[0] = gen.normal(0.0, burst_sigma)
        for i in range(1, n):
            ou[i] = alpha * ou[i - 1] + innov[i]
        self._grid_t = np.arange(n) * dt
        self._grid_v = ou
        self._phase = gen.uniform(0.0, 2.0 * np.pi, 2)

    def load_at(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        day = 2.0 * np.pi * t / 86_400.0
        week = 2.0 * np.pi * t / (7 * 86_400.0)
        cyc = self.diurnal * np.sin(day + self._phase[0]) + self.weekly * np.sin(week + self._phase[1])
        burst = np.interp(t, self._grid_t, self._grid_v)
        return np.clip(self.mean + cyc + burst, 0.0, 2.5)

    def mean_load(self, starts: np.ndarray, ends: np.ndarray, n_samples: int = 9) -> np.ndarray:
        """Window-averaged background load via fixed-count sampling."""
        starts = np.asarray(starts, dtype=float)
        ends = np.asarray(ends, dtype=float)
        fracs = np.linspace(0.0, 1.0, n_samples)
        acc = np.zeros_like(starts)
        for f in fracs:
            acc += self.load_at(starts + f * (ends - starts))
        return acc / n_samples


def contention_dex(
    platform: PlatformConfig,
    load_other: np.ndarray,
    sensitivity: np.ndarray,
    rng,
) -> tuple[np.ndarray, np.ndarray]:
    """fl in dex (<= 0) plus the placement multiplier actually drawn.

    ``slowdown = scale * sensitivity * sat(load_other) * placement`` where
    ``sat`` saturates (an oversubscribed system cannot get arbitrarily
    slower per unit of extra load) and ``placement`` is a mean-one lognormal
    capturing node/OST assignment luck.
    """
    gen = generator_from(rng)
    load_other = np.asarray(load_other, dtype=float)
    sensitivity = np.asarray(sensitivity, dtype=float)
    sat = load_other / (0.35 + load_other)
    sigma = platform.placement_sigma
    placement = np.exp(gen.normal(0.0, sigma, load_other.shape) - 0.5 * sigma**2)
    dex = -platform.contention_scale * sensitivity * sat * placement
    return np.maximum(dex, -0.6), placement
