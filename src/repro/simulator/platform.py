"""Storage-platform model: derived quantities shared by fa and telemetry.

Wraps a :class:`repro.config.PlatformConfig` with vectorized helpers —
transfer-size efficiency curves, OST fan-out of a job, and per-job aggregate
bandwidth demand — so that :mod:`repro.simulator.iomodel` and
:mod:`repro.telemetry.lmt` agree on the same hardware picture.
"""

from __future__ import annotations

import numpy as np

from repro.config import PlatformConfig

__all__ = ["Platform"]


class Platform:
    """A Lustre-like parallel filesystem attached to a compute partition."""

    def __init__(self, config: PlatformConfig):
        self.config = config

    @property
    def name(self) -> str:
        return self.config.name

    # ------------------------------------------------------------------ #
    def transfer_efficiency(self, xfer_bytes: np.ndarray) -> np.ndarray:
        """Per-process streaming efficiency as a function of transfer size.

        Classic latency/bandwidth model: a transfer of ``latency_bytes``
        reaches 50 % of the streaming ceiling.
        """
        xfer = np.asarray(xfer_bytes, dtype=float)
        return xfer / (xfer + self.config.latency_bytes)

    def osts_used(self, nprocs: np.ndarray, shared_frac: np.ndarray) -> np.ndarray:
        """Effective number of OSTs a job's I/O spreads across.

        File-per-process I/O fans out to up to ``n_ost`` targets; shared
        files are striped over ``stripe_width`` targets.
        """
        cfg = self.config
        fpp = np.minimum(np.asarray(nprocs, dtype=float), cfg.n_ost)
        shared = np.minimum(float(cfg.stripe_width), cfg.n_ost)
        sf = np.asarray(shared_frac, dtype=float)
        return sf * shared + (1.0 - sf) * fpp

    def aggregate_ceiling(self, osts: np.ndarray, read: bool) -> np.ndarray:
        """Bandwidth ceiling (MiB/s) given the OST fan-out."""
        peak = self.config.peak_read_mibps if read else self.config.peak_write_mibps
        frac = np.clip(np.asarray(osts, dtype=float) / self.config.n_ost, 0.0, 1.0)
        # fan-out helps sub-linearly: a single OST already delivers ~1.5/n_ost
        # of peak thanks to server-side caching
        return peak * np.clip(1.5 * frac / (0.5 + frac), 1.0 / self.config.n_ost, 1.0)

    def demand_fraction(self, mibps: np.ndarray, read_frac: np.ndarray) -> np.ndarray:
        """A job's data rate as a fraction of the blended platform peak."""
        cfg = self.config
        rf = np.asarray(read_frac, dtype=float)
        peak = rf * cfg.peak_read_mibps + (1.0 - rf) * cfg.peak_write_mibps
        return np.asarray(mibps, dtype=float) / peak
