"""Application catalog: latent I/O configurations per application family.

Each *family* mimics a class of production HPC codes the paper's intro and
Fig. 1b reference (IOR, HACC, QB/Qbox, pw.x, a generic shared-file Writer)
plus additional science workloads to fill out the mix.  A *variant* is a
concrete parameter draw from a family — the unit of "duplicate jobs": every
rerun of a variant shares its latent configuration exactly, so all its
observable Darshan features are identical (paper §VI.A definition).

Two *novel* families (``lammps_novel``, ``dl_ckpt_novel``) exist only for
out-of-distribution injection: they appear after the deployment cutoff and
occupy parameter regimes the training period never covers (§VIII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["AppFamily", "FAMILIES", "OOD_FAMILIES", "family_names", "family_index", "sample_variants"]

KiB = 1024.0
MiB = 1024.0**2
GiB = 1024.0**3
TiB = 1024.0**4


def _loguniform(rng: np.random.Generator, lo: float, hi: float, n: int) -> np.ndarray:
    return np.exp(rng.uniform(np.log(lo), np.log(hi), n))


def _pow2(rng: np.random.Generator, lo_exp: int, hi_exp: int, n: int) -> np.ndarray:
    return 2.0 ** rng.integers(lo_exp, hi_exp + 1, n)


def _beta(rng: np.random.Generator, a: float, b: float, n: int) -> np.ndarray:
    return rng.beta(a, b, n)


def _snap_unit(x: np.ndarray, levels: int) -> np.ndarray:
    """Quantize a [0, 1] parameter onto a ``levels``-point lattice.

    Application configs are discrete in practice (striping presets, on/off
    collective buffering, fixed rank counts...).  Snapping keeps the
    data-generating function fa on a lattice that a finite training set can
    actually cover — without it, every variant sits at a unique point of a
    10-dimensional continuum and *no* model family approaches the duplicate
    bound, contradicting §VI.B.
    """
    return np.round(np.asarray(x, dtype=float) * (levels - 1)) / (levels - 1)


def _snap_log(x: np.ndarray, per_decade: int = 4) -> np.ndarray:
    """Quantize a positive parameter onto a geometric lattice."""
    return np.power(10.0, np.round(np.log10(np.asarray(x, dtype=float)) * per_decade) / per_decade)


#: unit-interval latent parameters and their lattice resolutions
_UNIT_SNAPS = {
    "read_frac": 17,
    "shared_frac": 9,
    "seq_frac": 9,
    "aligned_frac": 9,
    "collective_frac": 5,
}
#: log-scale latent parameters snapped to 4 levels per decade
_LOG_SNAPS = ("meta_per_gib", "fsync_per_gib")

#: knobs a rerun of a base configuration may change.  Production reruns vary
#: *scale* (ranks, problem size, transfer sizing) far more often than access
#: *pattern* (sharing mode, sequentiality, alignment), which is baked into
#: the code path — so pattern knobs stay locked to the base configuration.
_MUTABLE_KEYS = ("nprocs", "read_frac", "xfer_read", "xfer_write", "meta_per_gib", "fsync_per_gib")


@dataclass(frozen=True)
class AppFamily:
    """One application class and its parameter distributions."""

    name: str
    sensitivity_base: float         # contention sensitivity multiplier (Fig. 1b spread)
    mpiio_prob: float               # probability a variant performs I/O through MPI-IO
    sampler: Callable[[np.random.Generator, int], dict[str, np.ndarray]]
    #: deviation of the family's true performance from the platform envelope
    #: model, in dex.  Zero for the trained families (the envelope *is*
    #: fitted to them); non-zero for novel codes, whose internal behaviour
    #: (async I/O, pathological locking, ...) no amount of in-distribution
    #: training data reveals — this is what makes OoD jobs carry the 3x
    #: error of §VIII rather than being benign extrapolations.
    fa_offset_dex: float = 0.0
    #: per-variant spread of that deviation (dex).  This must dominate the
    #: mean: a family-consistent offset is learnable from the handful of
    #: novel jobs that land in a training split (one "nprocs > 8k" split
    #: isolates the whole family), whereas independent per-variant draws —
    #: each variant rerun only 1-3 times — sit below any sane
    #: min_child_weight and stay unpredictable, as §VIII requires.
    fa_sigma_dex: float = 0.0

    def sample(
        self, rng: np.random.Generator, n: int, variants_per_base: float = 40.0,
        mutation_prob: float = 0.22,
    ) -> dict[str, np.ndarray]:
        """Draw ``n`` variants; adds family-level sensitivity and MPI-IO flags.

        Variants cluster around a small set of *base configurations*: real
        workloads rerun a few canonical setups with one or two knobs changed
        (the clustering the paper's prior work, Gauge [8], documents).  Each
        variant copies a base and re-draws each *scale* knob
        (``_MUTABLE_KEYS``) independently with probability
        ``mutation_prob``; access-pattern knobs stay locked to the base.
        ``total_bytes`` is always re-drawn (problem size varies run to run,
        and throughput — a rate — is invariant to it).  Without this
        manifold structure, application behaviour is not learnable at
        realistic dataset sizes and no model approaches the duplicate
        bound, contradicting §VI.B.
        """
        n_bases = max(2, int(round(n / variants_per_base)) + 1)
        bases = self.sampler(rng, n_bases)
        fresh = self.sampler(rng, n)
        assign = rng.integers(0, n_bases, n)
        params = {k: np.asarray(v)[assign].copy() for k, v in bases.items()}
        for key in _MUTABLE_KEYS:
            mutate = rng.random(n) < mutation_prob
            params[key][mutate] = np.asarray(fresh[key])[mutate]
        params["total_bytes"] = np.asarray(fresh["total_bytes"])

        for key, levels in _UNIT_SNAPS.items():
            params[key] = _snap_unit(params[key], levels)
        for key in _LOG_SNAPS:
            params[key] = _snap_log(params[key])
        jitter = np.exp(rng.normal(0.0, 0.25, n))
        params["sensitivity"] = self.sensitivity_base * jitter
        # Per-variant deviation from the envelope model (see the
        # fa_offset_dex / fa_sigma_dex field docs for why the variance must
        # dominate the family mean).
        params["fa_offset"] = self.fa_offset_dex + self.fa_sigma_dex * rng.normal(0.0, 1.0, n)
        params["uses_mpiio"] = rng.random(n) < self.mpiio_prob
        # collective I/O only makes sense through MPI-IO
        params["collective_frac"] = np.where(params["uses_mpiio"], params["collective_frac"], 0.0)
        return params


def _ior(rng: np.random.Generator, n: int) -> dict[str, np.ndarray]:
    """IOR filesystem benchmark: large aligned sequential transfers, N-1 or N-N."""
    return {
        "nprocs": _pow2(rng, 6, 10, n),
        "total_bytes": _loguniform(rng, 64 * GiB, 4 * TiB, n),
        "read_frac": rng.choice([0.0, 0.5, 1.0], n, p=[0.4, 0.4, 0.2]),
        "xfer_read": _pow2(rng, 20, 24, n),        # 1..16 MiB
        "xfer_write": _pow2(rng, 20, 24, n),
        "shared_frac": rng.choice([0.0, 1.0], n, p=[0.5, 0.5]),
        "files_per_proc": np.ones(n),
        "shared_files": np.ones(n),
        "meta_per_gib": _loguniform(rng, 0.05, 0.6, n),
        "seq_frac": np.full(n, 1.0),
        "aligned_frac": np.full(n, 1.0),
        "collective_frac": rng.choice([0.0, 1.0], n, p=[0.5, 0.5]),
        "fsync_per_gib": _loguniform(rng, 0.01, 0.2, n),
    }


def _hacc(rng: np.random.Generator, n: int) -> dict[str, np.ndarray]:
    """HACC cosmology checkpoints: huge file-per-process sequential writes."""
    return {
        "nprocs": _pow2(rng, 8, 13, n),
        "total_bytes": _loguniform(rng, 256 * GiB, 40 * TiB, n),
        "read_frac": _beta(rng, 1.2, 18.0, n),      # ~5 % reads (restart headers)
        "xfer_read": _pow2(rng, 16, 20, n),
        "xfer_write": _pow2(rng, 21, 25, n),        # 2..32 MiB
        "shared_frac": _beta(rng, 1.0, 12.0, n),
        "files_per_proc": rng.choice([1.0, 2.0], n, p=[0.7, 0.3]),
        "shared_files": np.ones(n),
        "meta_per_gib": _loguniform(rng, 0.02, 0.3, n),
        "seq_frac": rng.uniform(0.93, 1.0, n),
        "aligned_frac": rng.uniform(0.85, 1.0, n),
        "collective_frac": _beta(rng, 1.0, 6.0, n),
        "fsync_per_gib": _loguniform(rng, 0.005, 0.1, n),
    }


def _qb(rng: np.random.Generator, n: int) -> dict[str, np.ndarray]:
    """Qbox-like first-principles MD: mixed collective I/O, moderate sizes."""
    return {
        "nprocs": _pow2(rng, 7, 11, n),
        "total_bytes": _loguniform(rng, 4 * GiB, 2 * TiB, n),
        "read_frac": rng.uniform(0.15, 0.55, n),
        "xfer_read": _pow2(rng, 17, 22, n),
        "xfer_write": _pow2(rng, 17, 22, n),
        "shared_frac": rng.uniform(0.4, 1.0, n),
        "files_per_proc": np.ones(n),
        "shared_files": rng.integers(1, 5, n).astype(float),
        "meta_per_gib": _loguniform(rng, 0.3, 4.0, n),
        "seq_frac": rng.uniform(0.6, 0.95, n),
        "aligned_frac": rng.uniform(0.4, 0.9, n),
        "collective_frac": rng.uniform(0.4, 1.0, n),
        "fsync_per_gib": _loguniform(rng, 0.02, 0.5, n),
    }


def _pwx(rng: np.random.Generator, n: int) -> dict[str, np.ndarray]:
    """Quantum ESPRESSO pw.x: many small unaligned writes, metadata heavy."""
    return {
        "nprocs": _pow2(rng, 4, 9, n),
        "total_bytes": _loguniform(rng, 1 * GiB, 120 * GiB, n),
        "read_frac": rng.uniform(0.05, 0.35, n),
        "xfer_read": _pow2(rng, 12, 17, n),
        "xfer_write": _pow2(rng, 11, 16, n),        # 2..64 KiB
        "shared_frac": _beta(rng, 1.5, 4.0, n),
        "files_per_proc": rng.integers(2, 12, n).astype(float),
        "shared_files": rng.integers(1, 8, n).astype(float),
        "meta_per_gib": _loguniform(rng, 20.0, 400.0, n),
        "seq_frac": rng.uniform(0.3, 0.8, n),
        "aligned_frac": rng.uniform(0.05, 0.5, n),
        "collective_frac": _beta(rng, 1.0, 8.0, n),
        "fsync_per_gib": _loguniform(rng, 0.5, 10.0, n),
    }


def _writer(rng: np.random.Generator, n: int) -> dict[str, np.ndarray]:
    """Generic N-1 shared-file writer: the paper's most contention-sensitive app."""
    return {
        "nprocs": _pow2(rng, 6, 11, n),
        "total_bytes": _loguniform(rng, 8 * GiB, 6 * TiB, n),
        "read_frac": _beta(rng, 1.0, 30.0, n),
        "xfer_read": _pow2(rng, 16, 20, n),
        "xfer_write": _pow2(rng, 14, 20, n),
        "shared_frac": rng.uniform(0.85, 1.0, n),
        "files_per_proc": np.ones(n),
        "shared_files": np.ones(n),
        "meta_per_gib": _loguniform(rng, 0.1, 2.0, n),
        "seq_frac": rng.uniform(0.5, 1.0, n),
        "aligned_frac": rng.uniform(0.2, 0.8, n),
        "collective_frac": _beta(rng, 2.0, 5.0, n),
        "fsync_per_gib": _loguniform(rng, 0.1, 2.0, n),
    }


def _montage(rng: np.random.Generator, n: int) -> dict[str, np.ndarray]:
    """Montage-like mosaicking: read-heavy, many small files, POSIX only."""
    return {
        "nprocs": _pow2(rng, 4, 8, n),
        "total_bytes": _loguniform(rng, 1 * GiB, 200 * GiB, n),
        "read_frac": rng.uniform(0.7, 0.98, n),
        "xfer_read": _pow2(rng, 13, 18, n),
        "xfer_write": _pow2(rng, 13, 17, n),
        "shared_frac": _beta(rng, 1.0, 9.0, n),
        "files_per_proc": rng.integers(8, 120, n).astype(float),
        "shared_files": rng.integers(1, 4, n).astype(float),
        "meta_per_gib": _loguniform(rng, 40.0, 900.0, n),
        "seq_frac": rng.uniform(0.4, 0.9, n),
        "aligned_frac": rng.uniform(0.1, 0.6, n),
        "collective_frac": np.zeros(n),
        "fsync_per_gib": _loguniform(rng, 0.01, 0.3, n),
    }


def _enzo(rng: np.random.Generator, n: int) -> dict[str, np.ndarray]:
    """ENZO-like AMR: bursty checkpoints, mixed shared/unique, mid-size blocks."""
    return {
        "nprocs": _pow2(rng, 7, 12, n),
        "total_bytes": _loguniform(rng, 16 * GiB, 10 * TiB, n),
        "read_frac": rng.uniform(0.1, 0.45, n),
        "xfer_read": _pow2(rng, 16, 21, n),
        "xfer_write": _pow2(rng, 17, 22, n),
        "shared_frac": rng.uniform(0.1, 0.7, n),
        "files_per_proc": rng.integers(1, 6, n).astype(float),
        "shared_files": rng.integers(1, 10, n).astype(float),
        "meta_per_gib": _loguniform(rng, 1.0, 30.0, n),
        "seq_frac": rng.uniform(0.55, 0.95, n),
        "aligned_frac": rng.uniform(0.3, 0.9, n),
        "collective_frac": rng.uniform(0.0, 0.8, n),
        "fsync_per_gib": _loguniform(rng, 0.05, 1.0, n),
    }


def _cosmoflow(rng: np.random.Generator, n: int) -> dict[str, np.ndarray]:
    """CosmoFlow-like ML training: large sequential shared reads, POSIX."""
    return {
        "nprocs": _pow2(rng, 6, 10, n),
        "total_bytes": _loguniform(rng, 32 * GiB, 8 * TiB, n),
        "read_frac": rng.uniform(0.9, 1.0, n),
        "xfer_read": _pow2(rng, 19, 23, n),
        "xfer_write": _pow2(rng, 14, 18, n),
        "shared_frac": rng.uniform(0.5, 1.0, n),
        "files_per_proc": rng.integers(1, 3, n).astype(float),
        "shared_files": rng.integers(4, 64, n).astype(float),
        "meta_per_gib": _loguniform(rng, 0.5, 10.0, n),
        "seq_frac": rng.uniform(0.8, 1.0, n),
        "aligned_frac": rng.uniform(0.6, 1.0, n),
        "collective_frac": np.zeros(n),
        "fsync_per_gib": _loguniform(rng, 0.001, 0.05, n),
    }


def _lammps_novel(rng: np.random.Generator, n: int) -> dict[str, np.ndarray]:
    """Novel MD code (OoD): extreme scale + tiny transfers — outside training support.

    Every scale knob sits strictly beyond the in-distribution envelope
    (nprocs > 2¹³ = HACC's max; transfers below pw.x's 2¹¹ minimum;
    metadata rates above Montage's 900/GiB ceiling) so that a correctly
    functioning EU detector *can* separate these jobs — the paper's novel
    applications are qualitatively different codes, not edge draws of known
    ones.
    """
    return {
        "nprocs": _pow2(rng, 14, 16, n),             # far larger than any trained app
        "total_bytes": _loguniform(rng, 2 * GiB, 64 * GiB, n),
        "read_frac": rng.uniform(0.0, 0.15, n),
        "xfer_read": _pow2(rng, 8, 10, n),
        "xfer_write": _pow2(rng, 7, 9, n),           # 128..512 B
        "shared_frac": rng.uniform(0.9, 1.0, n),
        "files_per_proc": np.ones(n),
        "shared_files": np.ones(n),
        "meta_per_gib": _loguniform(rng, 2000.0, 20000.0, n),
        "seq_frac": rng.uniform(0.0, 0.3, n),
        "aligned_frac": rng.uniform(0.0, 0.2, n),
        "collective_frac": np.zeros(n),
        "fsync_per_gib": _loguniform(rng, 20.0, 100.0, n),
    }


def _dl_ckpt_novel(rng: np.random.Generator, n: int) -> dict[str, np.ndarray]:
    """Novel DL checkpointing service (OoD): single-process giant streaming writes.

    Volume and transfer size exceed every trained family (HACC tops out at
    40 TiB and 32 MiB writes); thousands of files from a single process is
    likewise unseen.
    """
    return {
        "nprocs": np.ones(n, dtype=float),           # in-dist minimum is 16
        "total_bytes": _loguniform(rng, 100 * TiB, 600 * TiB, n),
        "read_frac": _beta(rng, 1.0, 40.0, n),
        "xfer_read": _pow2(rng, 22, 26, n),
        "xfer_write": _pow2(rng, 27, 29, n),         # 128..512 MiB, beyond training range
        "shared_frac": np.zeros(n),
        "files_per_proc": rng.integers(5000, 20000, n).astype(float),
        "shared_files": np.ones(n),
        "meta_per_gib": _loguniform(rng, 0.001, 0.02, n),
        "seq_frac": np.full(n, 1.0),
        "aligned_frac": np.full(n, 1.0),
        "collective_frac": np.zeros(n),
        "fsync_per_gib": _loguniform(rng, 0.0005, 0.01, n),
    }


#: in-distribution families; ``sensitivity_base`` ordering reproduces the
#: per-application duplicate spread of Fig. 1b (Writer most sensitive,
#: IOR — a dedicated benchmark run on quiet systems — least).
FAMILIES: dict[str, AppFamily] = {
    "ior": AppFamily("ior", sensitivity_base=0.35, mpiio_prob=0.7, sampler=_ior),
    "hacc": AppFamily("hacc", sensitivity_base=0.75, mpiio_prob=0.5, sampler=_hacc),
    "qb": AppFamily("qb", sensitivity_base=0.90, mpiio_prob=0.9, sampler=_qb),
    "pwx": AppFamily("pwx", sensitivity_base=1.50, mpiio_prob=0.25, sampler=_pwx),
    "writer": AppFamily("writer", sensitivity_base=2.10, mpiio_prob=0.4, sampler=_writer),
    "montage": AppFamily("montage", sensitivity_base=1.00, mpiio_prob=0.0, sampler=_montage),
    "enzo": AppFamily("enzo", sensitivity_base=0.95, mpiio_prob=0.6, sampler=_enzo),
    "cosmoflow": AppFamily("cosmoflow", sensitivity_base=0.70, mpiio_prob=0.0, sampler=_cosmoflow),
}

#: novel families used only for OoD injection (§VIII)
OOD_FAMILIES: dict[str, AppFamily] = {
    "lammps_novel": AppFamily(
        "lammps_novel", sensitivity_base=1.5, mpiio_prob=0.0,
        sampler=_lammps_novel, fa_offset_dex=-0.25, fa_sigma_dex=0.55,
    ),  # pathological locking on average; every port behaves differently
    "dl_ckpt_novel": AppFamily(
        "dl_ckpt_novel", sensitivity_base=0.6, mpiio_prob=0.0,
        sampler=_dl_ckpt_novel, fa_offset_dex=+0.20, fa_sigma_dex=0.50,
    ),  # async/buffered writes on average; per-deployment tuning varies
}

_ALL = {**FAMILIES, **OOD_FAMILIES}


def family_names(include_ood: bool = True) -> list[str]:
    """Stable family ordering; OoD families come last."""
    names = list(FAMILIES)
    if include_ood:
        names += list(OOD_FAMILIES)
    return names


def family_index(name: str) -> int:
    """Integer id of a family (position in :func:`family_names`)."""
    return family_names().index(name)


def sample_variants(name: str, rng: np.random.Generator, n: int) -> dict[str, np.ndarray]:
    """Draw ``n`` variant configurations from family ``name``."""
    if n <= 0:
        return {k: np.empty(0) for k in _ALL[name].sample(rng, 1)}
    return _ALL[name].sample(rng, n)
