"""Job records in struct-of-arrays layout.

A :class:`JobTable` holds every per-job quantity as a NumPy array so the
entire pipeline (performance model, weather, contention, telemetry) stays
vectorized.  Latent application parameters are shared *exactly* between
members of a duplicate set (they are copied from the variant table), which is
what makes duplicate detection by feature hashing possible downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

__all__ = ["JobTable", "LATENT_COLUMNS"]

#: latent application-configuration columns (deterministic per variant)
LATENT_COLUMNS = (
    "nprocs",
    "total_bytes",
    "read_frac",
    "xfer_read",
    "xfer_write",
    "shared_frac",
    "files_per_proc",
    "shared_files",
    "meta_per_gib",
    "seq_frac",
    "aligned_frac",
    "collective_frac",
    "fsync_per_gib",
    "sensitivity",
    "fa_offset",
    "uses_mpiio",
)


@dataclass
class JobTable:
    """All per-job arrays for one simulated platform.

    Ground-truth component columns (``fa_dex`` … ``fn_dex``) are carried for
    *validating* the litmus tests against the generative truth; the ML
    pipeline itself never reads them.
    """

    # identity / workload structure
    family_id: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    variant_id: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    is_ood: np.ndarray = field(default_factory=lambda: np.empty(0, np.bool_))
    # latent application configuration (see LATENT_COLUMNS)
    nprocs: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    total_bytes: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    read_frac: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    xfer_read: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    xfer_write: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    shared_frac: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    files_per_proc: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    shared_files: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    meta_per_gib: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    seq_frac: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    aligned_frac: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    collective_frac: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    fsync_per_gib: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    sensitivity: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    fa_offset: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    uses_mpiio: np.ndarray = field(default_factory=lambda: np.empty(0, np.bool_))
    # schedule
    start_time: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    end_time: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    nodes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    cores: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    # ground-truth throughput decomposition, dex = log10 units
    fa_dex: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    fg_dex: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    fl_dex: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    fn_dex: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    # realized observables
    throughput_mibps: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    io_time: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    load_other: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))

    def __len__(self) -> int:
        return int(self.start_time.shape[0])

    @property
    def n_jobs(self) -> int:
        return len(self)

    @property
    def log_throughput(self) -> np.ndarray:
        """Prediction target: log10 of I/O throughput in MiB/s."""
        return np.log10(self.throughput_mibps)

    @property
    def duration(self) -> np.ndarray:
        return self.end_time - self.start_time

    def take(self, index: np.ndarray) -> "JobTable":
        """Row subset (fancy index or boolean mask), preserving all columns."""
        out = JobTable()
        for f in fields(self):
            arr = getattr(self, f.name)
            setattr(out, f.name, np.asarray(arr)[index])
        return out

    def validate(self) -> None:
        """Internal consistency checks; raises ``ValueError`` on violation."""
        n = len(self)
        for f in fields(self):
            arr = getattr(self, f.name)
            if arr.shape[0] != n:
                raise ValueError(f"column {f.name} has length {arr.shape[0]}, expected {n}")
        if n == 0:
            return
        if np.any(self.end_time < self.start_time):
            raise ValueError("job with negative duration")
        if np.any(self.total_bytes <= 0):
            raise ValueError("job with non-positive I/O volume")
        if np.any(~np.isfinite(self.throughput_mibps)) or np.any(self.throughput_mibps <= 0):
            raise ValueError("non-finite or non-positive throughput")
