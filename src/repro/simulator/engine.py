"""Simulation orchestration: workload → Eq. 3 components → realized jobs.

The engine wires the substrates together in the order the paper's
formulation implies:

1. sample the workload (variants, duplicate sets, schedule)        — §V
2. evaluate fa(j) on the idealized platform                        — Eq. 3
3. realize the global weather process and evaluate fg(t)           — §VII
4. reconstruct the load timeline and evaluate fl(t, j)             — §IX
5. add inherent noise fn                                           — §IX
6. realize throughput, I/O time, and the final job schedule

A single fixed-point pass resolves the throughput↔duration circularity:
durations are first estimated from fa + fg, the load timeline is built from
those estimates, and the final throughput then includes contention and
noise.  (Production systems have the same feedback; one pass reproduces the
load statistics that matter here.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SECONDS_PER_YEAR, SimulationConfig
from repro.rng import RngFactory
from repro.simulator.contention import BackgroundLoad, LoadTimeline, contention_dex
from repro.simulator.iomodel import ideal_log_throughput
from repro.simulator.job import LATENT_COLUMNS, JobTable
from repro.simulator.noise import noise_dex
from repro.simulator.platform import Platform
from repro.simulator.weather import Weather
from repro.simulator.workload import WorkloadPlan, build_workload

__all__ = ["SimulationEngine", "SimulationResult", "simulate"]

MiB = 1024.0**2


@dataclass
class SimulationResult:
    """Everything downstream consumers need: jobs plus shared substrate state."""

    jobs: JobTable
    weather: Weather
    timeline: LoadTimeline
    background: BackgroundLoad
    platform: Platform
    plan: WorkloadPlan
    config: SimulationConfig

    @property
    def span(self) -> float:
        return self.config.workload.span_years * SECONDS_PER_YEAR

    @property
    def deployment_cutoff_time(self) -> float:
        return self.config.workload.deployment_cutoff * self.span


class SimulationEngine:
    """Builds one platform's multi-year job population."""

    def __init__(self, config: SimulationConfig):
        self.config = config
        self.rngs = RngFactory(config.seed)
        self.platform = Platform(config.platform)

    def run(self) -> SimulationResult:
        cfg = self.config
        span = cfg.workload.span_years * SECONDS_PER_YEAR

        plan = build_workload(cfg.workload, self.rngs.get("workload"))
        n = plan.n_jobs
        weather = Weather(
            cfg.weather,
            span,
            self.rngs.get("weather"),
            deployment_epoch_at=min(0.97, cfg.workload.deployment_cutoff + 0.04),
        )

        # expand latent variant parameters to jobs
        job_params = {k: v[plan.job_variant] for k, v in plan.variant_params.items()}
        start = plan.start_time

        # Eq. 3 terms -------------------------------------------------- #
        # fa = platform envelope model + the family's deviation from it
        # (zero for trained families; novel codes behave unlike anything
        # the envelope was fitted to, see applications.AppFamily)
        fa = ideal_log_throughput(self.platform, job_params) + job_params["fa_offset"]
        fg = weather.log_factor(start)

        total_mib = job_params["total_bytes"] / MiB
        runtime_rng = self.rngs.get("runtime")
        compute_stretch = 1.0 + runtime_rng.exponential(cfg.workload.compute_time_factor, n)

        io_time_est = total_mib / np.power(10.0, fa + fg)
        dur_est = np.maximum(io_time_est * compute_stretch, 1.0)
        demand = self.platform.demand_fraction(total_mib / dur_est, job_params["read_frac"])

        timeline = LoadTimeline(start, start + dur_est, demand)
        background = BackgroundLoad(span, self.rngs.get("background"))
        load_window = timeline.mean_load(start, start + dur_est)
        load_bg = background.mean_load(start, start + dur_est)
        load_other = np.maximum(load_window - demand, 0.0) + load_bg

        fl, _placement = contention_dex(
            cfg.platform, load_other, job_params["sensitivity"], self.rngs.get("contention")
        )
        fn = noise_dex(cfg.platform, self.rngs.get("noise"), n)

        log_tp = fa + fg + fl + fn
        throughput = np.power(10.0, log_tp)
        io_time = total_mib / throughput
        end = start + np.maximum(io_time * compute_stretch, 1.0)

        # assemble ------------------------------------------------------ #
        jobs = JobTable(
            family_id=plan.variant_family[plan.job_variant].astype(np.int32),
            variant_id=plan.job_variant.astype(np.int64),
            is_ood=plan.variant_is_ood[plan.job_variant],
            start_time=cfg.workload.start_epoch + start,
            end_time=cfg.workload.start_epoch + end,
            nodes=np.maximum(
                1, np.ceil(job_params["nprocs"] / cfg.platform.cores_per_node)
            ).astype(np.int64),
            cores=job_params["nprocs"].astype(np.int64),
            fa_dex=fa,
            fg_dex=fg,
            fl_dex=fl,
            fn_dex=fn,
            throughput_mibps=throughput,
            io_time=io_time,
            load_other=load_other,
            **{k: np.asarray(job_params[k]) for k in LATENT_COLUMNS},
        )
        jobs.validate()
        return SimulationResult(
            jobs=jobs,
            weather=weather,
            timeline=timeline,
            background=background,
            platform=self.platform,
            plan=plan,
            config=cfg,
        )


def simulate(config: SimulationConfig) -> SimulationResult:
    """One-call façade: build and run an engine."""
    return SimulationEngine(config).run()
