"""ζg(t): global system state — "I/O climate" and "I/O weather".

Following the paper's §VII (and the UMAMI terminology it cites), the global
component mixes slow *climate* (software epochs, aging, filesystem fullness,
seasonal load) with transient *weather* (service degradations, a slowly
wandering Ornstein-Uhlenbeck term).  The whole process is a pure function of
time once constructed, which is exactly the property the golden start-time
model exploits in the system-modeling litmus test.

Everything is evaluated vectorized over arbitrary time arrays.
"""

from __future__ import annotations

import numpy as np

from repro.config import SECONDS_PER_DAY, SECONDS_PER_YEAR, WeatherConfig
from repro.rng import generator_from

__all__ = ["Weather"]


class Weather:
    """Realization of the global system process over a fixed span.

    Parameters
    ----------
    config:
        Amplitude/frequency knobs.
    span:
        Length of the simulated period in seconds; times are offsets in
        ``[0, span]`` from the platform's start epoch.
    rng:
        Seed or generator; one realization is drawn at construction.
    deployment_epoch_at:
        Optional fraction of the span at which a *guaranteed* epoch boundary
        with an amplified offset is placed.  The engine aligns this with the
        deployment cutoff so temporal splits exhibit the post-deployment
        drift of Fig. 1d.
    """

    def __init__(
        self,
        config: WeatherConfig,
        span: float,
        rng,
        deployment_epoch_at: float | None = 0.85,
    ):
        self.config = config
        self.span = float(span)
        gen = generator_from(rng)

        # --- epochs: piecewise-constant offsets (software/hardware changes)
        n_ep = max(1, int(config.epoch_count))
        bounds = np.sort(gen.uniform(0.0, span, n_ep - 1)) if n_ep > 1 else np.empty(0)
        offsets = gen.normal(0.0, config.epoch_sigma, n_ep)
        if deployment_epoch_at is not None:
            t_dep = float(deployment_epoch_at) * span
            bounds = np.sort(np.append(bounds, t_dep))
            # the post-deployment epoch gets a deliberate, sign-random shift
            extra = gen.choice([-1.0, 1.0]) * (config.epoch_sigma * 2.0)
            offsets = np.append(offsets, offsets[-1] + extra)
        self._epoch_bounds = bounds
        self._epoch_offsets = offsets - offsets.mean()

        # --- degradations: negative half-cosine pulses
        years = span / SECONDS_PER_YEAR
        n_events = gen.poisson(config.degradations_per_year * years)
        self._deg_center = gen.uniform(0.0, span, n_events)
        self._deg_depth = gen.uniform(config.degradation_depth_min, config.degradation_depth_max, n_events)
        hours = np.exp(
            gen.uniform(
                np.log(config.degradation_hours_min),
                np.log(config.degradation_hours_max),
                n_events,
            )
        )
        self._deg_halfwidth = hours * 3600.0 / 2.0

        # --- slow OU wander, realized on a 6-hour grid and interpolated
        dt = 6.0 * 3600.0
        n_grid = max(2, int(span / dt) + 2)
        tau = config.ou_tau_days * SECONDS_PER_DAY
        alpha = np.exp(-dt / tau)
        innov = gen.normal(0.0, config.ou_sigma * np.sqrt(1.0 - alpha**2), n_grid)
        ou = np.empty(n_grid)
        ou[0] = gen.normal(0.0, config.ou_sigma)
        for i in range(1, n_grid):  # short loop: ~4K iterations at 3-year span
            ou[i] = alpha * ou[i - 1] + innov[i]
        self._ou_grid_t = np.arange(n_grid) * dt
        self._ou_grid_v = ou

        # --- fullness sawtooth
        self._purge_period = config.fullness_purge_period_days * SECONDS_PER_DAY

    # ------------------------------------------------------------------ #
    def epoch_offset(self, t: np.ndarray) -> np.ndarray:
        """Piecewise-constant software-epoch offset (dex)."""
        t = np.asarray(t, dtype=float)
        idx = np.searchsorted(self._epoch_bounds, t, side="right")
        return self._epoch_offsets[idx]

    def degradation(self, t: np.ndarray) -> np.ndarray:
        """Total degradation depth at time ``t`` (dex, >= 0)."""
        t = np.asarray(t, dtype=float)
        out = np.zeros_like(t)
        if self._deg_center.size == 0:
            return out
        # chunk over time to bound the events x times broadcast
        step = max(1, 2_000_000 // max(1, self._deg_center.size))
        flat = t.ravel()
        res = np.zeros(flat.size)
        for lo in range(0, flat.size, step):
            hi = min(flat.size, lo + step)
            x = (flat[lo:hi, None] - self._deg_center[None, :]) / self._deg_halfwidth[None, :]
            pulse = np.where(np.abs(x) < 1.0, 0.5 * (1.0 + np.cos(np.pi * x)), 0.0)
            res[lo:hi] = pulse @ self._deg_depth
        return res.reshape(t.shape)

    def ou(self, t: np.ndarray) -> np.ndarray:
        """Slow bandwidth wander (dex, zero-mean)."""
        t = np.asarray(t, dtype=float)
        return np.interp(t, self._ou_grid_t, self._ou_grid_v)

    def fullness(self, t: np.ndarray) -> np.ndarray:
        """Filesystem fullness fraction in [0, 0.97] (sawtooth with purges)."""
        cfg = self.config
        t = np.asarray(t, dtype=float)
        phase = np.mod(t, self._purge_period) / self._purge_period
        per_period = cfg.fullness_slope * self._purge_period / SECONDS_PER_YEAR
        base = cfg.fullness_start + 0.5 * per_period * (phase - 0.5) * 2.0
        drift = 0.02 * t / self.span  # the system slowly fills over its life
        return np.clip(base + drift, 0.02, 0.97)

    def seasonal(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        cfg = self.config
        season = cfg.seasonal_amplitude * np.sin(2.0 * np.pi * t / SECONDS_PER_YEAR)
        aging = cfg.aging_slope * t / SECONDS_PER_YEAR
        return season + aging

    # ------------------------------------------------------------------ #
    def log_factor(self, t: np.ndarray) -> np.ndarray:
        """fg(t): total global offset in dex (negative during degradations)."""
        t = np.asarray(t, dtype=float)
        full_pen = -self.config.fullness_penalty * (self.fullness(t) - self.config.fullness_start)
        return self.epoch_offset(t) - self.degradation(t) + self.ou(t) + self.seasonal(t) + full_pen

    def describe(self) -> dict[str, float]:
        """Summary statistics of this realization (for reports/tests)."""
        grid = np.linspace(0.0, self.span, 4096)
        fg = self.log_factor(grid)
        return {
            "n_degradations": int(self._deg_center.size),
            "n_epochs": int(self._epoch_offsets.size),
            "fg_std_dex": float(np.std(fg)),
            "fg_min_dex": float(np.min(fg)),
            "fg_max_dex": float(np.max(fg)),
        }
