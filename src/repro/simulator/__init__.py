"""Synthetic HPC I/O data-generating process.

Implements the paper's Eq. 3 decomposition literally:

``log10 φ(j) = fa(j) + fg(ζg(t)) + fl(ζl(t, j)) + fn(ω)``

* :mod:`repro.simulator.applications` — application catalog (latent configs)
* :mod:`repro.simulator.platform`/`iomodel`   — fa: idealized platform response
* :mod:`repro.simulator.weather`      — fg: global system state ζg(t)
* :mod:`repro.simulator.contention`   — fl: job-interaction term ζl(t, j)
* :mod:`repro.simulator.noise`        — fn: inherent noise ω
* :mod:`repro.simulator.workload`     — job arrival / duplicate-set structure
* :mod:`repro.simulator.engine`       — orchestration
"""

from repro.simulator.engine import SimulationEngine, simulate
from repro.simulator.job import JobTable

__all__ = ["SimulationEngine", "simulate", "JobTable"]
