"""fa(j): the idealized application-performance model (Eq. 3, first term).

Computes the I/O throughput a job would see on an otherwise idle,
configuration-frozen platform.  This is the deterministic "application
behaviour" component that a sufficiently expressive ML model *can* learn from
Darshan features, because every input here is recoverable from the feature
set emitted by :mod:`repro.telemetry.darshan`.

The model is a standard analytic parallel-I/O cost model:

* per-process transfer efficiency (latency/bandwidth),
* collective buffering rescuing small MPI-IO transfers,
* saturating scale-out to the OST ceiling,
* N-1 shared-file lock contention on writes,
* random-access and alignment penalties,
* metadata and fsync serialization at the MDS.

All functions are vectorized over jobs.
"""

from __future__ import annotations

import numpy as np

from repro.simulator.platform import Platform

__all__ = ["ideal_throughput_mibps", "ideal_log_throughput"]

GiB = 1024.0**3
_COLLECTIVE_XFER = 4.0 * 1024 * 1024  # collective buffering aggregates to ~4 MiB


def _side_bandwidth(
    platform: Platform,
    nprocs: np.ndarray,
    xfer: np.ndarray,
    shared_frac: np.ndarray,
    seq_frac: np.ndarray,
    aligned_frac: np.ndarray,
    collective_frac: np.ndarray,
    read: bool,
) -> np.ndarray:
    """Aggregate bandwidth (MiB/s) for one direction (read or write)."""
    cfg = platform.config
    # Everything below is phrased in POSIX-*visible* effective quantities:
    # collective buffering re-issues large, aligned, sequential transfers,
    # and Darshan records the post-aggregation traffic, so each effective
    # term here is recoverable from the POSIX feature set (§V).
    eff = platform.transfer_efficiency(xfer)
    eff_coll = platform.transfer_efficiency(np.maximum(xfer, _COLLECTIVE_XFER))
    eff = (1.0 - collective_frac) * eff + collective_frac * eff_coll
    seq_eff = 1.0 - (1.0 - seq_frac) * (1.0 - collective_frac)
    align_eff = 1.0 - (1.0 - aligned_frac) * (1.0 - collective_frac)
    # share of traffic issued as large extents (aggregated or natively big)
    big_share = collective_frac + (1.0 - collective_frac) * (xfer >= _COLLECTIVE_XFER)

    demand = nprocs * cfg.per_proc_mibps * eff
    ceiling = platform.aggregate_ceiling(platform.osts_used(nprocs, shared_frac), read=read)
    # smooth saturating min: harmonic interpolation avoids a kink the ML
    # models would exploit unrealistically
    bw = demand * ceiling / (demand + ceiling)

    # random access hurts (seek amplification on the OSTs)
    bw = bw * (1.0 - cfg.random_access_penalty * (1.0 - seq_eff))
    # unaligned accesses trigger read-modify-write on writes, minor cost on reads
    align_pen = 0.20 if not read else 0.06
    bw = bw * (1.0 - align_pen * (1.0 - align_eff))
    if not read:
        # N-1 shared-file writes serialize on extent locks; large disjoint
        # extents (collective aggregation or natively large transfers)
        # conflict far less
        lock = cfg.shared_write_penalty * shared_frac * np.power(nprocs, 0.35) * (1.0 - 0.8 * big_share)
        bw = bw / (1.0 + lock)
    return np.maximum(bw, 1e-3)


def ideal_throughput_mibps(platform: Platform, params: dict[str, np.ndarray]) -> np.ndarray:
    """fa in linear units: MiB/s the application achieves on an idle system.

    ``params`` holds the latent columns (see ``job.LATENT_COLUMNS``).
    """
    cfg = platform.config
    nprocs = np.asarray(params["nprocs"], dtype=float)
    total_bytes = np.asarray(params["total_bytes"], dtype=float)
    read_frac = np.asarray(params["read_frac"], dtype=float)

    bytes_read = total_bytes * read_frac
    bytes_write = total_bytes - bytes_read

    bw_read = _side_bandwidth(
        platform, nprocs, params["xfer_read"], params["shared_frac"],
        params["seq_frac"], params["aligned_frac"], params["collective_frac"], read=True,
    )
    bw_write = _side_bandwidth(
        platform, nprocs, params["xfer_write"], params["shared_frac"],
        params["seq_frac"], params["aligned_frac"], params["collective_frac"], read=False,
    )

    mib_read = bytes_read / (1024.0**2)
    mib_write = bytes_write / (1024.0**2)
    time_read = mib_read / bw_read
    time_write = mib_write / bw_write

    # metadata + fsync time: serialized at the MDS, softened by client-side
    # caching when many processes share files
    gib = total_bytes / GiB
    meta_ops = params["meta_per_gib"] * gib + params["fsync_per_gib"] * gib
    meta_parallel = np.sqrt(nprocs)
    time_meta = meta_ops * cfg.metadata_cost / meta_parallel

    # Phases overlap in real codes: reads, writes, and metadata streams from
    # different ranks proceed concurrently, so the job's I/O wall time is
    # governed by the slowest stream rather than the sum.  A p-norm is the
    # smooth version of that max.
    p = 2.5
    total_time = (time_read**p + time_write**p + time_meta**p) ** (1.0 / p)
    return (mib_read + mib_write) / np.maximum(total_time, 1e-9)


def ideal_log_throughput(platform: Platform, params: dict[str, np.ndarray]) -> np.ndarray:
    """fa in dex: log10 MiB/s."""
    return np.log10(ideal_throughput_mibps(platform, params))
