"""fn(ω): inherent, unlearnable noise.

Gaussian in log space with a small heavy-tail mixture component — the paper
notes that some error distributions "have heavy tails that make mean
estimates unreliable" (§V), and that median statistics are therefore used
throughout.  A Student-t option is provided for ablations.
"""

from __future__ import annotations

import numpy as np

from repro.config import PlatformConfig
from repro.rng import generator_from

__all__ = ["gaussian_mixture_noise", "student_t_noise", "noise_dex"]


def gaussian_mixture_noise(
    rng, n: int, sigma: float, heavy_frac: float = 0.02, heavy_scale: float = 4.0
) -> np.ndarray:
    """Zero-mean Gaussian noise with a ``heavy_frac`` share of wide outliers."""
    gen = generator_from(rng)
    base = gen.normal(0.0, sigma, n)
    if heavy_frac > 0.0:
        mask = gen.random(n) < heavy_frac
        base[mask] = gen.normal(0.0, sigma * heavy_scale, int(mask.sum()))
    return base


def student_t_noise(rng, n: int, sigma: float, df: float = 4.0) -> np.ndarray:
    """Student-t noise scaled so its standard deviation equals ``sigma``."""
    if df <= 2.0:
        raise ValueError("df must exceed 2 for finite variance")
    gen = generator_from(rng)
    scale = sigma / np.sqrt(df / (df - 2.0))
    return gen.standard_t(df, n) * scale


def noise_dex(platform: PlatformConfig, rng, n: int) -> np.ndarray:
    """Draw fn for ``n`` jobs using the platform's noise settings."""
    return gaussian_mixture_noise(
        rng, n, sigma=platform.noise_sigma, heavy_frac=platform.noise_heavy_tail_frac
    )
