"""Workload synthesis: who runs what, when — including duplicate structure.

Reproduces the structural properties of the paper's job populations that the
litmus tests depend on:

* a configurable fraction of jobs belongs to *duplicate sets* (identical
  latent config ⇒ identical Darshan features): 23.5 % on Theta, 54 % on Cori;
* duplicate sets are either *spread* over a campaign (weeks) or submitted as
  *batches* with identical start times (Δt = 0 sets), whose size
  distribution matches §IX (~70 % of Δt = 0 sets have exactly 2 jobs,
  ~96 % have ≤ 6);
* an IOR-like health-check benchmark reruns periodically across the whole
  span (the paper's example of system-probing duplicates);
* after the deployment cutoff, *novel* application families appear
  (out-of-distribution jobs, §VIII).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SECONDS_PER_DAY, SECONDS_PER_YEAR, WorkloadConfig
from repro.rng import generator_from
from repro.simulator.applications import OOD_FAMILIES, family_index, family_names, sample_variants

__all__ = ["WorkloadPlan", "build_workload"]


@dataclass
class WorkloadPlan:
    """Output of :func:`build_workload` (indices are into the variant table)."""

    variant_params: dict[str, np.ndarray]   # per-variant latent columns
    variant_family: np.ndarray              # per-variant family id
    variant_is_ood: np.ndarray              # per-variant OoD flag
    job_variant: np.ndarray                 # per-job variant index
    start_time: np.ndarray                  # per-job offset (s) from span start

    @property
    def n_jobs(self) -> int:
        return int(self.job_variant.shape[0])

    @property
    def n_variants(self) -> int:
        return int(self.variant_family.shape[0])


def _draw_set_sizes(rng: np.random.Generator, cfg: WorkloadConfig, target_jobs: int) -> np.ndarray:
    """Duplicate-set sizes (each >= 2) summing to ~``target_jobs``."""
    if target_jobs < 2:
        return np.empty(0, dtype=np.int64)
    sizes: list[int] = []
    total = 0
    while total < target_jobs:
        s = int(np.clip(round(np.exp(rng.normal(cfg.set_size_log_mean, cfg.set_size_log_sigma))), 2, 400))
        s = min(s, target_jobs - total) if target_jobs - total >= 2 else 2
        if s < 2:
            break
        sizes.append(s)
        total += s
    return np.asarray(sizes, dtype=np.int64)


def _schedule_set(
    rng: np.random.Generator, cfg: WorkloadConfig, size: int, span: float
) -> np.ndarray:
    """Start times for one duplicate set.

    Three submission styles cover the Δt structure of Fig. 1c/6:

    * *batch* — members start within the same second (Δt = 0 strip);
    * *sequential chain* — each member starts minutes-to-hours after the
      previous one (sweep campaigns resubmitted as jobs finish), which
      populates the 10¹–10⁴ s decades;
    * *campaign spread* — members scatter over weeks (days-to-months tail).
    """
    center = rng.uniform(0.05 * span, 0.95 * span)
    sigma = cfg.campaign_sigma_days * SECONDS_PER_DAY
    style = rng.random()
    if style < cfg.batch_prob:
        # split into Δt=0 batches of size 2 + Geom(p); remainder spread
        times = np.empty(size)
        filled = 0
        while filled < size:
            b = 2 + rng.geometric(cfg.batch_geom_p) - 1
            b = min(b, size - filled)
            t0 = np.clip(center + rng.normal(0.0, sigma), 0.0, span - 1.0)
            if b == 1:
                times[filled] = t0
            else:
                # members of a batch start within the same second
                times[filled : filled + b] = t0 + rng.uniform(0.0, 0.9, b)
            filled += b
        return times
    if style < cfg.batch_prob + cfg.seq_prob:
        gaps = rng.lognormal(cfg.seq_gap_log_mean, cfg.seq_gap_log_sigma, size - 1)
        times = center + np.concatenate([[0.0], np.cumsum(gaps)])
        return np.clip(times, 0.0, span - 1.0)
    offsets = rng.normal(0.0, sigma, size)
    return np.clip(center + offsets, 0.0, span - 1.0)


def build_workload(cfg: WorkloadConfig, rng) -> WorkloadPlan:
    """Construct the full job population for one platform."""
    gen = generator_from(rng)
    n = int(cfg.n_jobs)
    if n < 10:
        raise ValueError("need at least 10 jobs to build a workload")
    span = cfg.span_years * SECONDS_PER_YEAR

    # ---- budget the population --------------------------------------- #
    post_jobs = (1.0 - cfg.deployment_cutoff) * n
    n_ood = int(round(cfg.ood_fraction * post_jobs))
    ood_sizes = []
    remaining_ood = n_ood
    while remaining_ood > 0:
        # §VIII's OoD jobs are "rarely run or novel": predominantly one-off
        # submissions.  Reruns matter — a novel variant with a sibling in
        # the training split is *learnable* (boosting memorizes small
        # duplicate groups) and genuinely stops being OoD for the model.
        s = int(gen.choice([1, 2, 3], p=[0.70, 0.25, 0.05]))
        s = min(s, remaining_ood)
        ood_sizes.append(s)
        remaining_ood -= s
    ood_sizes_arr = np.asarray(ood_sizes, dtype=np.int64)

    n_bench_variants = max(1, n // 16_000)
    bench_runs_each = int(min(span / (cfg.benchmark_period_days * SECONDS_PER_DAY),
                              max(24, 0.02 * n)))
    n_bench = n_bench_variants * bench_runs_each

    target_dup = int(cfg.duplicate_fraction * n) - n_bench
    set_sizes = _draw_set_sizes(gen, cfg, max(0, target_dup))
    n_dup = int(set_sizes.sum())

    n_single = max(0, n - n_ood - n_bench - n_dup)

    # ---- variant table ------------------------------------------------ #
    families = family_names(include_ood=True)
    id_weights = np.array([cfg.family_weights.get(f, 0.0) for f in families])
    id_weights = id_weights / id_weights.sum()

    n_normal_variants = n_single + set_sizes.size
    variant_family = gen.choice(len(families), size=n_normal_variants, p=id_weights)
    bench_family = np.full(n_bench_variants, family_index("ior"), dtype=np.int64)
    ood_names = list(OOD_FAMILIES)
    ood_family = np.asarray(
        [family_index(ood_names[i % len(ood_names)]) for i in range(ood_sizes_arr.size)],
        dtype=np.int64,
    )
    variant_family = np.concatenate([variant_family, bench_family, ood_family]).astype(np.int64)
    variant_is_ood = np.zeros(variant_family.size, dtype=bool)
    if ood_family.size:
        variant_is_ood[-ood_family.size :] = True

    # draw latent parameters family-by-family (vectorized within family)
    params: dict[str, np.ndarray] = {}
    for fid, fname in enumerate(families):
        mask = variant_family == fid
        count = int(mask.sum())
        if count == 0:
            continue
        drawn = sample_variants(fname, gen, count)
        for key, values in drawn.items():
            if key not in params:
                dtype = bool if values.dtype == bool else float
                params[key] = np.zeros(variant_family.size, dtype=dtype)
            params[key][mask] = values
    # enforce the paper's >1 GiB job filter at the source
    params["total_bytes"] = np.maximum(params["total_bytes"], cfg.min_bytes_gib * 1024.0**3)

    # ---- job -> variant assignment and start times -------------------- #
    job_variant_parts: list[np.ndarray] = []
    start_parts: list[np.ndarray] = []

    # singletons: variants [0, n_single)
    if n_single:
        job_variant_parts.append(np.arange(n_single, dtype=np.int64))
        start_parts.append(gen.uniform(0.0, span, n_single))

    # duplicate sets: variants [n_single, n_single + n_sets)
    for k, size in enumerate(set_sizes):
        vid = n_single + k
        job_variant_parts.append(np.full(size, vid, dtype=np.int64))
        start_parts.append(_schedule_set(gen, cfg, int(size), span))

    # periodic benchmark variants
    for b in range(n_bench_variants):
        vid = n_normal_variants + b
        period = span / bench_runs_each
        phase = gen.uniform(0.0, 0.5 * period)
        times = phase + np.arange(bench_runs_each) * period + gen.uniform(-0.08, 0.08, bench_runs_each) * period
        job_variant_parts.append(np.full(bench_runs_each, vid, dtype=np.int64))
        start_parts.append(np.clip(times, 0.0, span - 1.0))

    # OoD variants: only after the deployment cutoff
    t_cut = cfg.deployment_cutoff * span
    for k, size in enumerate(ood_sizes_arr):
        vid = n_normal_variants + n_bench_variants + k
        job_variant_parts.append(np.full(size, vid, dtype=np.int64))
        base = gen.uniform(t_cut, span - 1.0)
        jitter = gen.uniform(0.0, 3.0 * SECONDS_PER_DAY, size)
        start_parts.append(np.clip(base + jitter, t_cut, span - 1.0))

    job_variant = np.concatenate(job_variant_parts)
    start_time = np.concatenate(start_parts)

    # shuffle into arrival order (sorted by time, as logs would be)
    order = np.argsort(start_time, kind="stable")
    return WorkloadPlan(
        variant_params=params,
        variant_family=variant_family,
        variant_is_ood=variant_is_ood,
        job_variant=job_variant[order],
        start_time=start_time[order],
    )
