"""Configuration dataclasses and platform presets.

Two leadership-class platforms are modelled after the paper's testbeds:

* ``theta``  — ALCF Theta:  Lustre ``theta-fs0``-like store, Darshan + Cobalt
  logs, 2017-2020 span, ~100K jobs >1 GiB in the paper.
* ``cori``   — NERSC Cori:  Lustre ``cscratch``-like store, Darshan + LMT
  logs, 2018-2019 span, ~1.1M jobs >1 GiB in the paper.

The *calibration* fields (noise/contention/weather amplitudes, duplicate
intensities) are chosen so the litmus-test statistics land near the paper's
reported values; see DESIGN.md §5 for the mapping.  All magnitudes are in
"dex" (decimal exponent): 0.0241 dex ≈ ±5.71 % relative throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "PlatformConfig",
    "WeatherConfig",
    "WorkloadConfig",
    "SimulationConfig",
    "theta_config",
    "cori_config",
    "preset",
    "PRESETS",
]

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_YEAR = 365.25 * SECONDS_PER_DAY


@dataclass(frozen=True)
class PlatformConfig:
    """Static description of the storage platform plus noise/contention scales."""

    name: str = "theta"
    # --- storage hardware -------------------------------------------------
    n_oss: int = 56                 # object storage servers
    n_ost: int = 56                 # object storage targets
    n_mds: int = 1                  # metadata servers
    peak_write_mibps: float = 160_000.0   # aggregate peak write bandwidth (MiB/s)
    peak_read_mibps: float = 200_000.0    # aggregate peak read bandwidth (MiB/s)
    per_proc_mibps: float = 450.0   # single-process streaming ceiling (MiB/s)
    latency_bytes: float = 262_144.0      # transfer size at 50 % efficiency
    metadata_cost: float = 9e-4     # seconds per metadata op (effective)
    shared_write_penalty: float = 0.055   # N-1 shared-file lock contention strength
    random_access_penalty: float = 0.45   # max slowdown fraction for fully random I/O
    stripe_width: int = 8           # default stripe count for shared files
    cores_per_node: int = 64
    # --- stochastic components (dex = log10 units) ------------------------
    noise_sigma: float = 0.0170     # fn: inherent noise std
    noise_heavy_tail_frac: float = 0.02   # fraction of 4x-sigma outliers
    contention_scale: float = 0.028  # ζl: dex of slowdown per unit (load × sensitivity)
    # Placement luck dominates contention: a job's slowdown depends on the
    # load of the specific OSTs/neighbours it lands on, which system-wide
    # server aggregates (LMT) barely resolve — the paper's finding that
    # LMT-enriched models only recover the *global* (time-predictable)
    # component (§VII.B).  A large lognormal σ keeps ζl mostly idiosyncratic.
    placement_sigma: float = 1.00   # idiosyncratic (unpredictable) placement lognormal σ
    # --- telemetry available on the platform ------------------------------
    has_cobalt: bool = True
    has_lmt: bool = False


@dataclass(frozen=True)
class WeatherConfig:
    """Global system state ζg(t): I/O climate (slow) + weather (transient)."""

    epoch_count: int = 4            # software/hardware reconfiguration epochs
    epoch_sigma: float = 0.030      # dex offset std between epochs
    degradations_per_year: float = 9.0
    degradation_depth_min: float = 0.05   # dex
    degradation_depth_max: float = 0.38   # dex
    degradation_hours_min: float = 6.0
    degradation_hours_max: float = 340.0
    seasonal_amplitude: float = 0.010     # dex, annual cycle
    aging_slope: float = -0.008     # dex per year, slow performance decay
    fullness_start: float = 0.38    # filesystem fullness fraction at t=0
    fullness_slope: float = 0.16    # fullness increase per year (sawtooth w/ purges)
    fullness_purge_period_days: float = 120.0
    fullness_penalty: float = 0.11  # dex slowdown at 100 % full vs empty
    ou_sigma: float = 0.035         # dex, slow Ornstein-Uhlenbeck "weather" wander
    ou_tau_days: float = 21.0       # OU relaxation time


@dataclass(frozen=True)
class WorkloadConfig:
    """Job population: arrival process, duplicate structure, OoD injection."""

    n_jobs: int = 8_000
    span_years: float = 3.0
    start_epoch: float = 1.4832e9   # 2017-01-01 UTC, cosmetic only
    # application mix: family name -> relative weight (see applications.py)
    family_weights: dict[str, float] = field(
        default_factory=lambda: {
            "ior": 0.05,
            "hacc": 0.14,
            "qb": 0.10,
            "pwx": 0.16,
            "writer": 0.13,
            "montage": 0.12,
            "enzo": 0.14,
            "cosmoflow": 0.16,
        }
    )
    # duplicate structure -------------------------------------------------
    duplicate_fraction: float = 0.26      # target fraction of jobs in sets >= 2
    campaign_sigma_days: float = 110.0     # temporal spread of a variant's reruns
    batch_prob: float = 0.34              # P(rerun set submitted as a Δt=0 batch)
    batch_geom_p: float = 0.62            # batch size ~ 2 + Geom(p) ⇒ ~70 % of size 2
    # sequential chains: back-to-back reruns (parameter sweeps resubmitted as
    # each job finishes) — these populate the minutes-to-hours Δt decades of
    # Fig. 1c/6 that batches (Δt=0) and campaigns (days-months) both skip
    seq_prob: float = 0.24                # P(rerun set is a sequential chain)
    seq_gap_log_mean: float = 6.6         # ln-seconds; e^6.6 ≈ 12 min median gap
    seq_gap_log_sigma: float = 1.7        # spans ~30 s to ~4 h
    set_size_log_mean: float = 1.25       # lognormal duplicate-set size
    set_size_log_sigma: float = 0.85
    benchmark_period_days: float = 2.0    # IOR-like health-check cadence
    # out-of-distribution injection ---------------------------------------
    ood_fraction: float = 0.035           # fraction of post-cutoff jobs that are novel
    deployment_cutoff: float = 0.80       # fraction of span after which OoD apps appear
    # job shape ------------------------------------------------------------
    compute_time_factor: float = 2.8      # runtime = io_time * (1 + Exp(factor))
    min_bytes_gib: float = 1.0            # paper keeps jobs with >1 GiB of I/O


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to generate one platform's dataset."""

    platform: PlatformConfig = field(default_factory=PlatformConfig)
    weather: WeatherConfig = field(default_factory=WeatherConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    seed: int = 2022

    def with_jobs(self, n_jobs: int) -> "SimulationConfig":
        """Return a copy scaled to ``n_jobs`` (bench-size control)."""
        return replace(self, workload=replace(self.workload, n_jobs=int(n_jobs)))

    def with_seed(self, seed: int) -> "SimulationConfig":
        return replace(self, seed=int(seed))


def theta_config(n_jobs: int = 8_000, seed: int = 2022) -> SimulationConfig:
    """ALCF Theta-like preset (Darshan + Cobalt, no LMT)."""
    platform = PlatformConfig(
        name="theta",
        n_oss=56,
        n_ost=56,
        peak_write_mibps=160_000.0,
        peak_read_mibps=210_000.0,
        noise_sigma=0.0195,
        contention_scale=0.026,
        placement_sigma=1.00,
        has_cobalt=True,
        has_lmt=False,
    )
    weather = WeatherConfig(
        degradations_per_year=14.0,
        ou_sigma=0.068,
        epoch_sigma=0.030,
    )
    workload = WorkloadConfig(
        n_jobs=n_jobs,
        span_years=3.0,
        start_epoch=1.4832e9,       # 2017-01-01
        duplicate_fraction=0.26,
        ood_fraction=0.035,
    )
    return SimulationConfig(platform=platform, weather=weather, workload=workload, seed=seed)


def cori_config(n_jobs: int = 16_000, seed: int = 2022) -> SimulationConfig:
    """NERSC Cori-like preset (Darshan + LMT, no Cobalt).

    Cori is noisier than Theta in the paper (σ₀ ±7.21 % vs ±5.71 %; all-time
    duplicate bound 14.15 % vs 10.01 %) and has a much higher duplicate
    fraction (54 % vs 23.5 %).
    """
    platform = PlatformConfig(
        name="cori",
        n_oss=248,
        n_ost=248,
        peak_write_mibps=700_000.0,
        peak_read_mibps=740_000.0,
        per_proc_mibps=500.0,
        cores_per_node=32,
        noise_sigma=0.0235,
        contention_scale=0.028,
        placement_sigma=1.05,
        has_cobalt=False,
        has_lmt=True,
    )
    weather = WeatherConfig(
        degradations_per_year=18.0,
        degradation_depth_max=0.45,
        ou_sigma=0.088,
        epoch_sigma=0.040,
        fullness_penalty=0.13,
    )
    workload = WorkloadConfig(
        n_jobs=n_jobs,
        span_years=2.0,
        start_epoch=1.5148e9,       # 2018-01-01
        duplicate_fraction=0.56,
        set_size_log_mean=1.45,
        set_size_log_sigma=0.95,
        ood_fraction=0.030,
        family_weights={
            "ior": 0.06,
            "hacc": 0.11,
            "qb": 0.12,
            "pwx": 0.15,
            "writer": 0.12,
            "montage": 0.13,
            "enzo": 0.13,
            "cosmoflow": 0.18,
        },
    )
    return SimulationConfig(platform=platform, weather=weather, workload=workload, seed=seed)


PRESETS = {"theta": theta_config, "cori": cori_config}


def preset(name: str, n_jobs: int | None = None, seed: int = 2022) -> SimulationConfig:
    """Look up a platform preset by name (``"theta"`` or ``"cori"``)."""
    try:
        factory = PRESETS[name.lower()]
    except KeyError as exc:
        raise KeyError(f"unknown platform preset {name!r}; choose from {sorted(PRESETS)}") from exc
    if n_jobs is None:
        return factory(seed=seed)
    return factory(n_jobs=n_jobs, seed=seed)
