"""AutoDEUQ-style uncertainty quantification pipeline (§VIII).

``autodeuq`` chains the two stages the paper describes: (1) run the NAS and
collect the best-performing configurations, (2) train them as a deep
ensemble with NLL heads and decompose predictive uncertainty into aleatory
and epistemic parts per test job.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.agebo import AgingEvolutionSearch
from repro.ml.ensemble import DeepEnsemble, UncertaintyDecomposition

__all__ = ["AutoDeuqResult", "autodeuq", "ensemble_from_nas", "epistemic_sample"]


def epistemic_sample(model, X: np.ndarray) -> np.ndarray:
    """Per-row epistemic-uncertainty sample (as a std) for a fitted model.

    The common currency of the AU/EU split (§VIII) that the online
    monitor's :class:`~repro.serve.monitor.uncertainty.UncertaintyTap`
    registers as its reference: ensembles with a full decomposition
    report ``epistemic_std`` directly; ``predict_dist``-capable tree
    ensembles report their across-member spread (member disagreement *is*
    the epistemic part — every member saw the same noise floor).
    """
    X = np.asarray(X, dtype=float)
    decompose = getattr(model, "decompose", None)
    if callable(decompose):
        return np.asarray(decompose(X).epistemic_std, dtype=float)
    predict_dist = getattr(model, "predict_dist", None)
    if callable(predict_dist):
        _, var = predict_dist(X)
        return np.sqrt(np.maximum(np.asarray(var, dtype=float), 0.0))
    raise TypeError(
        f"{type(model).__name__} exposes neither decompose nor predict_dist"
    )


@dataclass
class AutoDeuqResult:
    """Fitted ensemble plus the test-set decomposition."""

    ensemble: DeepEnsemble
    decomposition: UncertaintyDecomposition
    nas: AgingEvolutionSearch | None


def ensemble_from_nas(
    nas: AgingEvolutionSearch, n_members: int, epochs: int, seed: int = 0
) -> DeepEnsemble:
    """Build an ensemble from the NAS's top distinct configurations."""
    configs = nas.top_configs(n_members)
    # NLL heads are required for AU; drop keys MLPRegressor doesn't take twice
    members = [dict(c) for c in configs]
    return DeepEnsemble(n_members=len(members), members=members, epochs=epochs, random_state=seed)


def autodeuq(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    X_test: np.ndarray,
    n_members: int = 8,
    nas: AgingEvolutionSearch | None = None,
    run_nas: bool = True,
    nas_kwargs: dict | None = None,
    epochs: int = 40,
    seed: int = 0,
) -> AutoDeuqResult:
    """Joint NAS + ensemble + decomposition.

    Set ``run_nas=False`` to skip the search and use random architecture
    diversity (cheaper; the ablation bench compares both).
    """
    if nas is None and run_nas:
        nas = AgingEvolutionSearch(**(nas_kwargs or {}), seed=seed)
        nas.run(X_train, y_train, X_val, y_val)

    if nas is not None:
        ensemble = ensemble_from_nas(nas, n_members=n_members, epochs=epochs, seed=seed)
    else:
        ensemble = DeepEnsemble(n_members=n_members, diversity="arch", epochs=epochs, random_state=seed)

    X_fit = np.concatenate([X_train, X_val])
    y_fit = np.concatenate([y_train, y_val])
    ensemble.fit(X_fit, y_fit)
    return AutoDeuqResult(ensemble=ensemble, decomposition=ensemble.decompose(X_test), nas=nas)
