"""Cross-validation helpers."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.rng import generator_from

__all__ = ["kfold_indices", "cross_val_error"]


def kfold_indices(
    n: int, k: int = 5, rng: int | np.random.Generator = 0
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train, test) index pairs for shuffled k-fold CV."""
    if k < 2 or k > n:
        raise ValueError("k must be in [2, n]")
    gen = generator_from(rng)
    perm = gen.permutation(n)
    folds = np.array_split(perm, k)
    for i in range(k):
        test = np.sort(folds[i])
        train = np.sort(np.concatenate([folds[j] for j in range(k) if j != i]))
        yield train, test


def cross_val_error(model_factory, X: np.ndarray, y: np.ndarray, k: int = 5, metric=None, rng=0) -> float:
    """Mean metric over k folds; ``model_factory()`` returns a fresh estimator."""
    from repro.ml.metrics import median_abs_log_ratio

    metric = metric or median_abs_log_ratio
    # Hand estimators read-only VIEWS of private fold copies: they cannot
    # mutate the fold data, but — unlike truly frozen arrays — a read-only
    # view of a writable base fails the binning cache's ``_is_frozen``
    # walk, so these throwaway per-fold identities never enter (and never
    # churn) the 8-entry module-level LRU a concurrent sweep relies on.
    # Cache hits are impossible here anyway: fold slices are fresh objects
    # every call, and the cache is identity-keyed.
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)

    def _guarded(a: np.ndarray) -> np.ndarray:
        v = a.view()
        v.setflags(write=False)
        return v

    scores = []
    for train, test in kfold_indices(len(y), k, rng):
        model = model_factory()
        model.fit(_guarded(X[train]), y[train])
        scores.append(metric(y[test], model.predict(_guarded(X[test]))))
    return float(np.mean(scores))
