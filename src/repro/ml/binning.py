"""Quantile pre-binning for histogram gradient boosting.

Features are discretized once into at most 255 integer codes via quantile
edges (LightGBM/XGBoost-hist style).  Split search then runs on integer
codes with ``bincount`` kernels — the optimization that makes a pure-NumPy
GBM fast enough for the paper's sweeps.

Sweep-path caching
------------------
The paper's model sweeps (``hpo``/``agebo``/``model_selection``) fit
thousands of estimators on the *same* training matrix, and every fit used
to re-quantile and re-discretize it from scratch.  Two small module-level
LRU caches remove that redundancy:

* the **edge cache** maps ``(id(X), n_bins)`` → fitted quantile edges, and
* the **code cache** maps ``(id(X), id(edges))`` → the uint8 code matrix.

Keys are array *identities*: a weak reference to ``X`` is stored and
verified on lookup, so a recycled ``id`` after garbage collection can never
alias a stale entry, and the cache itself keeps no array alive.  Only
arrays marked **read-only** (``X.flags.writeable is False``) participate:
NumPy then guarantees the cached codes can never go stale through in-place
mutation (e.g. ``permutation_importance`` shuffling one column of the same
array object between predicts).  Sweep drivers opt in by freezing their
private copy once — see ``hpo._make_objective`` — after which thousands of
configs bin the shared matrix a single time.  Cached code matrices are
returned read-only and shared.  Binning is deterministic, hence cache hits
are byte-identical to recomputation.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict

import numpy as np

__all__ = ["QuantileBinner", "frozen_copy"]


def frozen_copy(X: np.ndarray) -> np.ndarray:
    """A private, contiguous, read-only float64 copy of ``X``.

    The sweep-driver opt-in gesture in one place: the returned array owns
    its memory and is immutable, so binding it repeatedly (``hpo``'s
    per-config closures, ``agebo``'s generations) makes every fit hit the
    identity-keyed caches below, and staleness is impossible.
    """
    X = np.array(X, dtype=np.float64, order="C")
    X.setflags(write=False)
    return X

_CACHE_MAX = 8
_cache_lock = threading.Lock()
#: (id(X), n_bins) -> (weakref(X), shape, edges)
_edge_cache: OrderedDict = OrderedDict()
#: (id(X), id(edges)) -> (weakref(X), shape, edges, codes)
_code_cache: OrderedDict = OrderedDict()


def _is_frozen(X: np.ndarray) -> bool:
    """True when ``X`` is immutable all the way down.

    ``writeable=False`` on a view is not enough — a read-only view of a
    writable base can still change under the cache.  Walk the base chain and
    require every ndarray link to be read-only, ending in owned memory.
    """
    a = X
    while isinstance(a, np.ndarray):
        if a.flags.writeable:
            return False
        a = a.base
    return a is None


def _cache_get(cache: OrderedDict, key: tuple, X: np.ndarray):
    """Return the cached entry if its weakly-referenced array is ``X``."""
    with _cache_lock:
        entry = cache.get(key)
        if entry is None:
            return None
        if entry[0]() is not X or entry[1] != X.shape:
            del cache[key]
            return None
        cache.move_to_end(key)
        return entry


def _cache_put(cache: OrderedDict, key: tuple, X: np.ndarray, payload: tuple) -> None:
    """Insert ``(weakref(X), X.shape, *payload)``, purging the entry when
    ``X`` dies so the cache never pins edges/codes past the array's life."""

    def _purge(ref: weakref.ref) -> None:
        with _cache_lock:
            entry = cache.get(key)
            if entry is not None and entry[0] is ref:  # not a reused-id newcomer
                del cache[key]

    with _cache_lock:
        cache[key] = (weakref.ref(X, _purge), X.shape, *payload)
        cache.move_to_end(key)
        while len(cache) > _CACHE_MAX:
            cache.popitem(last=False)


class QuantileBinner:
    """Per-feature quantile discretizer producing uint8 codes.

    ``transform`` maps values to the index of the first edge they do not
    exceed; values above the top edge land in the last bin, so test-time
    out-of-range values degrade gracefully.
    """

    def __init__(self, n_bins: int = 64):
        if not 2 <= n_bins <= 255:
            raise ValueError("n_bins must be in [2, 255]")
        self.n_bins = int(n_bins)
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "QuantileBinner":
        X = np.asarray(X, dtype=float)
        cacheable = _is_frozen(X)  # immutable arrays cannot go stale
        if cacheable:
            hit = _cache_get(_edge_cache, (id(X), self.n_bins), X)
            if hit is not None:
                self.edges_ = hit[2]
                return self
        qs = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        d = X.shape[1]
        if d and X.shape[0]:
            quantiles = np.quantile(X, qs, axis=0)  # (len(qs), d), one pass
            edges = [np.unique(quantiles[:, f]) for f in range(d)]
        else:
            edges = [np.unique(np.quantile(X[:, f], qs)) for f in range(d)]
        self.edges_ = edges
        if cacheable:
            _cache_put(_edge_cache, (id(X), self.n_bins), X, (edges,))
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("QuantileBinner.transform called before fit")
        X = np.asarray(X, dtype=float)
        if X.shape[1] != len(self.edges_):
            raise ValueError(
                f"feature count mismatch: fitted {len(self.edges_)}, got {X.shape[1]}"
            )
        cacheable = _is_frozen(X)
        if cacheable:
            hit = _cache_get(_code_cache, (id(X), id(self.edges_)), X)
            if hit is not None and hit[2] is self.edges_:
                return hit[3]
        codes = np.empty(X.shape, dtype=np.uint8)
        for f, edges in enumerate(self.edges_):
            codes[:, f] = np.searchsorted(edges, X[:, f], side="left")
        if cacheable:
            # shared across cache hits → hand out read-only
            codes.setflags(write=False)
            _cache_put(_code_cache, (id(X), id(self.edges_)), X, (self.edges_, codes))
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def actual_bins(self) -> int:
        """Largest code + 1 across features (≤ ``n_bins``)."""
        if self.edges_ is None:
            raise RuntimeError("binner not fitted")
        return max(len(e) for e in self.edges_) + 1
