"""Quantile pre-binning for histogram gradient boosting.

Features are discretized once into at most 255 integer codes via quantile
edges (LightGBM/XGBoost-hist style).  Split search then runs on integer
codes with ``bincount`` kernels — the optimization that makes a pure-NumPy
GBM fast enough for the paper's sweeps.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuantileBinner"]


class QuantileBinner:
    """Per-feature quantile discretizer producing uint8 codes.

    ``transform`` maps values to the index of the first edge they do not
    exceed; values above the top edge land in the last bin, so test-time
    out-of-range values degrade gracefully.
    """

    def __init__(self, n_bins: int = 64):
        if not 2 <= n_bins <= 255:
            raise ValueError("n_bins must be in [2, 255]")
        self.n_bins = int(n_bins)
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "QuantileBinner":
        X = np.asarray(X, dtype=float)
        qs = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        edges: list[np.ndarray] = []
        for f in range(X.shape[1]):
            col_edges = np.unique(np.quantile(X[:, f], qs))
            edges.append(col_edges)
        self.edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("QuantileBinner.transform called before fit")
        X = np.asarray(X, dtype=float)
        if X.shape[1] != len(self.edges_):
            raise ValueError(
                f"feature count mismatch: fitted {len(self.edges_)}, got {X.shape[1]}"
            )
        codes = np.empty(X.shape, dtype=np.uint8)
        for f, edges in enumerate(self.edges_):
            codes[:, f] = np.searchsorted(edges, X[:, f], side="left")
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def actual_bins(self) -> int:
        """Largest code + 1 across features (≤ ``n_bins``)."""
        if self.edges_ is None:
            raise RuntimeError("binner not fitted")
        return max(len(e) for e in self.edges_) + 1
