"""Estimator protocol, cloning, and a minimal Pipeline.

A deliberately small sklearn-like surface: ``fit(X, y) -> self``,
``predict(X) -> y``, ``get_params()/set_params()`` driven by constructor
signature introspection — enough for the sweep engine, HPO, and ensembles
to treat every model uniformly.
"""

from __future__ import annotations

import inspect
from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = ["Estimator", "BaseEstimator", "clone", "Pipeline"]


@runtime_checkable
class Estimator(Protocol):
    """Anything that fits and predicts."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Estimator": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...


class BaseEstimator:
    """get/set_params via constructor-signature introspection."""

    def get_params(self) -> dict[str, Any]:
        sig = inspect.signature(type(self).__init__)
        return {
            name: getattr(self, name)
            for name in sig.parameters
            if name != "self" and hasattr(self, name)
        }

    def set_params(self, **params: Any) -> "BaseEstimator":
        valid = self.get_params()
        for key, value in params.items():
            if key not in valid:
                raise ValueError(f"{type(self).__name__} has no parameter {key!r}")
            setattr(self, key, value)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({args})"


def clone(estimator: BaseEstimator, **overrides: Any) -> BaseEstimator:
    """Fresh, unfitted copy with the same (optionally overridden) params."""
    params = estimator.get_params()
    params.update(overrides)
    return type(estimator)(**params)


class Pipeline(BaseEstimator):
    """Transformer chain terminated by an estimator.

    Transformers expose ``fit_transform``/``transform``; only the final step
    needs ``fit``/``predict``.
    """

    def __init__(self, steps: list[tuple[str, Any]]):
        if not steps:
            raise ValueError("Pipeline needs at least one step")
        self.steps = steps

    @property
    def final(self) -> Any:
        return self.steps[-1][1]

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Pipeline":
        Z = X
        for _, step in self.steps[:-1]:
            Z = step.fit_transform(Z)
        self.final.fit(Z, y)
        return self

    def _transform(self, X: np.ndarray) -> np.ndarray:
        Z = X
        for _, step in self.steps[:-1]:
            Z = step.transform(Z)
        return Z

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.final.predict(self._transform(X))

    def predict_dist(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Forward to a probabilistic final step (mean, variance)."""
        return self.final.predict_dist(self._transform(X))
