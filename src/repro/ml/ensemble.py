"""Deep ensembles with aleatory/epistemic uncertainty decomposition.

The paper's §VIII uses the Lakshminarayanan-style decomposition (via
AutoDEUQ): each ensemble member ``i`` predicts a Gaussian (μᵢ, σᵢ²); by the
law of total variance the predictive variance splits into

* **aleatory**  AU = E_i[σᵢ²]   — noise the members agree on, and
* **epistemic** EU = Var_i[μᵢ]  — member disagreement, large off-distribution.

Members differ by seed and (optionally) architecture/hyperparameters —
the paper notes diversity beyond seeds sharpens the EU signal, which the
``diversity`` knob reproduces (and the ablation bench measures).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.data.preprocessing import Standardizer
from repro.ml.base import BaseEstimator, Pipeline
from repro.ml.nn import MLPRegressor
from repro.parallel.pool import parallel_map
from repro.rng import generator_from

__all__ = ["DeepEnsemble", "UncertaintyDecomposition"]


def _fit_member(config: dict, X: np.ndarray, y_scaled: np.ndarray) -> Pipeline:
    """Train one ensemble member; module-level for process-pool pickling."""
    model = Pipeline([("scale", Standardizer()), ("mlp", MLPRegressor(**config))])
    model.fit(X, y_scaled)
    return model


@dataclass
class UncertaintyDecomposition:
    """Per-sample uncertainty split (all in dex² unless noted)."""

    mean: np.ndarray
    aleatory: np.ndarray      # AU = E[σᵢ²]
    epistemic: np.ndarray     # EU = Var[μᵢ]

    @property
    def total(self) -> np.ndarray:
        return self.aleatory + self.epistemic

    @property
    def aleatory_std(self) -> np.ndarray:
        """AU in dex — the scale plotted in Fig. 5."""
        return np.sqrt(self.aleatory)

    @property
    def epistemic_std(self) -> np.ndarray:
        return np.sqrt(self.epistemic)


_ARCH_CHOICES: tuple[tuple[int, ...], ...] = (
    (64,), (128,), (256,), (64, 64), (128, 128), (256, 128), (128, 64, 64),
)
_LR_CHOICES = (3e-4, 1e-3, 3e-3)
_DROP_CHOICES = (0.0, 0.05, 0.1)


class DeepEnsemble(BaseEstimator):
    """Ensemble of NLL-head MLPs (each wrapped with its own Standardizer).

    ``diversity="seed"`` trains one architecture with different seeds;
    ``diversity="arch"`` additionally varies architecture and
    hyperparameters per member (AutoDEUQ-style).  ``members`` may instead
    be an explicit list of MLP parameter dicts (e.g. NAS winners).
    """

    def __init__(
        self,
        n_members: int = 8,
        diversity: str = "arch",
        members: list[dict] | None = None,
        epochs: int = 40,
        n_jobs: int | None = 1,
        random_state: int = 0,
    ):
        if diversity not in ("seed", "arch"):
            raise ValueError("diversity must be 'seed' or 'arch'")
        self.n_members = int(n_members)
        self.diversity = diversity
        self.members = members
        self.epochs = int(epochs)
        self.n_jobs = n_jobs
        self.random_state = int(random_state)
        self.models_: list[Pipeline] = []

    def _member_configs(self) -> list[dict]:
        if self.members is not None:
            configs = [dict(m) for m in self.members]
        else:
            rng = generator_from(self.random_state)
            configs = []
            for i in range(self.n_members):
                if self.diversity == "arch":
                    configs.append(
                        {
                            "hidden": _ARCH_CHOICES[int(rng.integers(len(_ARCH_CHOICES)))],
                            "learning_rate": float(rng.choice(_LR_CHOICES)),
                            "dropout": float(rng.choice(_DROP_CHOICES)),
                        }
                    )
                else:
                    configs.append({"hidden": (128, 128), "learning_rate": 1e-3, "dropout": 0.0})
        for i, c in enumerate(configs):
            c.setdefault("epochs", self.epochs)
            c["loss"] = "nll"
            c["random_state"] = self.random_state * 10_007 + i
        return configs

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DeepEnsemble":
        # Standardize the target as well as the features: the NLL head's
        # log-variance output starts near 0 (σ ≈ 1), so members must be
        # trained in a space where unit variance is the right order of
        # magnitude — otherwise AU stays pinned at its initialization for
        # tens of epochs and the Fig. 5 decomposition is meaningless.
        y = np.asarray(y, dtype=float)
        self._y_mean = float(y.mean())
        self._y_std = float(max(y.std(), 1e-9))
        y_scaled = (y - self._y_mean) / self._y_std
        # members carry their own seeds in their configs, so training them
        # through parallel_map is order-independent and n_jobs-invariant
        self.models_ = parallel_map(
            partial(_fit_member, X=np.asarray(X, dtype=float), y_scaled=y_scaled),
            self._member_configs(),
            workers=self.n_jobs,
        )
        return self

    def _member_predictions(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if not self.models_:
            raise RuntimeError("predict called before fit")
        mus, variances = [], []
        for model in self.models_:
            mu, var = model.predict_dist(X)
            mus.append(mu * self._y_std + self._y_mean)
            variances.append(var * self._y_std**2)
        return np.stack(mus), np.stack(variances)

    def predict(self, X: np.ndarray) -> np.ndarray:
        mus, _ = self._member_predictions(X)
        return mus.mean(axis=0)

    def decompose(self, X: np.ndarray) -> UncertaintyDecomposition:
        """Law-of-total-variance split of the predictive distribution."""
        mus, variances = self._member_predictions(X)
        return UncertaintyDecomposition(
            mean=mus.mean(axis=0),
            aleatory=variances.mean(axis=0),
            epistemic=mus.var(axis=0),
        )
