"""k-nearest-neighbour regression and distance-based novelty scores.

Two uses in the reproduction:

* :class:`KNeighborsRegressor` joins the model zoo as the classic
  non-parametric baseline ("is the signal local in feature space?").
* :func:`knn_novelty` is the *non-ensemble* out-of-distribution detector
  the OoD-ablation bench contrasts with deep-ensemble epistemic
  uncertainty (§VIII): the distance to the k-th nearest training job is a
  density proxy — rare jobs sit far from everything seen in training.

Distances are computed brute-force in chunks: with d ≈ 50–130 features and
up to ~10⁵ training rows, a blocked ``(x−c)² = x² − 2x·c + c²`` expansion
saturates BLAS and needs no spatial index.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator

__all__ = ["KNeighborsRegressor", "knn_novelty"]

_CHUNK_ROWS = 2048


def _pairwise_sq_dists(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances (len(A), len(B)), clipped at zero."""
    sq = (A**2).sum(axis=1)[:, None] - 2.0 * (A @ B.T) + (B**2).sum(axis=1)[None, :]
    return np.maximum(sq, 0.0)


def _kth_smallest(row_block: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Indices and values of the k smallest entries per row (unordered)."""
    idx = np.argpartition(row_block, k - 1, axis=1)[:, :k]
    vals = np.take_along_axis(row_block, idx, axis=1)
    return idx, vals


class KNeighborsRegressor(BaseEstimator):
    """Standardized brute-force kNN regression.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours averaged per query.
    weights:
        ``"uniform"`` or ``"distance"`` (inverse-distance weighting with an
        ε floor so exact duplicates do not divide by zero — and duplicate
        jobs are the *defining* feature of these datasets).
    standardize:
        Z-score features with the training statistics before measuring
        distance.  Raw Darshan counters span 9 orders of magnitude, so this
        is on by default.
    """

    def __init__(
        self,
        n_neighbors: int = 8,
        weights: str = "uniform",
        standardize: bool = True,
    ):
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = int(n_neighbors)
        self.weights = weights
        self.standardize = bool(standardize)
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def _project(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if not self.standardize:
            return X
        return (X - self._mean) / self._scale

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y row counts differ")
        if X.shape[0] < self.n_neighbors:
            raise ValueError("fewer training rows than n_neighbors")
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        self._X = self._project(X)
        self._y = y
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("predict called before fit")
        Q = self._project(X)
        k = self.n_neighbors
        out = np.empty(Q.shape[0])
        for lo in range(0, Q.shape[0], _CHUNK_ROWS):
            block = _pairwise_sq_dists(Q[lo : lo + _CHUNK_ROWS], self._X)
            idx, sqd = _kth_smallest(block, k)
            neigh_y = self._y[idx]
            if self.weights == "uniform":
                out[lo : lo + block.shape[0]] = neigh_y.mean(axis=1)
            else:
                w = 1.0 / (np.sqrt(sqd) + 1e-9)
                out[lo : lo + block.shape[0]] = (neigh_y * w).sum(axis=1) / w.sum(axis=1)
        return out


def knn_novelty(
    X_train: np.ndarray,
    X_query: np.ndarray,
    k: int = 10,
    standardize: bool = True,
    exclude_self: bool = False,
) -> np.ndarray:
    """Distance to the k-th nearest training row — a density-based OoD score.

    ``exclude_self=True`` skips zero-distance matches, for scoring the
    training set against itself (duplicate jobs otherwise make every
    duplicate look maximally in-distribution, which is in fact correct —
    hence the default ``False``).
    """
    X_train = np.asarray(X_train, dtype=float)
    X_query = np.asarray(X_query, dtype=float)
    if k < 1:
        raise ValueError("k must be >= 1")
    if X_train.shape[0] <= k:
        raise ValueError("need more than k training rows")
    if standardize:
        mean = X_train.mean(axis=0)
        scale = X_train.std(axis=0)
        scale[scale == 0.0] = 1.0
        X_train = (X_train - mean) / scale
        X_query = (X_query - mean) / scale

    kk = k + 1 if exclude_self else k
    out = np.empty(X_query.shape[0])
    for lo in range(0, X_query.shape[0], _CHUNK_ROWS):
        block = _pairwise_sq_dists(X_query[lo : lo + _CHUNK_ROWS], X_train)
        _, sqd = _kth_smallest(block, kk)
        sqd = np.sort(sqd, axis=1)
        col = kk - 1
        out[lo : lo + block.shape[0]] = np.sqrt(sqd[:, col])
    return out
