"""Random-forest regression on binned trees (bagging substrate).

The I/O-modeling literature the paper surveys leans on tree ensembles
beyond boosting — random forests appear as baselines in Tuncer et al. and
in the regression studies of Xie et al.  This implementation reuses the
histogram :class:`~repro.ml.tree.BinnedTree` kernel: a plain regression
tree is the Newton tree fitted to ``grad = -y`` with unit hessians, whose
leaf value ``−G/(H+λ)`` is then the (λ-shrunk) leaf mean of ``y``.

Beyond point predictions the forest exposes

* out-of-bag (OOB) error — a free generalization estimate used by the
  model-zoo ablation bench, and
* per-sample tree-variance — a cheap disagreement signal contrasted with
  deep-ensemble epistemic uncertainty in the OoD-detector ablation.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.ml.base import BaseEstimator, clone
from repro.ml.binning import QuantileBinner
from repro.ml.predictor import CHUNK_PAIRS, PackedForest, concat_apply_split, ensure_pack
from repro.ml.tree import BinnedTree
from repro.parallel.pool import parallel_map
from repro.rng import generator_from

__all__ = ["RandomForestRegressor"]


def _fit_one_tree(
    seed: np.random.SeedSequence,
    codes: np.ndarray,
    y: np.ndarray,
    n_feats: int,
    bootstrap: bool,
    tree_params: dict,
) -> tuple[BinnedTree, np.ndarray | None, np.ndarray | None]:
    """Train one forest member from its own spawned seed stream.

    Module-level (not a closure) so the parallel path can ship it to
    worker processes; with the thread backend ``codes``/``y`` are shared.
    Returns the tree, its feature mask, and its in-bag membership packed
    to bits (n/8 bytes instead of an n-length index array) for the OOB
    pass.
    """
    rng = generator_from(seed)
    n, d = codes.shape
    mask = None
    if n_feats < d:
        mask = np.zeros(d, dtype=bool)
        mask[rng.choice(d, n_feats, replace=False)] = True
    if bootstrap:
        rows = rng.integers(0, n, n)
        in_bag = np.zeros(n, dtype=bool)
        in_bag[rows] = True
        bag_bits = np.packbits(in_bag)
    else:
        rows = np.arange(n)
        bag_bits = None
    tree = BinnedTree(**tree_params)
    # Newton tree on grad=-y, unit hessians ⇒ leaves are shrunk means
    tree.fit(codes[rows], -y[rows], None, mask)
    return tree, mask, bag_bits


class RandomForestRegressor(BaseEstimator):
    """Bagged binned regression trees with per-tree feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth:
        Depth cap per tree (forests want deep trees; default 14).
    min_child_weight:
        Minimum samples per leaf (hessians are unit, so this is a count).
    max_features:
        Fraction of features drawn per tree, in (0, 1].  Forest convention
        is per-*split* sampling; per-tree sampling keeps the histogram
        kernel intact and decorrelates trees nearly as well at our
        dimensionality (d ≈ 50–130).
    bootstrap:
        Draw each tree's rows with replacement (classic bagging).  When
        false every tree sees all rows and only feature sampling
        decorrelates them.
    reg_lambda:
        Leaf-mean shrinkage (0 reproduces exact leaf means).
    n_bins:
        Histogram resolution shared by all trees.
    n_jobs:
        Worker count for tree training via :func:`repro.parallel.pool
        .parallel_map` (thread backend — the histogram kernels are NumPy
        bound).  Every tree draws from its own ``SeedSequence``-spawned
        stream, so results are identical for any ``n_jobs``.

    Prediction packs all trees into a :class:`~repro.ml.predictor
    .PackedForest` (built lazily at first use) and evaluates the whole
    ensemble in one vectorized pass; the per-tree matrix is bit-identical
    to looping ``tree.predict``.
    """

    def __init__(
        self,
        n_estimators: int = 200,
        max_depth: int = 14,
        min_child_weight: float = 3.0,
        max_features: float = 0.6,
        bootstrap: bool = True,
        reg_lambda: float = 0.0,
        n_bins: int = 64,
        n_jobs: int | None = 1,
        random_state: int = 0,
    ):
        if not 0.0 < max_features <= 1.0:
            raise ValueError("max_features must be in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.min_child_weight = float(min_child_weight)
        self.max_features = float(max_features)
        self.bootstrap = bool(bootstrap)
        self.reg_lambda = float(reg_lambda)
        self.n_bins = int(n_bins)
        self.n_jobs = n_jobs
        self.random_state = int(random_state)

        self.binner_: QuantileBinner | None = None
        self.trees_: list[BinnedTree] = []
        self.feature_masks_: list[np.ndarray] = []
        self.oob_prediction_: np.ndarray | None = None
        self.oob_mae_: float | None = None
        self._pack: PackedForest | None = None

    def _ensure_pack(self) -> PackedForest:
        self._pack = ensure_pack(self._pack, self.trees_)
        return self._pack

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y row counts differ")
        n, d = X.shape
        if n < 2:
            raise ValueError("need at least 2 samples")

        self.binner_ = QuantileBinner(self.n_bins)
        codes = self.binner_.fit_transform(X)  # identity-cached across sweeps
        n_feats = max(1, int(round(self.max_features * d)))
        self._pack = None

        # one independent child stream per tree: results do not depend on
        # training order, so any n_jobs produces identical forests
        seeds = np.random.SeedSequence(self.random_state).spawn(self.n_estimators)
        fit_one = partial(
            _fit_one_tree,
            codes=codes,
            y=y,
            n_feats=n_feats,
            bootstrap=self.bootstrap,
            tree_params=dict(
                max_depth=self.max_depth,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                n_bins=self.n_bins,
            ),
        )
        results = parallel_map(fit_one, seeds, workers=self.n_jobs, backend="thread")

        self.trees_ = [tree for tree, _, _ in results]
        self.feature_masks_ = [
            mask if mask is not None else np.ones(d, dtype=bool) for _, mask, _ in results
        ]

        self.oob_prediction_ = None
        self.oob_mae_ = None
        if self.bootstrap and self.trees_:
            # vectorized OOB pass, done once at the end: the packed matrix
            # gives every (tree, sample) prediction, and the bit-packed
            # in-bag masks unpack per sample block — peak memory stays
            # O(T·n/8 + T·block) instead of a full (T, n) float matrix
            T = len(self.trees_)
            pack = self._ensure_pack()
            bag_bits = np.stack([bits for _, _, bits in results])       # (T, ⌈n/8⌉)
            oob_sum = np.zeros(n)
            oob_count = np.zeros(n, dtype=np.int64)
            block = max(8, (CHUNK_PAIRS // T) & ~7)                     # byte-aligned
            for s in range(0, n, block):
                e = min(n, s + block)
                mat_b = pack.predict_matrix(codes[s:e])
                in_bag_b = np.unpackbits(
                    bag_bits[:, s // 8 : (e + 7) // 8], axis=1, count=e - s
                ).astype(bool)
                oob_b = ~in_bag_b
                oob_count[s:e] = oob_b.sum(axis=0)
                oob_sum[s:e] = np.sum(mat_b, axis=0, where=oob_b)
            seen = oob_count > 0
            if np.any(seen):
                oob = np.full(n, np.nan)
                oob[seen] = oob_sum[seen] / oob_count[seen]
                self.oob_prediction_ = oob
                self.oob_mae_ = float(np.mean(np.abs(oob[seen] - y[seen])))
        return self

    # ------------------------------------------------------------------ #
    def _tree_matrix(self, X: np.ndarray) -> np.ndarray:
        """(n_trees, n_samples) per-tree predictions (packed evaluation)."""
        if self.binner_ is None or not self.trees_:
            raise RuntimeError("predict called before fit")
        codes = self.binner_.transform(np.asarray(X, dtype=float))
        return self._ensure_pack().predict_matrix(codes)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._tree_matrix(X).mean(axis=0)

    def predict_dist(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(mean, across-tree variance) — tree disagreement as a UQ signal."""
        mat = self._tree_matrix(X)
        return mat.mean(axis=0), mat.var(axis=0)

    def _tree_matrix_many(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Per-block (n_trees, m) matrices from one transform + arena pass."""
        return concat_apply_split(blocks, self._tree_matrix, axis=1)

    def predict_many(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Batch-of-batches: many small requests, one packed-arena pass.

        Transform, routing, and the across-tree reductions are all
        per-sample/per-column, so every returned vector is bit-identical
        to ``predict(block)`` — the contract the serving micro-batcher
        relies on.
        """
        return [m.mean(axis=0) for m in self._tree_matrix_many(blocks)]

    def predict_dist_many(
        self, blocks: list[np.ndarray]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched :meth:`predict_dist`, one arena pass for all blocks."""
        return [(m.mean(axis=0), m.var(axis=0)) for m in self._tree_matrix_many(blocks)]

    def truncated(self, n_trees: int) -> "RandomForestRegressor":
        """A view keeping only the first ``n_trees`` members.

        Shares the binner and tree objects and *reuses* the packed arena
        (roots sliced, node arrays shared).  At least one tree must remain
        — a forest mean over zero trees is undefined (unlike a GBM, which
        falls back to its base score).  OOB statistics are not carried
        over — they describe the full ensemble, not the prefix.
        """
        if self.binner_ is None:
            raise RuntimeError("truncated called before fit")
        n_trees = int(n_trees)
        if not 1 <= n_trees <= len(self.trees_):
            raise ValueError(f"n_trees must be in [1, {len(self.trees_)}], got {n_trees}")
        out = clone(self, n_estimators=n_trees)
        out.binner_ = self.binner_
        out.trees_ = self.trees_[:n_trees]
        out.feature_masks_ = self.feature_masks_[:n_trees]
        out._pack = self._ensure_pack().truncated(n_trees)
        return out

    def feature_importances(self, n_features: int | None = None) -> np.ndarray:
        """Split-count importance, normalized to sum to one."""
        if not self.trees_:
            raise RuntimeError("feature_importances called before fit")
        if n_features is None:
            n_features = len(self.binner_.edges_) if self.binner_ else 0
        counts = np.zeros(int(n_features))
        for tree in self.trees_:
            nd = tree.nodes_
            internal = nd.feature[nd.feature >= 0]
            counts += np.bincount(internal, minlength=int(n_features))
        total = counts.sum()
        return counts / total if total > 0 else counts
