"""Random-forest regression on binned trees (bagging substrate).

The I/O-modeling literature the paper surveys leans on tree ensembles
beyond boosting — random forests appear as baselines in Tuncer et al. and
in the regression studies of Xie et al.  This implementation reuses the
histogram :class:`~repro.ml.tree.BinnedTree` kernel: a plain regression
tree is the Newton tree fitted to ``grad = -y`` with unit hessians, whose
leaf value ``−G/(H+λ)`` is then the (λ-shrunk) leaf mean of ``y``.

Beyond point predictions the forest exposes

* out-of-bag (OOB) error — a free generalization estimate used by the
  model-zoo ablation bench, and
* per-sample tree-variance — a cheap disagreement signal contrasted with
  deep-ensemble epistemic uncertainty in the OoD-detector ablation.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator
from repro.ml.binning import QuantileBinner
from repro.ml.tree import BinnedTree
from repro.rng import generator_from

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor(BaseEstimator):
    """Bagged binned regression trees with per-tree feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth:
        Depth cap per tree (forests want deep trees; default 14).
    min_child_weight:
        Minimum samples per leaf (hessians are unit, so this is a count).
    max_features:
        Fraction of features drawn per tree, in (0, 1].  Forest convention
        is per-*split* sampling; per-tree sampling keeps the histogram
        kernel intact and decorrelates trees nearly as well at our
        dimensionality (d ≈ 50–130).
    bootstrap:
        Draw each tree's rows with replacement (classic bagging).  When
        false every tree sees all rows and only feature sampling
        decorrelates them.
    reg_lambda:
        Leaf-mean shrinkage (0 reproduces exact leaf means).
    n_bins:
        Histogram resolution shared by all trees.
    """

    def __init__(
        self,
        n_estimators: int = 200,
        max_depth: int = 14,
        min_child_weight: float = 3.0,
        max_features: float = 0.6,
        bootstrap: bool = True,
        reg_lambda: float = 0.0,
        n_bins: int = 64,
        random_state: int = 0,
    ):
        if not 0.0 < max_features <= 1.0:
            raise ValueError("max_features must be in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.min_child_weight = float(min_child_weight)
        self.max_features = float(max_features)
        self.bootstrap = bool(bootstrap)
        self.reg_lambda = float(reg_lambda)
        self.n_bins = int(n_bins)
        self.random_state = int(random_state)

        self.binner_: QuantileBinner | None = None
        self.trees_: list[BinnedTree] = []
        self.feature_masks_: list[np.ndarray] = []
        self.oob_prediction_: np.ndarray | None = None
        self.oob_mae_: float | None = None

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y row counts differ")
        n, d = X.shape
        if n < 2:
            raise ValueError("need at least 2 samples")
        rng = generator_from(self.random_state)

        self.binner_ = QuantileBinner(self.n_bins).fit(X)
        codes = self.binner_.transform(X)
        n_feats = max(1, int(round(self.max_features * d)))

        self.trees_ = []
        self.feature_masks_ = []
        oob_sum = np.zeros(n)
        oob_count = np.zeros(n)

        for _ in range(self.n_estimators):
            mask = None
            if n_feats < d:
                mask = np.zeros(d, dtype=bool)
                mask[rng.choice(d, n_feats, replace=False)] = True
            if self.bootstrap:
                rows = rng.integers(0, n, n)
            else:
                rows = np.arange(n)

            tree = BinnedTree(
                max_depth=self.max_depth,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                n_bins=self.n_bins,
            )
            # Newton tree on grad=-y, unit hessians ⇒ leaves are shrunk means
            tree.fit(codes[rows], -y[rows], None, mask)
            self.trees_.append(tree)
            self.feature_masks_.append(mask if mask is not None else np.ones(d, dtype=bool))

            if self.bootstrap:
                in_bag = np.zeros(n, dtype=bool)
                in_bag[rows] = True
                out = ~in_bag
                if np.any(out):
                    oob_sum[out] += tree.predict(codes[out])
                    oob_count[out] += 1

        if self.bootstrap and np.any(oob_count > 0):
            seen = oob_count > 0
            oob = np.full(n, np.nan)
            oob[seen] = oob_sum[seen] / oob_count[seen]
            self.oob_prediction_ = oob
            self.oob_mae_ = float(np.mean(np.abs(oob[seen] - y[seen])))
        return self

    # ------------------------------------------------------------------ #
    def _tree_matrix(self, X: np.ndarray) -> np.ndarray:
        """(n_trees, n_samples) per-tree predictions."""
        if self.binner_ is None or not self.trees_:
            raise RuntimeError("predict called before fit")
        codes = self.binner_.transform(np.asarray(X, dtype=float))
        out = np.empty((len(self.trees_), codes.shape[0]))
        for i, tree in enumerate(self.trees_):
            out[i] = tree.predict(codes)
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._tree_matrix(X).mean(axis=0)

    def predict_dist(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(mean, across-tree variance) — tree disagreement as a UQ signal."""
        mat = self._tree_matrix(X)
        return mat.mean(axis=0), mat.var(axis=0)

    def feature_importances(self, n_features: int | None = None) -> np.ndarray:
        """Split-count importance, normalized to sum to one."""
        if not self.trees_:
            raise RuntimeError("feature_importances called before fit")
        if n_features is None:
            n_features = len(self.binner_.edges_) if self.binner_ else 0
        counts = np.zeros(int(n_features))
        for tree in self.trees_:
            nd = tree.nodes_
            internal = nd.feature[nd.feature >= 0]
            counts += np.bincount(internal, minlength=int(n_features))
        total = counts.sum()
        return counts / total if total > 0 else counts
