"""Binned regression trees with second-order (Newton) split gain.

The tree consumes pre-binned uint8 codes plus per-sample gradient/hessian
and grows *level-wise*: all nodes of one depth are split together using a
single ``bincount`` over a composite (feature, node, bin) key — the
vectorization that keeps the pure-NumPy GBM competitive.

Split gain is XGBoost's:

    gain = GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ)

and leaf values are the Newton step ``−G/(H+λ)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BinnedTree", "TreeNodes"]


@dataclass
class TreeNodes:
    """Flat array representation of a fitted tree."""

    feature: np.ndarray      # int32, -1 for leaves
    threshold: np.ndarray    # uint8 bin id: go left when code <= threshold
    left: np.ndarray         # int32 child indices
    right: np.ndarray
    value: np.ndarray        # float leaf values (Newton steps)

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    @property
    def n_leaves(self) -> int:
        return int(np.sum(self.feature < 0))

    @property
    def depth(self) -> int:
        """Maximum root-to-leaf depth (0 for a stump with no split)."""
        depth = np.zeros(self.n_nodes, dtype=np.int32)
        for i in range(self.n_nodes):  # parents precede children by construction
            if self.feature[i] >= 0:
                depth[self.left[i]] = depth[i] + 1
                depth[self.right[i]] = depth[i] + 1
        return int(depth.max(initial=0))


class BinnedTree:
    """One regression tree over binned features.

    Parameters mirror XGBoost: ``max_depth``, ``min_child_weight`` (minimum
    hessian mass per child), ``reg_lambda``, and an optional feature mask
    for column subsampling.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_child_weight: float = 5.0,
        reg_lambda: float = 1.0,
        n_bins: int = 64,
    ):
        self.max_depth = int(max_depth)
        self.min_child_weight = float(min_child_weight)
        self.reg_lambda = float(reg_lambda)
        self.n_bins = int(n_bins)
        self.nodes_: TreeNodes | None = None

    # ------------------------------------------------------------------ #
    def fit(
        self,
        codes: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray | None = None,
        feature_mask: np.ndarray | None = None,
    ) -> "BinnedTree":
        """Grow the tree on ``codes`` (n, d) uint8 with gradients ``grad``.

        ``hess=None`` means unit hessians (squared loss), which enables a
        faster weight-free ``bincount`` for the hessian histograms.
        """
        codes = np.ascontiguousarray(codes)
        n, d = codes.shape
        grad = np.asarray(grad, dtype=np.float64)
        unit_hess = hess is None
        hess_arr = np.ones(n) if unit_hess else np.asarray(hess, dtype=np.float64)

        if feature_mask is None:
            feat_ids = np.arange(d, dtype=np.int64)
        else:
            feat_ids = np.flatnonzero(np.asarray(feature_mask))
            if feat_ids.size == 0:
                raise ValueError("feature_mask selects no features")
        codes_sel = codes[:, feat_ids].T  # (d_sel, n) for contiguous per-feature rows
        d_sel = feat_ids.size
        nb = self.n_bins
        lam = self.reg_lambda

        # growing state
        feature: list[int] = [-1]
        threshold: list[int] = [0]
        left: list[int] = [-1]
        right: list[int] = [-1]
        value: list[float] = [0.0]
        node_of_sample = np.zeros(n, dtype=np.int64)   # tree-node index per sample
        active = [0]                                   # frontier node ids

        for _ in range(self.max_depth):
            if not active:
                break
            k = len(active)
            # compact frontier ids to 0..k-1
            remap = np.full(len(feature), -1, dtype=np.int64)
            remap[np.asarray(active)] = np.arange(k)
            local = remap[node_of_sample]              # -1 for settled samples
            in_frontier = local >= 0
            loc = local[in_frontier]
            sub_codes = codes_sel[:, in_frontier]      # (d_sel, m)
            g = grad[in_frontier]
            h = hess_arr[in_frontier]
            m = loc.shape[0]
            if m == 0:
                break

            # composite key: ((feature * k) + node) * nb + bin
            base = (np.arange(d_sel, dtype=np.int64)[:, None] * k + loc[None, :]) * nb
            flat = (base + sub_codes).ravel()
            size = d_sel * k * nb
            g_hist = np.bincount(flat, weights=np.broadcast_to(g, (d_sel, m)).ravel(), minlength=size)
            if unit_hess:
                h_hist = np.bincount(flat, minlength=size).astype(np.float64)
            else:
                h_hist = np.bincount(flat, weights=np.broadcast_to(h, (d_sel, m)).ravel(), minlength=size)
            g_hist = g_hist.reshape(d_sel, k, nb)
            h_hist = h_hist.reshape(d_sel, k, nb)

            # cumulative over bins -> left-side aggregates for each threshold
            GL = np.cumsum(g_hist, axis=2)
            HL = np.cumsum(h_hist, axis=2)
            G = GL[:, :, -1]                           # (d_sel, k) node totals
            H = HL[:, :, -1]
            GR = G[:, :, None] - GL
            HR = H[:, :, None] - HL

            valid = (HL >= self.min_child_weight) & (HR >= self.min_child_weight)
            # 0/0 can occur in masked-out entries when lam == 0; `valid` hides them
            with np.errstate(divide="ignore", invalid="ignore"):
                gain = np.where(
                    valid,
                    GL**2 / (HL + lam) + GR**2 / (HR + lam) - (G**2 / (H + lam))[:, :, None],
                    -np.inf,
                )
            flat_gain = gain.reshape(d_sel * k, nb).max(axis=1)
            flat_arg = gain.reshape(d_sel * k, nb).argmax(axis=1)
            per_node_gain = flat_gain.reshape(d_sel, k)
            best_feat_local = per_node_gain.argmax(axis=0)          # (k,)
            best_gain = per_node_gain[best_feat_local, np.arange(k)]
            best_bin = flat_arg.reshape(d_sel, k)[best_feat_local, np.arange(k)]

            new_active: list[int] = []
            split_feat_of = np.full(k, -1, dtype=np.int64)
            split_bin_of = np.zeros(k, dtype=np.int64)
            for ki in range(k):
                node_id = active[ki]
                if not np.isfinite(best_gain[ki]) or best_gain[ki] <= 1e-12:
                    # leaf: Newton value
                    g_tot = G[0, ki] if d_sel else 0.0
                    h_tot = H[0, ki] if d_sel else 0.0
                    value[node_id] = float(-g_tot / (h_tot + lam))
                    continue
                f_local = int(best_feat_local[ki])
                split_feat_of[ki] = f_local
                split_bin_of[ki] = int(best_bin[ki])
                feature[node_id] = int(feat_ids[f_local])
                threshold[node_id] = int(best_bin[ki])
                left[node_id] = len(feature)
                right[node_id] = len(feature) + 1
                for _child in range(2):
                    feature.append(-1)
                    threshold.append(0)
                    left.append(-1)
                    right.append(-1)
                    value.append(0.0)
                new_active.extend([left[node_id], right[node_id]])

            # route samples of split nodes to children (vectorized)
            split_mask_per_node = split_feat_of >= 0
            if np.any(split_mask_per_node):
                is_split_sample = split_mask_per_node[loc]
                rows = np.flatnonzero(in_frontier)[is_split_sample]
                loc_s = loc[is_split_sample]
                f_of_s = split_feat_of[loc_s]
                code_at = sub_codes[f_of_s, np.flatnonzero(is_split_sample)]
                go_left = code_at <= split_bin_of[loc_s]
                parents = np.asarray(active, dtype=np.int64)[loc_s]
                lefts = np.asarray(left, dtype=np.int64)[parents]
                rights = np.asarray(right, dtype=np.int64)[parents]
                node_of_sample[rows] = np.where(go_left, lefts, rights)
            active = new_active

        # settle remaining frontier nodes as leaves
        if active:
            act = np.asarray(active)
            remap = np.full(len(feature), -1, dtype=np.int64)
            remap[act] = np.arange(len(active))
            local = remap[node_of_sample]
            sel = local >= 0
            g_tot = np.bincount(local[sel], weights=grad[sel], minlength=len(active))
            h_tot = np.bincount(local[sel], weights=hess_arr[sel], minlength=len(active))
            for ki, node_id in enumerate(active):
                value[node_id] = float(-g_tot[ki] / (h_tot[ki] + lam))

        self.nodes_ = TreeNodes(
            feature=np.asarray(feature, dtype=np.int32),
            threshold=np.asarray(threshold, dtype=np.int64),
            left=np.asarray(left, dtype=np.int32),
            right=np.asarray(right, dtype=np.int32),
            value=np.asarray(value, dtype=np.float64),
        )
        return self

    # ------------------------------------------------------------------ #
    def predict(self, codes: np.ndarray) -> np.ndarray:
        """Evaluate the tree on binned features (vectorized node routing)."""
        if self.nodes_ is None:
            raise RuntimeError("BinnedTree.predict called before fit")
        nd = self.nodes_
        codes = np.ascontiguousarray(codes)
        n = codes.shape[0]
        cur = np.zeros(n, dtype=np.int32)
        for _ in range(self.max_depth + 1):
            feat = nd.feature[cur]
            internal = feat >= 0
            if not np.any(internal):
                break
            rows = np.flatnonzero(internal)
            f = feat[rows]
            go_left = codes[rows, f] <= nd.threshold[cur[rows]]
            cur[rows] = np.where(go_left, nd.left[cur[rows]], nd.right[cur[rows]])
        return nd.value[cur]
