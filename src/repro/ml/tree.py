"""Binned regression trees with second-order (Newton) split gain.

The tree consumes pre-binned uint8 codes plus per-sample gradient/hessian
and grows *level-wise*: all nodes of one depth are split together using a
single ``bincount`` over a composite (feature, node, bin) key — the
vectorization that keeps the pure-NumPy GBM competitive.

Split gain is XGBoost's:

    gain = GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ)

and leaf values are the Newton step ``−G/(H+λ)``.

Histogram subtraction (LightGBM/XGBoost trick): a node's histogram is the
sum of its children's, so after the root level only the *smaller* child of
each split is histogrammed directly and the sibling is derived by
subtracting it from the cached parent histogram — at most half the frontier
samples are binned per level.  Totals derived this way can differ from a
direct ``bincount`` in the last ulp (float summation order), which may move
leaf values by ~1e-16 relative but does not change tree structure on
continuous data; ``hist_subtraction=False`` restores the direct path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BinnedTree", "TreeNodes"]


@dataclass
class TreeNodes:
    """Flat array representation of a fitted tree.

    Layout invariants (relied on by :class:`repro.ml.predictor.PackedForest`):
    ``feature`` is int32 (-1 for leaves), ``threshold`` is uint8 (go left when
    code <= threshold), ``left``/``right`` are int32 with ``right == left + 1``
    for every internal node (children are always appended adjacently), and
    ``value`` is float64.
    """

    feature: np.ndarray      # int32, -1 for leaves
    threshold: np.ndarray    # uint8 bin id: go left when code <= threshold
    left: np.ndarray         # int32 child indices
    right: np.ndarray
    value: np.ndarray        # float leaf values (Newton steps)

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    @property
    def n_leaves(self) -> int:
        return int(np.sum(self.feature < 0))

    @property
    def depth(self) -> int:
        """Maximum root-to-leaf depth (0 for a stump with no split)."""
        depth = np.zeros(self.n_nodes, dtype=np.int32)
        for i in range(self.n_nodes):  # parents precede children by construction
            if self.feature[i] >= 0:
                depth[self.left[i]] = depth[i] + 1
                depth[self.right[i]] = depth[i] + 1
        return int(depth.max(initial=0))


class BinnedTree:
    """One regression tree over binned features.

    Parameters mirror XGBoost: ``max_depth``, ``min_child_weight`` (minimum
    hessian mass per child), ``reg_lambda``, and an optional feature mask
    for column subsampling.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_child_weight: float = 5.0,
        reg_lambda: float = 1.0,
        n_bins: int = 64,
        hist_subtraction: bool = True,
    ):
        self.max_depth = int(max_depth)
        self.min_child_weight = float(min_child_weight)
        self.reg_lambda = float(reg_lambda)
        self.n_bins = int(n_bins)
        self.hist_subtraction = bool(hist_subtraction)
        self.nodes_: TreeNodes | None = None

    # ------------------------------------------------------------------ #
    def fit(
        self,
        codes: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray | None = None,
        feature_mask: np.ndarray | None = None,
    ) -> "BinnedTree":
        """Grow the tree on ``codes`` (n, d) uint8 with gradients ``grad``.

        ``hess=None`` means unit hessians (squared loss), which enables a
        faster weight-free ``bincount`` for the hessian histograms.
        """
        codes = np.ascontiguousarray(codes)
        n, d = codes.shape
        grad = np.asarray(grad, dtype=np.float64)
        unit_hess = hess is None
        hess_arr = np.ones(n) if unit_hess else np.asarray(hess, dtype=np.float64)

        if feature_mask is None:
            feat_ids = np.arange(d, dtype=np.int64)
        else:
            feat_ids = np.flatnonzero(np.asarray(feature_mask))
            if feat_ids.size == 0:
                raise ValueError("feature_mask selects no features")
        codes_sel = codes[:, feat_ids].T  # (d_sel, n) for contiguous per-feature rows
        d_sel = feat_ids.size
        nb = self.n_bins
        lam = self.reg_lambda

        # growing state
        feature: list[int] = [-1]
        threshold: list[int] = [0]
        left: list[int] = [-1]
        right: list[int] = [-1]
        value: list[float] = [0.0]
        node_of_sample = np.zeros(n, dtype=np.int64)   # tree-node index per sample
        active = [0]                                   # frontier node ids
        rows_act = np.arange(n, dtype=np.int64)        # rows still in the frontier
        # (kept sorted: routing filters it, so histogram accumulation order —
        # and hence every float sum — matches the uncompacted implementation)

        # histogram-subtraction state: previous level's histograms plus, for
        # each child pair of the current frontier, its parent's frontier slot
        prev_g: np.ndarray | None = None               # (d_sel, k_prev, nb)
        prev_h: np.ndarray | None = None
        pair_parent: np.ndarray | None = None          # (k // 2,) prev slots

        for _ in range(self.max_depth):
            if not active:
                break
            k = len(active)
            m = rows_act.shape[0]
            if m == 0:
                break
            # compact frontier ids to 0..k-1
            remap = np.full(len(feature), -1, dtype=np.int64)
            remap[np.asarray(active)] = np.arange(k)
            loc = remap[node_of_sample[rows_act]]      # ≥ 0: rows_act tracks the frontier

            size = d_sel * k * nb
            if self.hist_subtraction and prev_g is not None and pair_parent is not None:
                # frontier nodes come in (left, right) pairs at slots (2i, 2i+1);
                # bin only the smaller child of each pair, derive the sibling
                counts = np.bincount(loc, minlength=k)
                left_slots = np.arange(0, k, 2)
                right_slots = left_slots + 1
                small_is_left = counts[left_slots] <= counts[right_slots]
                small_slots = np.where(small_is_left, left_slots, right_slots)
                large_slots = np.where(small_is_left, right_slots, left_slots)
                in_small = np.zeros(k, dtype=bool)
                in_small[small_slots] = True
                sm = in_small[loc]
                loc_sm = loc[sm]
                rows_sm = rows_act[sm]
                codes_sm = codes_sel[:, rows_sm]       # gather ONLY small children
                m_sm = loc_sm.shape[0]
                base = (np.arange(d_sel, dtype=np.int64)[:, None] * k + loc_sm[None, :]) * nb
                flat = (base + codes_sm).ravel()
                g_hist = np.bincount(
                    flat, weights=np.broadcast_to(grad[rows_sm], (d_sel, m_sm)).ravel(), minlength=size
                )
                if unit_hess:
                    h_hist = np.bincount(flat, minlength=size).astype(np.float64)
                else:
                    h_hist = np.bincount(
                        flat, weights=np.broadcast_to(hess_arr[rows_sm], (d_sel, m_sm)).ravel(), minlength=size
                    )
                g_hist = g_hist.reshape(d_sel, k, nb)
                h_hist = h_hist.reshape(d_sel, k, nb)
                g_hist[:, large_slots, :] = prev_g[:, pair_parent, :] - g_hist[:, small_slots, :]
                h_hist[:, large_slots, :] = prev_h[:, pair_parent, :] - h_hist[:, small_slots, :]
            else:
                # composite key: ((feature * k) + node) * nb + bin
                sub_codes = codes_sel[:, rows_act]     # (d_sel, m)
                g = grad[rows_act]
                h = hess_arr[rows_act]
                base = (np.arange(d_sel, dtype=np.int64)[:, None] * k + loc[None, :]) * nb
                flat = (base + sub_codes).ravel()
                g_hist = np.bincount(flat, weights=np.broadcast_to(g, (d_sel, m)).ravel(), minlength=size)
                if unit_hess:
                    h_hist = np.bincount(flat, minlength=size).astype(np.float64)
                else:
                    h_hist = np.bincount(flat, weights=np.broadcast_to(h, (d_sel, m)).ravel(), minlength=size)
                g_hist = g_hist.reshape(d_sel, k, nb)
                h_hist = h_hist.reshape(d_sel, k, nb)
            prev_g, prev_h = g_hist, h_hist

            # cumulative over bins -> left-side aggregates for each threshold
            GL = np.cumsum(g_hist, axis=2)
            HL = np.cumsum(h_hist, axis=2)
            G = GL[:, :, -1]                           # (d_sel, k) node totals
            H = HL[:, :, -1]
            GR = G[:, :, None] - GL
            HR = H[:, :, None] - HL

            valid = (HL >= self.min_child_weight) & (HR >= self.min_child_weight)
            # 0/0 can occur in masked-out entries when lam == 0; `valid` hides them
            with np.errstate(divide="ignore", invalid="ignore"):
                gain = np.where(
                    valid,
                    GL**2 / (HL + lam) + GR**2 / (HR + lam) - (G**2 / (H + lam))[:, :, None],
                    -np.inf,
                )
            # tie-canonicalized argmax: take the *first* candidate within a
            # tiny tolerance of the max, so equal-gain plateaus (and the ulp
            # noise of derived histograms) always resolve to the same split
            gain_mat = gain.reshape(d_sel * k, nb)
            row_max = gain_mat.max(axis=1)
            row_tol = 1e-9 * np.abs(row_max) + 1e-12
            flat_arg = (gain_mat >= (row_max - row_tol)[:, None]).argmax(axis=1)
            per_node_gain = row_max.reshape(d_sel, k)
            col_max = per_node_gain.max(axis=0)                     # (k,)
            col_tol = 1e-9 * np.abs(col_max) + 1e-12
            best_feat_local = (per_node_gain >= (col_max - col_tol)[None, :]).argmax(axis=0)
            best_gain = per_node_gain[best_feat_local, np.arange(k)]
            best_bin = flat_arg.reshape(d_sel, k)[best_feat_local, np.arange(k)]

            new_active: list[int] = []
            new_pair_parent: list[int] = []
            split_feat_of = np.full(k, -1, dtype=np.int64)
            split_bin_of = np.zeros(k, dtype=np.int64)
            for ki in range(k):
                node_id = active[ki]
                if not np.isfinite(best_gain[ki]) or best_gain[ki] <= 1e-12:
                    # leaf: Newton value
                    g_tot = G[0, ki] if d_sel else 0.0
                    h_tot = H[0, ki] if d_sel else 0.0
                    value[node_id] = float(-g_tot / (h_tot + lam))
                    continue
                f_local = int(best_feat_local[ki])
                split_feat_of[ki] = f_local
                split_bin_of[ki] = int(best_bin[ki])
                feature[node_id] = int(feat_ids[f_local])
                threshold[node_id] = int(best_bin[ki])
                left[node_id] = len(feature)
                right[node_id] = len(feature) + 1
                for _child in range(2):
                    feature.append(-1)
                    threshold.append(0)
                    left.append(-1)
                    right.append(-1)
                    value.append(0.0)
                new_active.extend([left[node_id], right[node_id]])
                new_pair_parent.append(ki)

            # route samples of split nodes to children (vectorized); samples
            # in settled nodes drop out of the compacted frontier rows
            split_mask_per_node = split_feat_of >= 0
            if np.any(split_mask_per_node):
                is_split_sample = split_mask_per_node[loc]
                rows = rows_act[is_split_sample]
                loc_s = loc[is_split_sample]
                f_of_s = split_feat_of[loc_s]
                code_at = codes_sel[f_of_s, rows]
                go_left = code_at <= split_bin_of[loc_s]
                parents = np.asarray(active, dtype=np.int64)[loc_s]
                lefts = np.asarray(left, dtype=np.int64)[parents]
                rights = np.asarray(right, dtype=np.int64)[parents]
                node_of_sample[rows] = np.where(go_left, lefts, rights)
                rows_act = rows
            else:
                rows_act = rows_act[:0]
            active = new_active
            pair_parent = np.asarray(new_pair_parent, dtype=np.int64)

        # settle remaining frontier nodes as leaves
        if active:
            act = np.asarray(active)
            remap = np.full(len(feature), -1, dtype=np.int64)
            remap[act] = np.arange(len(active))
            local = remap[node_of_sample]
            sel = local >= 0
            g_tot = np.bincount(local[sel], weights=grad[sel], minlength=len(active))
            h_tot = np.bincount(local[sel], weights=hess_arr[sel], minlength=len(active))
            for ki, node_id in enumerate(active):
                value[node_id] = float(-g_tot[ki] / (h_tot[ki] + lam))

        self.nodes_ = TreeNodes(
            feature=np.asarray(feature, dtype=np.int32),
            threshold=np.asarray(threshold, dtype=np.uint8),
            left=np.asarray(left, dtype=np.int32),
            right=np.asarray(right, dtype=np.int32),
            value=np.asarray(value, dtype=np.float64),
        )
        return self

    # ------------------------------------------------------------------ #
    def predict(self, codes: np.ndarray) -> np.ndarray:
        """Evaluate the tree on binned features (vectorized node routing)."""
        if self.nodes_ is None:
            raise RuntimeError("BinnedTree.predict called before fit")
        nd = self.nodes_
        codes = np.ascontiguousarray(codes)
        n = codes.shape[0]
        cur = np.zeros(n, dtype=np.int32)
        for _ in range(self.max_depth + 1):
            feat = nd.feature[cur]
            internal = feat >= 0
            if not np.any(internal):
                break
            rows = np.flatnonzero(internal)
            f = feat[rows]
            go_left = codes[rows, f] <= nd.threshold[cur[rows]]
            cur[rows] = np.where(go_left, nd.left[cur[rows]], nd.right[cur[rows]])
        return nd.value[cur]
