"""Packed-forest prediction engine: all trees × all samples in one pass.

Per-tree prediction loops (``for tree in trees_: tree.predict(codes)``) pay
the Python/NumPy dispatch overhead ``n_trees × depth`` times and re-walk the
full sample set at every level even after most rows have settled into
leaves.  :class:`PackedForest` removes both costs by concatenating every
fitted tree's :class:`~repro.ml.tree.TreeNodes` into one flat *arena* and
evaluating the whole ensemble with a single vectorized depth loop.

Flat-arena layout
-----------------
All per-node arrays are concatenated tree-after-tree; node ``i`` of tree
``t`` lives at arena index ``offsets[t] + i`` and ``roots[t] == offsets[t]``.
Three tricks make the inner loop branch-free:

* **Adjacent children.**  The tree builder always appends a split's children
  consecutively, so ``right == left + 1`` and the next node is simply
  ``left[cur] + (code > threshold[cur])`` — no ``right`` array, no
  ``np.where``.
* **Self-looping leaves.**  Leaves are rewritten to ``left = own index`` and
  ``threshold = 255``; since codes are uint8 (≤ 255) a settled row compares
  ``code > 255 == False`` and stays put, so no per-level "is leaf" masking
  is needed.  Leaf ``feature`` is rewritten to 0 so the code gather stays in
  bounds.
* **Flat code gather.**  Codes are transposed once to ``(d, n)`` and indexed
  as ``codes_flat[feature * n + sample]``, one fused gather per level.

The loop runs exactly ``max_depth`` (the deepest *actual* depth across the
pack) iterations over an ``(n_trees × n_samples)`` state vector, chunked
over samples to bound peak memory.  Leaf values are gathered from the same
float64 arrays the per-tree path reads, so the resulting prediction matrix
is **bit-for-bit identical** to stacking ``tree.predict`` outputs — the
equivalence suite in ``tests/test_predictor_equivalence.py`` asserts this
with ``np.array_equal``.

Arena dtypes are the small ones the satellite layout standardizes on:
uint8 thresholds, int32 features/children, float64 values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ml.tree import TreeNodes

__all__ = ["PackedForest", "concat_apply_split", "ensure_pack"]


def concat_apply_split(
    blocks: Sequence[np.ndarray], fn, axis: int = 0
) -> list[np.ndarray]:
    """Concatenate row blocks, apply ``fn`` once, split the result back.

    The batch-of-batches skeleton shared by every ``*_many`` entry point:
    one call to the scalar path amortizes its dispatch cost over all
    blocks, and because those paths are per-sample, each split slice is
    bit-identical to ``fn(block)`` alone.  ``axis`` selects the sample
    axis of ``fn``'s result (1 for per-tree matrices).
    """
    blocks = [np.asarray(b) for b in blocks]
    if not blocks:
        return []
    sizes = [b.shape[0] for b in blocks]
    stacked = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=0)
    return np.split(fn(stacked), np.cumsum(sizes)[:-1], axis=axis)


def ensure_pack(pack: "PackedForest | None", trees: Sequence) -> "PackedForest":
    """Reuse ``pack`` while it still matches ``trees``; rebuild otherwise.

    The single invalidation rule shared by every estimator with a lazy
    pack: a pack is stale when it is absent or its tree count differs
    (fits reset the pack to ``None``; truncation changes the count).
    """
    if pack is None or pack.n_trees != len(trees):
        pack = PackedForest.from_trees(trees)
    return pack

#: target number of (tree, sample) state entries processed per chunk —
#: the single memory-bounding budget shared by predict_matrix and the
#: estimator call sites that chunk around it (gbm.predict, forest OOB)
CHUNK_PAIRS = 1 << 23


class PackedForest:
    """Flat-arena ensemble evaluator over binned uint8 codes.

    Build with :meth:`from_trees` from fitted :class:`~repro.ml.tree.BinnedTree`
    objects (or raw :class:`TreeNodes`).  The per-tree prediction matrix is
    bit-identical to looping ``tree.predict`` — estimators can therefore swap
    it into their hot paths without changing any downstream number.
    """

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        value: np.ndarray,
        roots: np.ndarray,
        max_depth: int,
    ):
        self.feature = feature      # int32, leaf entries rewritten to 0
        self.threshold = threshold  # uint8, leaf entries rewritten to 255
        self.left = left            # int32 arena index, leaves self-loop
        self.value = value          # float64 Newton leaf values
        self.roots = roots          # int32 arena index of each tree's root
        self.max_depth = int(max_depth)

    # ------------------------------------------------------------------ #
    @property
    def n_trees(self) -> int:
        return int(self.roots.shape[0])

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    # ------------------------------------------------------------------ #
    @classmethod
    def from_trees(cls, trees: Sequence) -> "PackedForest":
        """Concatenate fitted trees into one arena (offset-indexed)."""
        nodes: list[TreeNodes] = []
        for t in trees:
            nd = t.nodes_ if hasattr(t, "nodes_") else t
            if nd is None:
                raise RuntimeError("PackedForest.from_trees got an unfitted tree")
            nodes.append(nd)
        if not nodes:
            empty_i32 = np.empty(0, dtype=np.int32)
            return cls(
                feature=empty_i32,
                threshold=np.empty(0, dtype=np.uint8),
                left=empty_i32.copy(),
                value=np.empty(0, dtype=np.float64),
                roots=empty_i32.copy(),
                max_depth=0,
            )

        sizes = np.array([nd.n_nodes for nd in nodes], dtype=np.int64)
        roots = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int32)
        total = int(sizes.sum())

        feature = np.concatenate([nd.feature for nd in nodes]).astype(np.int32, copy=False)
        threshold = np.concatenate([nd.threshold for nd in nodes]).astype(np.uint8, copy=False)
        offsets = np.repeat(roots.astype(np.int64), sizes)
        left = (np.concatenate([nd.left for nd in nodes]) + offsets).astype(np.int32)
        right = (np.concatenate([nd.right for nd in nodes]) + offsets).astype(np.int32)
        value = np.concatenate([nd.value for nd in nodes]).astype(np.float64, copy=False)

        internal = feature >= 0
        if not np.array_equal(right[internal], left[internal] + 1):
            raise ValueError(
                "PackedForest requires adjacent children (right == left + 1); "
                "got trees from a builder that violates the TreeNodes layout"
            )

        # actual (not capped) max depth via a vectorized frontier walk
        depth = 0
        cur = roots.astype(np.int64)
        while cur.size:
            nxt = cur[internal[cur]]
            if nxt.size == 0:
                break
            lefts = left[nxt].astype(np.int64)
            cur = np.concatenate([lefts, lefts + 1])
            depth += 1

        # rewrite leaves: self-loop with an always-false split test
        idx = np.arange(total, dtype=np.int32)
        leaf = ~internal
        feature[leaf] = 0
        threshold[leaf] = np.uint8(255)
        left[leaf] = idx[leaf]

        return cls(
            feature=feature,
            threshold=threshold,
            left=left,
            value=value,
            roots=roots,
            max_depth=depth,
        )

    # ------------------------------------------------------------------ #
    def _eval_block(self, codes_flat: np.ndarray, n: int, d: int, out: np.ndarray) -> None:
        """Evaluate every tree on one sample block.

        ``codes_flat`` is the ravelled ``(d, n)`` transposed code block and
        ``out`` the ``(n_trees, n)`` destination slice.  The node feature is
        pre-multiplied by the block length so the per-level code gather is a
        single take-plus-add; int32 index math is used whenever the flat code
        array fits (it halves the memory traffic of the hot gathers).
        """
        T = self.n_trees
        idx_dtype = np.int32 if d * n < 2**31 else np.int64
        feat_base = (self.feature.astype(np.int64) * n).astype(idx_dtype)
        sample = np.tile(np.arange(n, dtype=idx_dtype), T)
        cur = np.repeat(self.roots, n)
        left, thr = self.left, self.threshold
        for _ in range(self.max_depth):
            idx = feat_base.take(cur)
            idx += sample
            code = codes_flat.take(idx)
            cur = left.take(cur) + (code > thr.take(cur))
        out[...] = self.value.take(cur).reshape(T, n)

    def predict_matrix(self, codes: np.ndarray) -> np.ndarray:
        """(n_trees, n_samples) per-tree predictions on binned codes."""
        codes = np.asarray(codes)
        n = codes.shape[0]
        T = self.n_trees
        out = np.empty((T, n), dtype=np.float64)
        if T == 0 or n == 0:
            return out
        block = max(1, CHUNK_PAIRS // T)
        for s in range(0, n, block):
            e = min(n, s + block)
            codes_flat = np.ascontiguousarray(codes[s:e].T).reshape(-1)
            self._eval_block(codes_flat, e - s, codes.shape[1], out[:, s:e])
        return out

    def predict_matrix_many(self, code_blocks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Evaluate many small code blocks in one arena pass (batch-of-batches).

        The serving micro-batcher coalesces single-row requests into a call
        like this one: all blocks are concatenated, walked with a single
        :meth:`predict_matrix` pass, and split back per block.  Each sample
        is routed independently, so every returned slice is bit-identical to
        calling :meth:`predict_matrix` on its block alone.
        """
        return concat_apply_split(code_blocks, self.predict_matrix, axis=1)

    def truncated(self, n_trees: int) -> "PackedForest":
        """A pack over the first ``n_trees`` trees, sharing the arena arrays.

        Trees never reference nodes outside their own arena range, so a
        prefix ensemble only needs its ``roots`` sliced — node arrays are
        shared, not copied, which is what makes staged registry rollouts of
        truncated variants free.  ``max_depth`` is kept at the full pack's
        value: extra depth iterations leave settled rows on their
        self-looping leaves, so results stay bit-identical.
        """
        n_trees = int(n_trees)
        if not 0 <= n_trees <= self.n_trees:
            raise ValueError(f"n_trees must be in [0, {self.n_trees}], got {n_trees}")
        return PackedForest(
            feature=self.feature,
            threshold=self.threshold,
            left=self.left,
            value=self.value,
            roots=self.roots[:n_trees],
            max_depth=self.max_depth,
        )
