"""Feedforward neural networks in NumPy: Adam, dropout, weight decay.

Two heads:

* ``loss="mse"``    — plain regression (the Fig. 2 NAS models);
* ``loss="nll"``    — heteroscedastic Gaussian head predicting (μ, log σ²),
  the building block of deep ensembles / AutoDEUQ (§VIII): minimizing the
  Gaussian negative log-likelihood teaches each member its own aleatory
  variance estimate.

Inputs are expected standardized (wrap in a Pipeline with
:class:`repro.data.preprocessing.Standardizer`).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator
from repro.rng import generator_from

__all__ = ["MLPRegressor"]

_ACTIVATIONS = ("relu", "tanh", "elu")
_MIN_LOG_VAR, _MAX_LOG_VAR = -10.0, 3.0


def _act(name: str, z: np.ndarray) -> np.ndarray:
    if name == "relu":
        return np.maximum(z, 0.0)
    if name == "tanh":
        return np.tanh(z)
    return np.where(z > 0, z, np.expm1(z))  # elu


def _act_grad(name: str, z: np.ndarray, a: np.ndarray) -> np.ndarray:
    if name == "relu":
        return (z > 0).astype(z.dtype)
    if name == "tanh":
        return 1.0 - a**2
    return np.where(z > 0, 1.0, a + 1.0)  # elu'


class MLPRegressor(BaseEstimator):
    """Multilayer perceptron regressor.

    Parameters
    ----------
    hidden:
        Tuple of hidden-layer widths, e.g. ``(128, 128)``.
    activation:
        ``relu`` / ``tanh`` / ``elu``.
    loss:
        ``mse`` or ``nll`` (heteroscedastic Gaussian).
    dropout, weight_decay, learning_rate, epochs, batch_size:
        Usual training knobs (AdamW-style decoupled decay).
    """

    def __init__(
        self,
        hidden: tuple[int, ...] = (128, 128),
        activation: str = "relu",
        loss: str = "mse",
        dropout: float = 0.0,
        weight_decay: float = 1e-5,
        learning_rate: float = 1e-3,
        epochs: int = 60,
        batch_size: int = 256,
        random_state: int = 0,
    ):
        if activation not in _ACTIVATIONS:
            raise ValueError(f"activation must be one of {_ACTIVATIONS}")
        if loss not in ("mse", "nll"):
            raise ValueError("loss must be 'mse' or 'nll'")
        if not 0.0 <= dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        self.hidden = tuple(int(h) for h in hidden)
        self.activation = activation
        self.loss = loss
        self.dropout = float(dropout)
        self.weight_decay = float(weight_decay)
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.random_state = int(random_state)

        self.weights_: list[np.ndarray] | None = None
        self.biases_: list[np.ndarray] | None = None
        self.train_curve_: list[float] = []

    # ------------------------------------------------------------------ #
    def _init_params(self, d_in: int, rng: np.random.Generator) -> None:
        d_out = 2 if self.loss == "nll" else 1
        dims = [d_in, *self.hidden, d_out]
        self.weights_ = []
        self.biases_ = []
        for a, b in zip(dims[:-1], dims[1:]):
            # He initialization
            self.weights_.append(rng.normal(0.0, np.sqrt(2.0 / a), (a, b)))
            self.biases_.append(np.zeros(b))

    def _forward(
        self, X: np.ndarray, rng: np.random.Generator | None
    ) -> tuple[np.ndarray, list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
        """Returns (output, pre-activations, activations, dropout masks)."""
        zs: list[np.ndarray] = []
        acts: list[np.ndarray] = [X]
        masks: list[np.ndarray] = []
        a = X
        n_layers = len(self.weights_)
        for i, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            z = a @ W + b
            zs.append(z)
            if i < n_layers - 1:
                a = _act(self.activation, z)
                if rng is not None and self.dropout > 0.0:
                    mask = (rng.random(a.shape) >= self.dropout) / (1.0 - self.dropout)
                    a = a * mask
                    masks.append(mask)
                else:
                    masks.append(np.ones(1))
                acts.append(a)
            else:
                a = z
        return a, zs, acts, masks

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).reshape(-1)
        n, d = X.shape
        rng = generator_from(self.random_state)
        self._init_params(d, rng)

        m_w = [np.zeros_like(w) for w in self.weights_]
        v_w = [np.zeros_like(w) for w in self.weights_]
        m_b = [np.zeros_like(b) for b in self.biases_]
        v_b = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        self.train_curve_ = []

        for _epoch in range(self.epochs):
            perm = rng.permutation(n)
            epoch_loss = 0.0
            for lo in range(0, n, self.batch_size):
                idx = perm[lo : lo + self.batch_size]
                xb, yb = X[idx], y[idx]
                out, zs, acts, masks = self._forward(xb, rng)

                if self.loss == "mse":
                    mu = out[:, 0]
                    diff = mu - yb
                    loss = float(np.mean(diff**2))
                    d_out = np.zeros_like(out)
                    d_out[:, 0] = 2.0 * diff / xb.shape[0]
                else:
                    mu = out[:, 0]
                    log_var = np.clip(out[:, 1], _MIN_LOG_VAR, _MAX_LOG_VAR)
                    inv_var = np.exp(-log_var)
                    diff = mu - yb
                    loss = float(np.mean(0.5 * (log_var + diff**2 * inv_var)))
                    d_out = np.zeros_like(out)
                    d_out[:, 0] = diff * inv_var / xb.shape[0]
                    d_out[:, 1] = 0.5 * (1.0 - diff**2 * inv_var) / xb.shape[0]
                    # zero gradient where the clamp is active
                    clamped = (out[:, 1] <= _MIN_LOG_VAR) | (out[:, 1] >= _MAX_LOG_VAR)
                    d_out[clamped, 1] = 0.0
                epoch_loss += loss * xb.shape[0]

                # backprop
                grads_w = [np.empty(0)] * len(self.weights_)
                grads_b = [np.empty(0)] * len(self.biases_)
                delta = d_out
                for li in range(len(self.weights_) - 1, -1, -1):
                    grads_w[li] = acts[li].T @ delta
                    grads_b[li] = delta.sum(axis=0)
                    if li > 0:
                        delta = delta @ self.weights_[li].T
                        if self.dropout > 0.0:
                            delta = delta * masks[li - 1]
                        delta = delta * _act_grad(self.activation, zs[li - 1], acts[li])

                # AdamW update
                step += 1
                bc1 = 1.0 - beta1**step
                bc2 = 1.0 - beta2**step
                for li in range(len(self.weights_)):
                    m_w[li] = beta1 * m_w[li] + (1 - beta1) * grads_w[li]
                    v_w[li] = beta2 * v_w[li] + (1 - beta2) * grads_w[li] ** 2
                    m_b[li] = beta1 * m_b[li] + (1 - beta1) * grads_b[li]
                    v_b[li] = beta2 * v_b[li] + (1 - beta2) * grads_b[li] ** 2
                    self.weights_[li] -= self.learning_rate * (
                        (m_w[li] / bc1) / (np.sqrt(v_w[li] / bc2) + eps)
                        + self.weight_decay * self.weights_[li]
                    )
                    self.biases_[li] -= self.learning_rate * (m_b[li] / bc1) / (
                        np.sqrt(v_b[li] / bc2) + eps
                    )
            self.train_curve_.append(epoch_loss / n)
        return self

    # ------------------------------------------------------------------ #
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("predict called before fit")
        out, _, _, _ = self._forward(np.asarray(X, dtype=float), None)
        return out[:, 0]

    def predict_dist(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(mean, variance).  For MSE heads the variance is zero."""
        if self.weights_ is None:
            raise RuntimeError("predict_dist called before fit")
        out, _, _, _ = self._forward(np.asarray(X, dtype=float), None)
        mu = out[:, 0]
        if self.loss == "nll":
            var = np.exp(np.clip(out[:, 1], _MIN_LOG_VAR, _MAX_LOG_VAR))
        else:
            var = np.zeros_like(mu)
        return mu, var
