"""Linear models: ridge (closed form) and lasso/elastic-net (coordinate descent).

Ridge is the simplest baseline the I/O-modeling literature uses (linear
regression appears in Isakov et al. 2020 and the regression studies of Xie
et al.); it also serves as the surrogate inside the AgEBO-style search.
The L1 family adds sparse feature selection — with 48 redundant POSIX
counters plus 48 near-duplicate MPI-IO counters, which coefficients survive
the L1 penalty is itself a redundancy diagnostic (the Fig. 3 story told by
a different tool).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator

__all__ = ["RidgeRegression", "ElasticNetRegression", "LassoRegression", "lasso_path"]


class RidgeRegression(BaseEstimator):
    """L2-regularized least squares, ``alpha`` = ridge strength."""

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = float(alpha)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        x_mean = X.mean(axis=0)
        y_mean = float(y.mean())
        Xc = X - x_mean
        A = Xc.T @ Xc
        A[np.diag_indices_from(A)] += self.alpha
        self.coef_ = np.linalg.solve(A, Xc.T @ (y - y_mean))
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("predict called before fit")
        return np.asarray(X, dtype=float) @ self.coef_ + self.intercept_


class ElasticNetRegression(BaseEstimator):
    """L1+L2-regularized least squares via cyclic coordinate descent.

    Minimizes ``1/(2n) ||y − Xβ||² + α(l1_ratio ||β||₁ + (1−l1_ratio)/2 ||β||²)``
    on internally standardized features (coefficients are reported in the
    original scale).  ``l1_ratio=1`` is the lasso.

    Coordinate descent with covariance updates: the per-coordinate solve is
    a soft-threshold of ``cⱼ = xⱼᵀr + βⱼ xⱼᵀxⱼ`` where the residual
    correlation ``r`` is maintained incrementally — O(nd) per sweep.
    """

    def __init__(
        self,
        alpha: float = 0.01,
        l1_ratio: float = 0.5,
        max_iter: int = 400,
        tol: float = 1e-6,
    ):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not 0.0 <= l1_ratio <= 1.0:
            raise ValueError("l1_ratio must be in [0, 1]")
        self.alpha = float(alpha)
        self.l1_ratio = float(l1_ratio)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ElasticNetRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        n, d = X.shape
        x_mean = X.mean(axis=0)
        x_scale = X.std(axis=0)
        x_scale[x_scale < 1e-12] = 1.0
        Z = (X - x_mean) / x_scale
        y_mean = float(y.mean())
        r = y - y_mean  # residual for β = 0

        l1 = self.alpha * self.l1_ratio * n
        l2 = self.alpha * (1.0 - self.l1_ratio) * n
        col_sq = (Z**2).sum(axis=0)
        beta = np.zeros(d)

        for it in range(self.max_iter):
            max_delta = 0.0
            for j in range(d):
                if col_sq[j] == 0.0:
                    continue
                c = Z[:, j] @ r + beta[j] * col_sq[j]
                new = np.sign(c) * max(abs(c) - l1, 0.0) / (col_sq[j] + l2)
                delta = new - beta[j]
                if delta != 0.0:
                    r -= delta * Z[:, j]
                    beta[j] = new
                    max_delta = max(max_delta, abs(delta))
            self.n_iter_ = it + 1
            if max_delta < self.tol:
                break

        self.coef_ = beta / x_scale
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("predict called before fit")
        return np.asarray(X, dtype=float) @ self.coef_ + self.intercept_

    @property
    def n_nonzero_(self) -> int:
        """Number of surviving (non-zero) coefficients."""
        if self.coef_ is None:
            raise RuntimeError("model not fitted")
        return int(np.sum(self.coef_ != 0.0))


class LassoRegression(ElasticNetRegression):
    """Pure L1 regression (``l1_ratio`` fixed at 1)."""

    def __init__(self, alpha: float = 0.01, max_iter: int = 400, tol: float = 1e-6):
        super().__init__(alpha=alpha, l1_ratio=1.0, max_iter=max_iter, tol=tol)


def lasso_path(
    X: np.ndarray,
    y: np.ndarray,
    alphas: np.ndarray | None = None,
    n_alphas: int = 20,
) -> tuple[np.ndarray, np.ndarray]:
    """Coefficient paths over a geometric grid of L1 strengths.

    Returns ``(alphas, coefs)`` with ``coefs`` of shape (n_alphas, d),
    strongest alpha first.  Used by the feature-redundancy example to show
    which Darshan counters survive as regularization tightens.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    n, d = X.shape
    if alphas is None:
        # alpha_max: smallest alpha with all-zero solution (standardized X)
        x_scale = X.std(axis=0)
        x_scale[x_scale < 1e-12] = 1.0
        Z = (X - X.mean(axis=0)) / x_scale
        alpha_max = float(np.abs(Z.T @ (y - y.mean())).max() / n)
        alphas = np.geomspace(alpha_max, alpha_max * 1e-3, n_alphas)
    alphas = np.asarray(alphas, dtype=float)

    coefs = np.empty((alphas.size, d))
    model = LassoRegression(alpha=float(alphas[0]))
    for i, a in enumerate(alphas):
        model.alpha = float(a)
        model.fit(X, y)
        coefs[i] = model.coef_
    return alphas, coefs
