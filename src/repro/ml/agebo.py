"""Aging-evolution neural architecture search (AgEBO-style, §VI.B).

Reproduces the search dynamics behind Fig. 2: populations of MLPs evolve
over generations, each generation's errors scatter downward toward the
duplicate-estimated lower bound, and only a handful of generations actually
improve the best model.

The "BO" half of AgEBO is represented by a ridge surrogate fitted on the
one-hot-encoded configurations evaluated so far: candidate mutations are
screened by predicted score and the most promising one is trained for real.
A validation set drives evolution; the test set is only ever used for
reporting (the paper stresses this separation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.data.preprocessing import Standardizer
from repro.ml.base import Pipeline
from repro.ml.binning import frozen_copy
from repro.ml.linear import RidgeRegression
from repro.ml.metrics import median_abs_log_ratio
from repro.ml.nn import MLPRegressor
from repro.rng import generator_from

__all__ = ["SearchSpace", "AgingEvolutionSearch", "NasHistory", "DEFAULT_SPACE"]

DEFAULT_SPACE: dict[str, tuple[Any, ...]] = {
    "hidden": ((32,), (64,), (128,), (256,), (64, 64), (128, 64), (128, 128), (256, 128), (128, 128, 64)),
    "activation": ("relu", "tanh", "elu"),
    "learning_rate": (3e-4, 1e-3, 3e-3),
    "dropout": (0.0, 0.05, 0.1, 0.2),
    "weight_decay": (0.0, 1e-5, 1e-4),
}


@dataclass
class SearchSpace:
    """Discrete hyperparameter/architecture space with one-hot encoding."""

    choices: Mapping[str, Sequence[Any]]

    def sample(self, rng: np.random.Generator) -> dict[str, Any]:
        return {k: v[int(rng.integers(len(v)))] for k, v in self.choices.items()}

    def mutate(self, config: dict[str, Any], rng: np.random.Generator) -> dict[str, Any]:
        """Change exactly one coordinate to a different value."""
        out = dict(config)
        key = list(self.choices)[int(rng.integers(len(self.choices)))]
        options = [v for v in self.choices[key] if v != config[key]]
        if options:
            out[key] = options[int(rng.integers(len(options)))]
        return out

    def encode(self, config: dict[str, Any]) -> np.ndarray:
        parts: list[np.ndarray] = []
        for key, values in self.choices.items():
            vec = np.zeros(len(values))
            vec[list(values).index(config[key])] = 1.0
            parts.append(vec)
        return np.concatenate(parts)


@dataclass
class NasHistory:
    """Every evaluation, tagged with its generation (for Fig. 2 scatter)."""

    generation: list[int] = field(default_factory=list)
    config: list[dict[str, Any]] = field(default_factory=list)
    score: list[float] = field(default_factory=list)

    def best_per_generation(self) -> list[float]:
        """Running best score after each generation (gold-star curve)."""
        out: list[float] = []
        best = np.inf
        n_gen = max(self.generation) + 1 if self.generation else 0
        for g in range(n_gen):
            gen_scores = [s for gg, s in zip(self.generation, self.score) if gg == g]
            if gen_scores:
                best = min(best, min(gen_scores))
            out.append(best)
        return out

    def improvements(self) -> int:
        """How many generations strictly improved the incumbent."""
        curve = self.best_per_generation()
        return int(sum(1 for a, b in zip(curve[:-1], curve[1:]) if b < a - 1e-12))


class AgingEvolutionSearch:
    """Regularized evolution with surrogate-screened mutations."""

    def __init__(
        self,
        space: Mapping[str, Sequence[Any]] | None = None,
        population: int = 10,
        generations: int = 8,
        tournament: int = 3,
        candidates_per_step: int = 4,
        epochs: int = 25,
        seed: int = 0,
    ):
        self.space = SearchSpace(space or DEFAULT_SPACE)
        self.population = int(population)
        self.generations = int(generations)
        self.tournament = int(tournament)
        self.candidates_per_step = int(candidates_per_step)
        self.epochs = int(epochs)
        self.seed = int(seed)
        self.history = NasHistory()
        self.best_config_: dict[str, Any] | None = None
        self.best_score_: float = np.inf

    # ------------------------------------------------------------------ #
    def _evaluate(
        self,
        config: dict[str, Any],
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
        member_seed: int,
    ) -> float:
        model = Pipeline(
            [
                ("scale", Standardizer()),
                ("mlp", MLPRegressor(epochs=self.epochs, random_state=member_seed, **config)),
            ]
        )
        model.fit(X_train, y_train)
        return median_abs_log_ratio(y_val, model.predict(X_val))

    def _surrogate_rank(
        self, candidates: list[dict[str, Any]], rng: np.random.Generator
    ) -> dict[str, Any]:
        """Pick the candidate the ridge surrogate predicts is best."""
        if len(self.history.score) < 8 or len(candidates) == 1:
            return candidates[int(rng.integers(len(candidates)))]
        X = np.stack([self.space.encode(c) for c in self.history.config])
        y = np.asarray(self.history.score)
        surrogate = RidgeRegression(alpha=1.0).fit(X, y)
        preds = surrogate.predict(np.stack([self.space.encode(c) for c in candidates]))
        return candidates[int(np.argmin(preds))]

    def run(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
    ) -> "AgingEvolutionSearch":
        # Private copies, frozen ONCE for the whole search (the
        # ``hpo._make_objective`` pattern): every generation's fit sees the
        # same immutable matrices, so tree-model configs opt into the
        # identity-keyed binning cache and staleness is impossible by
        # construction.
        X_train = frozen_copy(X_train)
        X_val = frozen_copy(X_val)
        y_train = np.asarray(y_train, dtype=np.float64)
        y_val = np.asarray(y_val, dtype=np.float64)

        rng = generator_from(self.seed)
        pool: list[tuple[dict[str, Any], float]] = []

        # generation 0: random population
        for i in range(self.population):
            config = self.space.sample(rng)
            score = self._evaluate(config, X_train, y_train, X_val, y_val, member_seed=i)
            pool.append((config, score))
            self.history.generation.append(0)
            self.history.config.append(config)
            self.history.score.append(score)

        evals = self.population
        for gen in range(1, self.generations):
            for _step in range(self.population):
                contenders = [pool[int(rng.integers(len(pool)))] for _ in range(self.tournament)]
                parent = min(contenders, key=lambda cs: cs[1])[0]
                candidates = [self.space.mutate(parent, rng) for _ in range(self.candidates_per_step)]
                child = self._surrogate_rank(candidates, rng)
                score = self._evaluate(child, X_train, y_train, X_val, y_val, member_seed=evals)
                evals += 1
                pool.append((child, score))
                pool.pop(0)  # aging: the oldest dies
                self.history.generation.append(gen)
                self.history.config.append(child)
                self.history.score.append(score)

        best_idx = int(np.argmin(self.history.score))
        self.best_config_ = self.history.config[best_idx]
        self.best_score_ = float(self.history.score[best_idx])
        return self

    def top_configs(self, k: int) -> list[dict[str, Any]]:
        """The k best distinct configurations (ensemble seeds for AutoDEUQ)."""
        order = np.argsort(self.history.score)
        seen: list[dict[str, Any]] = []
        for idx in order:
            config = self.history.config[int(idx)]
            if config not in seen:
                seen.append(config)
            if len(seen) == k:
                break
        return seen
