"""Gradient boosting regressor — the XGBoost algorithm in pure NumPy.

Second-order boosting on squared loss with the histogram optimization:
features are quantile-binned once, each tree fits Newton steps to the
current residual gradients, and rows/columns can be subsampled per tree.
The four hyperparameters the paper sweeps exhaustively (§VI.B) map to
``n_estimators``, ``max_depth``, ``colsample_bytree``, ``subsample``.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, clone
from repro.ml.binning import QuantileBinner
from repro.ml.predictor import CHUNK_PAIRS, PackedForest, concat_apply_split, ensure_pack
from repro.ml.tree import BinnedTree
from repro.parallel.pool import parallel_map
from repro.rng import generator_from

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor(BaseEstimator):
    """Histogram GBM with XGBoost-style regularized Newton boosting.

    Parameters
    ----------
    n_estimators, max_depth, learning_rate, reg_lambda, min_child_weight:
        Standard boosting controls.
    subsample, colsample_bytree:
        Per-tree row/column sampling fractions in (0, 1].
    n_bins:
        Histogram resolution (quantile bins, ≤ 255).
    loss:
        ``"squared"``, ``"huber"`` or ``"quantile"``.  The paper's objective
        (Eq. 6) is a mean *absolute* log ratio; Huber gradients resist the
        heavy error tails that service degradations put in the target (§V
        notes medians are used precisely because of those tails).  The
        pinball (``quantile``) loss fits a conditional quantile instead of
        the center — two quantile models bracket a per-job prediction
        interval, the model-side analogue of the §IX noise bands.
    huber_delta:
        Transition point of the Huber loss, in dex.
    quantile_alpha:
        Target quantile in (0, 1) for ``loss="quantile"`` (0.5 = median).
    early_stopping_rounds:
        If set and an eval set is supplied to :meth:`fit`, stop when eval
        MAE has not improved for that many rounds.
    hist_subtraction:
        Use the LightGBM-style sibling-histogram subtraction inside each
        tree fit (see :mod:`repro.ml.tree`); ``False`` restores the direct
        per-child histogram path (same trees up to float tie-breaking).

    Prediction goes through a :class:`~repro.ml.predictor.PackedForest`
    built lazily at the first :meth:`predict`/:meth:`staged_predict` call;
    outputs are bit-identical to the per-tree loop.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 6,
        learning_rate: float = 0.1,
        reg_lambda: float = 1.0,
        min_child_weight: float = 5.0,
        subsample: float = 1.0,
        colsample_bytree: float = 1.0,
        n_bins: int = 64,
        loss: str = "huber",
        huber_delta: float = 0.10,
        quantile_alpha: float = 0.5,
        early_stopping_rounds: int | None = None,
        hist_subtraction: bool = True,
        random_state: int = 0,
    ):
        if loss not in ("squared", "huber", "quantile"):
            raise ValueError("loss must be 'squared', 'huber' or 'quantile'")
        if not 0.0 < quantile_alpha < 1.0:
            raise ValueError("quantile_alpha must be in (0, 1)")
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.learning_rate = float(learning_rate)
        self.reg_lambda = float(reg_lambda)
        self.min_child_weight = float(min_child_weight)
        self.subsample = float(subsample)
        self.colsample_bytree = float(colsample_bytree)
        self.n_bins = int(n_bins)
        self.loss = loss
        self.huber_delta = float(huber_delta)
        self.quantile_alpha = float(quantile_alpha)
        self.early_stopping_rounds = early_stopping_rounds
        self.hist_subtraction = bool(hist_subtraction)
        self.random_state = int(random_state)

        self.binner_: QuantileBinner | None = None
        self.trees_: list[BinnedTree] = []
        self.base_score_: float = 0.0
        self.train_curve_: list[float] = []
        self.eval_curve_: list[float] = []
        self._pack: PackedForest | None = None

    def _ensure_pack(self) -> PackedForest:
        """Build (or rebuild after truncation) the flat prediction arena."""
        self._pack = ensure_pack(self._pack, self.trees_)
        return self._pack

    # ------------------------------------------------------------------ #
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        eval_set: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "GradientBoostingRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y row counts differ")
        if not 0.0 < self.subsample <= 1.0 or not 0.0 < self.colsample_bytree <= 1.0:
            raise ValueError("subsample and colsample_bytree must be in (0, 1]")
        rng = generator_from(self.random_state)

        self.binner_ = QuantileBinner(self.n_bins)
        codes = self.binner_.fit_transform(X)  # identity-cached across sweeps
        n, d = codes.shape
        self._pack = None

        if self.loss == "huber":
            self.base_score_ = float(np.median(y))
        elif self.loss == "quantile":
            self.base_score_ = float(np.quantile(y, self.quantile_alpha))
        else:
            self.base_score_ = float(np.mean(y))
        pred = np.full(n, self.base_score_)
        self.trees_ = []
        self.train_curve_ = []
        self.eval_curve_ = []

        if eval_set is not None:
            Xe, ye = eval_set
            codes_eval = self.binner_.transform(np.asarray(Xe, dtype=float))
            pred_eval = np.full(codes_eval.shape[0], self.base_score_)
            best_eval = np.inf
            best_round = 0

        n_cols = max(1, int(round(self.colsample_bytree * d)))
        n_rows = max(2, int(round(self.subsample * n)))

        for it in range(self.n_estimators):
            resid = pred - y
            if self.loss == "huber":
                # d/dpred of the Huber loss; hessians kept at 1 (upper bound)
                grad = np.clip(resid, -self.huber_delta, self.huber_delta)
            elif self.loss == "quantile":
                # pinball: d/dpred = 1-α above the target quantile, -α below;
                # scaled by huber_delta so step sizes match the other losses
                grad = np.where(resid > 0, 1.0 - self.quantile_alpha, -self.quantile_alpha)
                grad = grad * self.huber_delta * 2.0
            else:
                grad = resid  # d/dpred of 1/2 (pred-y)^2 ; unit hessians

            feature_mask = None
            if n_cols < d:
                feature_mask = np.zeros(d, dtype=bool)
                feature_mask[rng.choice(d, n_cols, replace=False)] = True

            tree = BinnedTree(
                max_depth=self.max_depth,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                n_bins=self.n_bins,
                hist_subtraction=self.hist_subtraction,
            )
            if n_rows < n:
                rows = rng.choice(n, n_rows, replace=False)
                tree.fit(codes[rows], grad[rows], None, feature_mask)
            else:
                tree.fit(codes, grad, None, feature_mask)

            update = tree.predict(codes)
            pred = pred + self.learning_rate * update
            self.trees_.append(tree)
            self.train_curve_.append(float(np.mean(np.abs(pred - y))))

            if eval_set is not None:
                pred_eval = pred_eval + self.learning_rate * tree.predict(codes_eval)
                eval_mae = float(np.mean(np.abs(pred_eval - ye)))
                self.eval_curve_.append(eval_mae)
                if self.early_stopping_rounds is not None:
                    if eval_mae < best_eval - 1e-9:
                        best_eval = eval_mae
                        best_round = it
                    elif it - best_round >= self.early_stopping_rounds:
                        # roll back to the best round: trees AND both curves,
                        # so len(trees_) == len(train_curve_) == len(eval_curve_)
                        self.trees_ = self.trees_[: best_round + 1]
                        self.train_curve_ = self.train_curve_[: best_round + 1]
                        self.eval_curve_ = self.eval_curve_[: best_round + 1]
                        break
        return self

    # ------------------------------------------------------------------ #
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.binner_ is None:
            raise RuntimeError("predict called before fit")
        codes = self.binner_.transform(np.asarray(X, dtype=float))
        n = codes.shape[0]
        pack = self._ensure_pack()
        pred = np.empty(n, dtype=np.float64)
        # chunk so the transient (n_trees, block) matrix stays small; the
        # per-tree accumulation order matches the old loop bit-for-bit
        block = max(1, CHUNK_PAIRS // max(1, len(self.trees_)))
        for s in range(0, n, block):
            e = min(n, s + block)
            mat = pack.predict_matrix(codes[s:e])
            p = np.full(e - s, self.base_score_)
            for row in mat:
                p += self.learning_rate * row
            pred[s:e] = p
        return pred

    def predict_many(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Batch-of-batches: predict many small requests in one arena pass.

        The serving micro-batcher hands the coalesced requests here.  All
        blocks are concatenated and scored with a single :meth:`predict`
        (one binning transform, one arena walk, one accumulation loop);
        since transform, routing, and accumulation are all per-sample
        operations, each returned slice is bit-identical to
        ``predict(block)`` on its own — paying the Python/NumPy dispatch
        cost once instead of once per request.
        """
        if self.binner_ is None:
            raise RuntimeError("predict_many called before fit")
        return concat_apply_split(blocks, self.predict)

    def truncated(self, n_trees: int) -> "GradientBoostingRegressor":
        """A view of this model keeping only the first ``n_trees`` rounds.

        Shares the fitted binner and tree objects; the packed arena is
        *reused* (roots sliced via :meth:`PackedForest.truncated`, node
        arrays shared) rather than rebuilt, so registry versions that are
        stage-truncated variants of one parent cost no extra pack memory.
        """
        if self.binner_ is None:
            raise RuntimeError("truncated called before fit")
        n_trees = int(n_trees)
        if not 0 <= n_trees <= len(self.trees_):
            raise ValueError(f"n_trees must be in [0, {len(self.trees_)}], got {n_trees}")
        out = clone(self, n_estimators=n_trees)
        out.binner_ = self.binner_
        out.trees_ = self.trees_[:n_trees]
        out.base_score_ = self.base_score_
        out.train_curve_ = self.train_curve_[:n_trees]
        out.eval_curve_ = self.eval_curve_[:n_trees]
        out._pack = self._ensure_pack().truncated(n_trees)
        return out

    def staged_scores(
        self,
        eval_sets: list[tuple[np.ndarray, np.ndarray]],
        n_jobs: int | None = 1,
        block: int = 8192,
    ) -> list[np.ndarray]:
        """MAE after every boosting round on each eval set, thread-parallel.

        Scoring decomposes over fixed row blocks (size ``block``, independent
        of ``n_jobs``): each block walks the packed arena once, accumulates
        the staged predictions, and returns per-round absolute-error *sums*.
        Blocks run through :func:`~repro.parallel.pool.parallel_map` with the
        thread backend and recombine in block order, so the returned curves
        are identical for every ``n_jobs`` — the same invariance contract as
        forest tree training.
        """
        if self.binner_ is None:
            raise RuntimeError("staged_scores called before fit")
        pack = self._ensure_pack()
        T = len(self.trees_)
        codes_y: list[tuple[np.ndarray, np.ndarray]] = []
        items: list[tuple[int, int, int]] = []
        for si, (Xe, ye) in enumerate(eval_sets):
            codes = self.binner_.transform(np.asarray(Xe, dtype=float))
            ye = np.asarray(ye, dtype=np.float64)
            if codes.shape[0] != ye.shape[0]:
                raise ValueError("eval set X and y row counts differ")
            if ye.shape[0] == 0:
                raise ValueError(f"eval set {si} is empty — its MAE curve is undefined")
            codes_y.append((codes, ye))
            items.extend((si, s, min(codes.shape[0], s + block)) for s in range(0, codes.shape[0], block))

        def _score_block(item: tuple[int, int, int]) -> tuple[int, np.ndarray]:
            si, s, e = item
            codes, ye = codes_y[si]
            mat = pack.predict_matrix(codes[s:e])
            pred = np.full(e - s, self.base_score_)
            sums = np.empty(T)
            for i in range(T):
                pred = pred + self.learning_rate * mat[i]
                sums[i] = np.sum(np.abs(pred - ye[s:e]))
            return si, sums

        parts = parallel_map(_score_block, items, workers=n_jobs, backend="thread")
        curves = [np.zeros(T) for _ in eval_sets]
        for si, sums in parts:  # fixed block order ⇒ n_jobs-invariant float sums
            curves[si] += sums
        return [c / cy[1].shape[0] for c, cy in zip(curves, codes_y)]

    def staged_predict(self, X: np.ndarray) -> np.ndarray:
        """(n_trees, n_samples) predictions after each boosting round."""
        if self.binner_ is None:
            raise RuntimeError("staged_predict called before fit")
        codes = self.binner_.transform(np.asarray(X, dtype=float))
        out = self._ensure_pack().predict_matrix(codes)
        pred = np.full(codes.shape[0], self.base_score_)
        for i in range(out.shape[0]):
            pred = pred + self.learning_rate * out[i]
            out[i] = pred
        return out

    def feature_importances(self, n_features: int | None = None) -> np.ndarray:
        """Split-count importance per feature (normalized to sum 1)."""
        if not self.trees_:
            raise RuntimeError("feature_importances called before fit")
        if n_features is None:
            n_features = len(self.binner_.edges_) if self.binner_ else 0
        counts = np.zeros(int(n_features))
        for tree in self.trees_:
            nd = tree.nodes_
            internal = nd.feature[nd.feature >= 0]
            counts += np.bincount(internal, minlength=int(n_features))
        total = counts.sum()
        return counts / total if total > 0 else counts
