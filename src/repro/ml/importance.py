"""Model interpretation: permutation importance, PDPs, local surrogates.

The paper's companion work (Isakov et al., SC'20 — "HPC I/O Throughput
Bottleneck Analysis with Explainable Local Models") interrogates black-box
I/O models to surface bottleneck features; this module provides the same
toolkit for every estimator in :mod:`repro.ml`:

* :func:`permutation_importance` — model-agnostic global importance: how
  much does shuffling one column hurt the error metric?
* :func:`partial_dependence` — the model's average response as one feature
  sweeps its range (all else marginalized).
* :class:`LocalSurrogate` — a sparse linear model fitted to the black box
  in a Gaussian neighbourhood of one job, LIME-style: *this* job is slow
  because of *these* counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ml.base import Estimator
from repro.ml.linear import RidgeRegression
from repro.ml.metrics import mean_abs_log_ratio
from repro.rng import generator_from

__all__ = [
    "permutation_importance",
    "partial_dependence",
    "LocalSurrogate",
    "LocalExplanation",
]


def permutation_importance(
    model: Estimator,
    X: np.ndarray,
    y: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], float] = mean_abs_log_ratio,
    n_repeats: int = 5,
    random_state: int = 0,
) -> np.ndarray:
    """Per-feature increase in ``metric`` when that column is shuffled.

    Returns the mean increase over ``n_repeats`` shuffles, shape (d,).
    Negative values (shuffling *helped*) are reported as-is — they are a
    useful smell for features the model fits noise through.
    """
    # private writable copy: the shuffle loop below mutates columns in
    # place, which must neither touch caller memory nor crash on read-only
    # (cache-frozen) inputs
    X = np.array(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    rng = generator_from(random_state)
    base = metric(y, model.predict(X))
    n, d = X.shape
    out = np.zeros(d)
    for j in range(d):
        col = X[:, j].copy()
        acc = 0.0
        for _ in range(n_repeats):
            X[:, j] = col[rng.permutation(n)]
            acc += metric(y, model.predict(X)) - base
        X[:, j] = col
        out[j] = acc / n_repeats
    return out


def partial_dependence(
    model: Estimator,
    X: np.ndarray,
    feature: int,
    grid: np.ndarray | None = None,
    n_grid: int = 20,
    sample: int = 512,
    random_state: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """(grid, mean prediction) as ``feature`` sweeps its observed range.

    The grid defaults to quantiles of the observed column, so PDPs stay
    meaningful for the heavily skewed Darshan counters.  ``sample`` rows are
    used as the marginalization background.
    """
    X = np.asarray(X, dtype=float)
    if not 0 <= feature < X.shape[1]:
        raise IndexError(f"feature index {feature} out of range for d={X.shape[1]}")
    rng = generator_from(random_state)
    if X.shape[0] > sample:
        X = X[rng.choice(X.shape[0], sample, replace=False)]
    if grid is None:
        qs = np.linspace(0.02, 0.98, n_grid)
        grid = np.unique(np.quantile(X[:, feature], qs))
    grid = np.asarray(grid, dtype=float)

    out = np.empty(grid.size)
    Xw = X.copy()
    for i, value in enumerate(grid):
        Xw[:, feature] = value
        out[i] = float(np.mean(model.predict(Xw)))
    return grid, out


@dataclass
class LocalExplanation:
    """Sparse linear fit of the black box around one job."""

    feature_idx: np.ndarray     # indices of the top features, by |weight|
    weights: np.ndarray         # local linear weights (standardized units)
    intercept: float
    local_r2: float             # surrogate fidelity in the neighbourhood
    prediction: float           # black-box prediction at the anchor job

    def top(self, names: list[str], k: int = 8) -> list[tuple[str, float]]:
        """Human-readable (name, weight) pairs, largest |weight| first."""
        pairs = [(names[i], float(w)) for i, w in zip(self.feature_idx, self.weights)]
        return pairs[:k]


class LocalSurrogate:
    """LIME-style local explanation for regression models.

    Perturbs the anchor row with Gaussian noise scaled to each column's
    training spread, weights samples by proximity, and fits a ridge model
    on the ``n_keep`` most correlated features.  The surrogate's weights
    say which features *locally* drive the black-box prediction.
    """

    def __init__(
        self,
        n_samples: int = 1024,
        kernel_width: float = 1.5,
        n_keep: int = 10,
        ridge_alpha: float = 1.0,
        random_state: int = 0,
    ):
        if n_samples < 16:
            raise ValueError("n_samples must be >= 16")
        if n_keep < 1:
            raise ValueError("n_keep must be >= 1")
        self.n_samples = int(n_samples)
        self.kernel_width = float(kernel_width)
        self.n_keep = int(n_keep)
        self.ridge_alpha = float(ridge_alpha)
        self.random_state = int(random_state)

    def explain(
        self, model: Estimator, X_background: np.ndarray, anchor: np.ndarray
    ) -> LocalExplanation:
        """Explain ``model``'s prediction at row ``anchor``.

        ``X_background`` supplies the per-column scales (training data or a
        representative sample of it).
        """
        X_background = np.asarray(X_background, dtype=float)
        anchor = np.asarray(anchor, dtype=float).reshape(-1)
        if anchor.shape[0] != X_background.shape[1]:
            raise ValueError("anchor dimensionality does not match background")
        rng = generator_from(self.random_state)

        scale = X_background.std(axis=0)
        scale[scale < 1e-12] = 1.0

        Z = rng.normal(0.0, 1.0, (self.n_samples, anchor.size))
        X_pert = anchor[None, :] + Z * scale[None, :]
        y_pert = np.asarray(model.predict(X_pert), dtype=float)

        # proximity kernel on standardized distance
        dist2 = (Z**2).mean(axis=1)
        w = np.exp(-dist2 / (2.0 * self.kernel_width**2))

        # feature pre-selection: weighted correlation with the output
        yw = y_pert - np.average(y_pert, weights=w)
        Zw = Z - np.average(Z, axis=0, weights=w)
        corr = np.abs((w[:, None] * Zw * yw[:, None]).sum(axis=0))
        keep = np.argsort(corr)[::-1][: self.n_keep]

        # weighted ridge on the kept features (weights via row scaling)
        sw = np.sqrt(w)
        A = Z[:, keep] * sw[:, None]
        b = y_pert * sw
        ridge = RidgeRegression(alpha=self.ridge_alpha).fit(A, b)
        pred_local = ridge.predict(A)
        ss_res = float(((b - pred_local) ** 2).sum())
        ss_tot = float(((b - b.mean()) ** 2).sum())
        r2 = 1.0 - ss_res / max(ss_tot, 1e-12)

        order = np.argsort(np.abs(ridge.coef_))[::-1]
        anchor_pred = float(model.predict(anchor[None, :])[0])
        return LocalExplanation(
            feature_idx=keep[order],
            weights=ridge.coef_[order],
            intercept=ridge.intercept_,
            local_r2=r2,
            prediction=anchor_pred,
        )
