"""From-scratch ML stack (NumPy only): everything the paper's pipeline needs.

* :mod:`repro.ml.metrics`   — the paper's Eq. 6 log-ratio error and friends
* :mod:`repro.ml.gbm`       — histogram gradient boosting (XGBoost algorithm)
* :mod:`repro.ml.tree`      — binned regression trees (GBM building block)
* :mod:`repro.ml.predictor` — packed-forest arena (vectorized ensemble predict)
* :mod:`repro.ml.linear`    — ridge / lasso / elastic-net baselines
* :mod:`repro.ml.forest`    — random-forest regression (bagged binned trees)
* :mod:`repro.ml.neighbors` — kNN regression + distance-based novelty scores
* :mod:`repro.ml.importance` — permutation importance, PDPs, local surrogates
* :mod:`repro.ml.mcdropout` — MC-dropout uncertainty (ensemble alternative)
* :mod:`repro.ml.nn`        — MLPs with optional heteroscedastic Gaussian head
* :mod:`repro.ml.ensemble`  — deep ensembles + AU/EU decomposition
* :mod:`repro.ml.hpo`       — grid/random hyperparameter search
* :mod:`repro.ml.agebo`     — aging-evolution NAS (AgEBO-style)
* :mod:`repro.ml.uncertainty` — AutoDEUQ-style pipeline
"""

from repro.ml.base import Estimator, Pipeline, clone
from repro.ml.ensemble import DeepEnsemble
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.importance import LocalSurrogate, partial_dependence, permutation_importance
from repro.ml.linear import ElasticNetRegression, LassoRegression, RidgeRegression, lasso_path
from repro.ml.mcdropout import MCDropoutRegressor
from repro.ml.neighbors import KNeighborsRegressor, knn_novelty
from repro.ml.metrics import (
    dex_to_pct,
    log_ratio_error,
    mean_abs_log_ratio,
    median_abs_log_ratio,
    median_abs_pct_error,
    pct_to_dex,
)
from repro.ml.nn import MLPRegressor
from repro.ml.predictor import PackedForest

__all__ = [
    "Estimator",
    "Pipeline",
    "clone",
    "GradientBoostingRegressor",
    "PackedForest",
    "RandomForestRegressor",
    "RidgeRegression",
    "LassoRegression",
    "ElasticNetRegression",
    "lasso_path",
    "KNeighborsRegressor",
    "knn_novelty",
    "MCDropoutRegressor",
    "LocalSurrogate",
    "permutation_importance",
    "partial_dependence",
    "MLPRegressor",
    "DeepEnsemble",
    "log_ratio_error",
    "mean_abs_log_ratio",
    "median_abs_log_ratio",
    "median_abs_pct_error",
    "dex_to_pct",
    "pct_to_dex",
]
