"""Hyperparameter optimization over estimators (paper §VI.B).

Wraps :mod:`repro.parallel.sweep` with a fit/score closure so the paper's
exhaustive XGBoost grid ("8046 XGBoost models" over n_estimators × depth ×
colsample × subsample) is a one-liner.  Scores are validation-set median
absolute log-ratio errors (lower is better).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.ml.binning import frozen_copy
from repro.ml.metrics import median_abs_log_ratio
from repro.parallel.sweep import ParamGrid, SweepResult, run_grid, run_random_search

__all__ = ["HpoResult", "grid_search", "random_search", "heatmap_from_results"]


@dataclass
class HpoResult:
    """Outcome of a search: ranked configurations plus the best model refit."""

    results: list[SweepResult]
    best_params: dict[str, Any]
    best_score: float
    best_model: Any

    def scores(self) -> list[float]:
        return [r.score for r in self.results]


def _make_objective(
    factory: Callable[..., Any],
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], float],
):
    # Private copies, frozen ONCE outside the per-config closure:
    # estimators' internal ``np.asarray(X, dtype=float)`` then returns
    # these exact objects, and the read-only flag opts them into the
    # identity-keyed QuantileBinner cache — the sweep's shared matrices are
    # binned a single time instead of per configuration.
    X_train = frozen_copy(X_train)
    X_val = frozen_copy(X_val)
    y_train = np.asarray(y_train, dtype=np.float64)
    y_val = np.asarray(y_val, dtype=np.float64)

    def objective(**params: Any):
        model = factory(**params)
        model.fit(X_train, y_train)
        score = metric(y_val, model.predict(X_val))
        return score, {}

    return objective


def grid_search(
    factory: Callable[..., Any],
    grid: ParamGrid | Mapping[str, Sequence[Any]],
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], float] = median_abs_log_ratio,
    workers: int | None = 1,
    refit: bool = True,
) -> HpoResult:
    """Exhaustive sweep; refits the best configuration on train+val."""
    if not isinstance(grid, ParamGrid):
        grid = ParamGrid(**grid)
    objective = _make_objective(factory, X_train, y_train, X_val, y_val, metric)
    results = run_grid(objective, grid, workers=workers)
    best = results[0]
    best_model = None
    if refit:
        best_model = factory(**best.params)
        best_model.fit(
            np.concatenate([X_train, X_val]), np.concatenate([y_train, y_val])
        )
    return HpoResult(results=results, best_params=best.params, best_score=best.score, best_model=best_model)


def random_search(
    factory: Callable[..., Any],
    space: Mapping[str, Sequence[Any]],
    n_iter: int,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], float] = median_abs_log_ratio,
    seed: int = 0,
    workers: int | None = 1,
    refit: bool = True,
) -> HpoResult:
    """Uniform random sweep over a discrete space."""
    objective = _make_objective(factory, X_train, y_train, X_val, y_val, metric)
    results = run_random_search(objective, space, n_iter, seed=seed, workers=workers)
    best = results[0]
    best_model = None
    if refit:
        best_model = factory(**best.params)
        best_model.fit(np.concatenate([X_train, X_val]), np.concatenate([y_train, y_val]))
    return HpoResult(results=results, best_params=best.params, best_score=best.score, best_model=best_model)


def heatmap_from_results(
    results: list[SweepResult], x_param: str, y_param: str
) -> tuple[np.ndarray, list[Any], list[Any]]:
    """Pivot sweep results into a (len(y_vals), len(x_vals)) score matrix.

    Cells covered by multiple configs (other axes swept too) keep the best
    score — matching how Fig. 1a collapses the 4-parameter sweep onto the
    (trees × depth) plane.
    """
    x_vals = sorted({r.params[x_param] for r in results})
    y_vals = sorted({r.params[y_param] for r in results})
    M = np.full((len(y_vals), len(x_vals)), np.inf)
    for r in results:
        i = y_vals.index(r.params[y_param])
        j = x_vals.index(r.params[x_param])
        M[i, j] = min(M[i, j], r.score)
    return M, x_vals, y_vals
