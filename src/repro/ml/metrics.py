"""Error metrics from the paper (§V, Eq. 6).

The models optimize ``e = mean |log10(y / ŷ)|`` over linear throughputs.
All targets in this codebase are already log10 throughput ("dex"), so the
log-ratio error of a prediction is simply the dex difference.  Reported
percentages follow the paper's convention: a dex error ``x`` maps to
``10^x − 1`` relative error, so −25 % means the model *underestimated* real
throughput by 25 %, and over/underestimation by the same factor costs the
same (log symmetry).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "log_ratio_error",
    "mean_abs_log_ratio",
    "median_abs_log_ratio",
    "median_abs_pct_error",
    "dex_to_pct",
    "pct_to_dex",
    "error_percentiles",
]


def log_ratio_error(y_dex: np.ndarray, pred_dex: np.ndarray) -> np.ndarray:
    """Signed log-ratio error ``log10(y/ŷ)`` for log-space inputs."""
    y_dex = np.asarray(y_dex, dtype=float)
    pred_dex = np.asarray(pred_dex, dtype=float)
    if y_dex.shape != pred_dex.shape:
        raise ValueError(f"shape mismatch: {y_dex.shape} vs {pred_dex.shape}")
    return y_dex - pred_dex


def mean_abs_log_ratio(y_dex: np.ndarray, pred_dex: np.ndarray) -> float:
    """Eq. 6: the training objective."""
    return float(np.mean(np.abs(log_ratio_error(y_dex, pred_dex))))


def median_abs_log_ratio(y_dex: np.ndarray, pred_dex: np.ndarray) -> float:
    """The reported statistic — medians resist the heavy error tails (§V)."""
    return float(np.median(np.abs(log_ratio_error(y_dex, pred_dex))))


def dex_to_pct(x_dex: float | np.ndarray) -> float | np.ndarray:
    """Relative error implied by a dex offset: ``10^x − 1`` (as a percentage).

    ``dex_to_pct(0.0414) ≈ 10.0`` — a 0.0414 dex error is a 10 % miss.
    Negative dex maps to negative percent (underestimation).
    """
    return (np.power(10.0, x_dex) - 1.0) * 100.0


def pct_to_dex(pct: float | np.ndarray) -> float | np.ndarray:
    """Inverse of :func:`dex_to_pct`."""
    return np.log10(1.0 + np.asarray(pct, dtype=float) / 100.0)


def median_abs_pct_error(y_dex: np.ndarray, pred_dex: np.ndarray) -> float:
    """Median absolute error in percent — the paper's headline numbers."""
    return float(dex_to_pct(median_abs_log_ratio(y_dex, pred_dex)))


def error_percentiles(
    y_dex: np.ndarray, pred_dex: np.ndarray, qs: tuple[float, ...] = (20.0, 50.0, 100.0, 200.0, 400.0)
) -> dict[str, float]:
    """Share of jobs whose absolute percent error exceeds each threshold.

    Mirrors the y-axis annotations of the paper's error-distribution plots
    (Fig. 3/4 mark 20 %, 50 %, 100 %, ... levels).
    """
    err_pct = np.abs(dex_to_pct(np.abs(log_ratio_error(y_dex, pred_dex))))
    return {f">{int(q)}%": float(np.mean(err_pct > q)) for q in qs}
