"""Monte-Carlo dropout — the cheap alternative to deep ensembles (§VIII).

The paper quantifies epistemic uncertainty with an AutoDEUQ ensemble; MC
dropout (Gal & Ghahramani) approximates the same decomposition with a
*single* network by keeping dropout active at inference: T stochastic
forward passes play the role of T ensemble members.

* aleatory  AU = E_t[σ_t²]  (NLL head variance, averaged over passes)
* epistemic EU = Var_t[μ_t] (disagreement between dropout masks)

The OoD-detector ablation bench compares this against the ensemble — the
expected result (and the reason AutoDEUQ exists) is that mask diversity is
weaker than architecture diversity at flagging truly novel jobs.
"""

from __future__ import annotations

import numpy as np

from repro.data.preprocessing import Standardizer
from repro.ml.base import BaseEstimator
from repro.ml.ensemble import UncertaintyDecomposition
from repro.ml.nn import MLPRegressor
from repro.rng import generator_from

__all__ = ["MCDropoutRegressor"]


class MCDropoutRegressor(BaseEstimator):
    """One NLL-head MLP; uncertainty from stochastic dropout passes.

    Parameters
    ----------
    hidden, dropout, epochs, learning_rate, weight_decay:
        Forwarded to the underlying :class:`~repro.ml.nn.MLPRegressor`
        (``dropout`` must be positive — without it all passes agree and
        EU is identically zero).
    n_passes:
        Number of stochastic forward passes at inference.
    """

    def __init__(
        self,
        hidden: tuple[int, ...] = (128, 128),
        dropout: float = 0.1,
        n_passes: int = 20,
        epochs: int = 40,
        batch_size: int = 256,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-5,
        random_state: int = 0,
    ):
        if dropout <= 0.0:
            raise ValueError("MC dropout requires dropout > 0")
        if n_passes < 2:
            raise ValueError("need at least 2 passes to estimate disagreement")
        self.hidden = tuple(int(h) for h in hidden)
        self.dropout = float(dropout)
        self.n_passes = int(n_passes)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self.random_state = int(random_state)

        self._scaler: Standardizer | None = None
        self._mlp: MLPRegressor | None = None
        self._y_mean: float = 0.0
        self._y_std: float = 1.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MCDropoutRegressor":
        y = np.asarray(y, dtype=float)
        self._y_mean = float(y.mean())
        self._y_std = float(max(y.std(), 1e-9))
        self._scaler = Standardizer()
        Z = self._scaler.fit_transform(np.asarray(X, dtype=float))
        self._mlp = MLPRegressor(
            hidden=self.hidden,
            loss="nll",
            dropout=self.dropout,
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            weight_decay=self.weight_decay,
            random_state=self.random_state,
        )
        self._mlp.fit(Z, (y - self._y_mean) / self._y_std)
        return self

    # ------------------------------------------------------------------ #
    def _stochastic_passes(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(T, n) means and variances from dropout-active forward passes."""
        if self._mlp is None or self._scaler is None:
            raise RuntimeError("predict called before fit")
        Z = self._scaler.transform(np.asarray(X, dtype=float))
        rng = generator_from(self.random_state + 1)
        mus, variances = [], []
        for _ in range(self.n_passes):
            out, _, _, _ = self._mlp._forward(Z, rng)
            mu = out[:, 0] * self._y_std + self._y_mean
            log_var = np.clip(out[:, 1], -10.0, 3.0)
            var = np.exp(log_var) * self._y_std**2
            mus.append(mu)
            variances.append(var)
        return np.stack(mus), np.stack(variances)

    def predict(self, X: np.ndarray) -> np.ndarray:
        mus, _ = self._stochastic_passes(X)
        return mus.mean(axis=0)

    def decompose(self, X: np.ndarray) -> UncertaintyDecomposition:
        """Law-of-total-variance split over dropout masks."""
        mus, variances = self._stochastic_passes(X)
        return UncertaintyDecomposition(
            mean=mus.mean(axis=0),
            aleatory=variances.mean(axis=0),
            epistemic=mus.var(axis=0),
        )
