"""Darshan POSIX counter synthesis.

Every counter is a *deterministic* function of the job's latent application
configuration.  This is the linchpin of the duplicate-job litmus test: reruns
of the same variant produce bit-identical feature rows, exactly like
Darshan's aggregate POSIX counters for a re-executed binary on the same
inputs (the paper's §VI.A definition of duplicates).  Timing-derived Darshan
fields (``*_F_*``) are deliberately absent, mirroring the paper (and [2])
which remove them so models cannot reverse-engineer Darshan's throughput
computation.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.schema import POSIX_FEATURES, SIZE_BUCKETS

__all__ = ["posix_features", "size_histogram"]


def size_histogram(ops: np.ndarray, xfer: np.ndarray) -> np.ndarray:
    """Distribute ``ops`` operations of size ``xfer`` into Darshan's buckets.

    Real applications spread around their dominant transfer size; we place
    72 % of operations in the home bucket, 18 % one bucket below (short
    tail reads/writes), and 10 % in the smallest bucket (headers/metadata
    records).  The split is deterministic so duplicates stay identical.
    """
    n = ops.shape[0]
    hist = np.zeros((n, len(SIZE_BUCKETS)))
    edges = np.array([hi for _, _, hi in SIZE_BUCKETS[:-1]])
    home = np.searchsorted(edges, xfer, side="right")
    below = np.maximum(home - 1, 0)
    rows = np.arange(n)
    hist[rows, home] += 0.72 * ops
    hist[rows, below] += 0.18 * ops
    hist[rows, 0] += 0.10 * ops
    return np.floor(hist)


_AGG_XFER = 4.0 * 1024 * 1024  # MPI-IO collective buffering aggregate size


def posix_features(params: dict[str, np.ndarray]) -> np.ndarray:
    """(n_jobs, 48) POSIX counter matrix in :data:`POSIX_FEATURES` order.

    Collective MPI-IO is observed *post-aggregation* at the POSIX layer —
    the aggregator ranks issue large (~4 MiB), aligned, sequential writes —
    exactly as real Darshan records it ("all requests through MPI-IO are
    also visible on the POSIX level", §V).  The collective share of the
    traffic therefore lands in the large-size histogram buckets, and the
    POSIX view alone suffices to model application behaviour.
    """
    nprocs = np.asarray(params["nprocs"], dtype=float)
    total_bytes = np.asarray(params["total_bytes"], dtype=float)
    read_frac = np.asarray(params["read_frac"], dtype=float)
    xfer_read = np.asarray(params["xfer_read"], dtype=float)
    xfer_write = np.asarray(params["xfer_write"], dtype=float)
    shared_frac = np.asarray(params["shared_frac"], dtype=float)
    files_per_proc = np.asarray(params["files_per_proc"], dtype=float)
    shared_files = np.asarray(params["shared_files"], dtype=float)
    meta_per_gib = np.asarray(params["meta_per_gib"], dtype=float)
    seq_frac = np.asarray(params["seq_frac"], dtype=float)
    aligned_frac = np.asarray(params["aligned_frac"], dtype=float)
    fsync_per_gib = np.asarray(params["fsync_per_gib"], dtype=float)
    collective_frac = np.asarray(params.get("collective_frac", np.zeros_like(nprocs)), dtype=float)

    gib = total_bytes / 1024.0**3
    bytes_read = np.floor(total_bytes * read_frac)
    bytes_written = total_bytes - bytes_read

    # split each direction into direct traffic (application transfer size)
    # and collective traffic (aggregated size, aligned, sequential)
    agg_read = np.maximum(xfer_read, _AGG_XFER)
    agg_write = np.maximum(xfer_write, _AGG_XFER)
    reads_direct = np.ceil(bytes_read * (1.0 - collective_frac) / xfer_read)
    reads_agg = np.ceil(bytes_read * collective_frac / agg_read)
    writes_direct = np.ceil(bytes_written * (1.0 - collective_frac) / xfer_write)
    writes_agg = np.ceil(bytes_written * collective_frac / agg_write)
    reads = reads_direct + reads_agg
    writes = writes_direct + writes_agg
    ops = reads + writes
    # pattern penalties only apply to the direct share; aggregated traffic
    # is sequential and aligned by construction
    seq_frac = 1.0 - (1.0 - seq_frac) * (1.0 - collective_frac)
    aligned_eff_ops = (1.0 - aligned_frac) * (reads_direct + writes_direct)

    n_unique = np.round(nprocs * files_per_proc * (1.0 - 0.5 * shared_frac))
    n_shared = np.round(shared_files * np.minimum(1.0, shared_frac * 2.0))
    file_count = n_unique + n_shared
    opens = n_unique + n_shared * nprocs

    seeks = np.floor((1.0 - seq_frac) * ops)
    stats = np.floor(0.6 * meta_per_gib * gib)
    mmaps = np.zeros_like(ops)
    fsyncs = np.floor(fsync_per_gib * gib)
    fdsyncs = np.floor(0.12 * fsyncs)

    consec_reads = np.floor(0.8 * seq_frac * reads)
    consec_writes = np.floor(0.8 * seq_frac * writes)
    seq_reads = np.floor(seq_frac * reads)
    seq_writes = np.floor(seq_frac * writes)
    mix = 1.0 - np.abs(2.0 * read_frac - 1.0)
    rw_switches = np.floor(0.12 * mix * ops)
    mem_not_aligned = np.floor(0.9 * aligned_eff_ops)
    file_not_aligned = np.floor(aligned_eff_ops)

    read_hist = size_histogram(reads_direct, xfer_read) + size_histogram(reads_agg, agg_read)
    write_hist = size_histogram(writes_direct, xfer_write) + size_histogram(writes_agg, agg_write)

    max_byte_read = np.maximum(bytes_read / np.maximum(n_unique + n_shared, 1.0) - 1.0, 0.0)
    max_byte_written = np.maximum(bytes_written / np.maximum(n_unique + n_shared, 1.0) - 1.0, 0.0)
    mode = np.full_like(ops, 438.0)  # 0666
    eff_write = np.where(writes_agg > writes_direct, agg_write, xfer_write)
    eff_read = np.where(reads_agg > reads_direct, agg_read, xfer_read)
    access1 = np.where(writes >= reads, eff_write, eff_read)
    access1_count = np.floor(0.72 * np.maximum(reads, writes))
    access2 = np.where(writes >= reads, eff_read, eff_write)
    access2_count = np.floor(0.72 * np.minimum(reads, writes))

    cols = [
        nprocs,
        opens,
        file_count,
        n_shared,
        n_unique,
        reads,
        writes,
        seeks,
        stats,
        mmaps,
        fsyncs,
        fdsyncs,
        bytes_read,
        bytes_written,
        consec_reads,
        consec_writes,
        seq_reads,
        seq_writes,
        rw_switches,
        mem_not_aligned,
        file_not_aligned,
        *read_hist.T,
        *write_hist.T,
        max_byte_read,
        max_byte_written,
        mode,
        access1,
        access1_count,
        access2,
        access2_count,
    ]
    X = np.column_stack(cols)
    assert X.shape[1] == len(POSIX_FEATURES)
    return X
