"""Feature registries for every telemetry source.

Names follow the real tools' conventions (Darshan counter names, LMT server
metrics) so downstream code reads like production log analysis.  The counts
are structural constants of the reproduction and are asserted at import
time: 48 POSIX + 48 MPI-IO + 5 Cobalt + 37 LMT, exactly as in the paper.
"""

from __future__ import annotations

__all__ = [
    "POSIX_FEATURES",
    "MPIIO_FEATURES",
    "COBALT_FEATURES",
    "LMT_FEATURES",
    "SIZE_BUCKETS",
    "size_bucket_names",
]

#: Darshan's histogram bucket edges for access sizes (bytes)
SIZE_BUCKETS: list[tuple[str, float, float]] = [
    ("0_100", 0.0, 100.0),
    ("100_1K", 100.0, 1e3),
    ("1K_10K", 1e3, 1e4),
    ("10K_100K", 1e4, 1e5),
    ("100K_1M", 1e5, 1e6),
    ("1M_4M", 1e6, 4e6),
    ("4M_10M", 4e6, 1e7),
    ("10M_100M", 1e7, 1e8),
    ("100M_1G", 1e8, 1e9),
    ("1G_PLUS", 1e9, float("inf")),
]


def size_bucket_names(prefix: str) -> list[str]:
    """Histogram feature names for one direction, e.g. ``POSIX_SIZE_READ_*``."""
    return [f"{prefix}_{label}" for label, _, _ in SIZE_BUCKETS]


POSIX_FEATURES: list[str] = (
    [
        "POSIX_NPROCS",
        "POSIX_OPENS",
        "POSIX_FILE_COUNT",
        "POSIX_SHARED_FILE_COUNT",
        "POSIX_UNIQUE_FILE_COUNT",
        "POSIX_READS",
        "POSIX_WRITES",
        "POSIX_SEEKS",
        "POSIX_STATS",
        "POSIX_MMAPS",
        "POSIX_FSYNCS",
        "POSIX_FDSYNCS",
        "POSIX_BYTES_READ",
        "POSIX_BYTES_WRITTEN",
        "POSIX_CONSEC_READS",
        "POSIX_CONSEC_WRITES",
        "POSIX_SEQ_READS",
        "POSIX_SEQ_WRITES",
        "POSIX_RW_SWITCHES",
        "POSIX_MEM_NOT_ALIGNED",
        "POSIX_FILE_NOT_ALIGNED",
    ]
    + size_bucket_names("POSIX_SIZE_READ")
    + size_bucket_names("POSIX_SIZE_WRITE")
    + [
        "POSIX_MAX_BYTE_READ",
        "POSIX_MAX_BYTE_WRITTEN",
        "POSIX_MODE",
        "POSIX_ACCESS1_ACCESS",
        "POSIX_ACCESS1_COUNT",
        "POSIX_ACCESS2_ACCESS",
        "POSIX_ACCESS2_COUNT",
    ]
)

MPIIO_FEATURES: list[str] = (
    [
        "MPIIO_INDEP_OPENS",
        "MPIIO_COLL_OPENS",
        "MPIIO_INDEP_READS",
        "MPIIO_INDEP_WRITES",
        "MPIIO_COLL_READS",
        "MPIIO_COLL_WRITES",
        "MPIIO_SPLIT_READS",
        "MPIIO_SPLIT_WRITES",
        "MPIIO_NB_READS",
        "MPIIO_NB_WRITES",
        "MPIIO_SYNCS",
        "MPIIO_HINTS",
        "MPIIO_VIEWS",
        "MPIIO_MODE",
        "MPIIO_BYTES_READ",
        "MPIIO_BYTES_WRITTEN",
        "MPIIO_RW_SWITCHES",
    ]
    + size_bucket_names("MPIIO_SIZE_READ_AGG")
    + size_bucket_names("MPIIO_SIZE_WRITE_AGG")
    + [
        "MPIIO_ACCESS1_ACCESS",
        "MPIIO_ACCESS1_COUNT",
        "MPIIO_ACCESS2_ACCESS",
        "MPIIO_ACCESS2_COUNT",
        "MPIIO_NPROCS",
        "MPIIO_FILE_COUNT",
        "MPIIO_SHARED_FILE_COUNT",
        "MPIIO_UNIQUE_FILE_COUNT",
        "MPIIO_AGG_XFER_SIZE",
        "MPIIO_COLL_BUFFER_SIZE",
        "MPIIO_DATAREP",
    ]
)

COBALT_FEATURES: list[str] = [
    "COBALT_NUM_NODES",
    "COBALT_NUM_CORES",
    "COBALT_START_TIMESTAMP",
    "COBALT_END_TIMESTAMP",
    "COBALT_PLACEMENT_SCORE",
]

_LMT_AGG = ("MIN", "MAX", "MEAN", "STD")
_LMT_SERIES = (
    "LMT_OST_READ_MBPS",
    "LMT_OST_WRITE_MBPS",
    "LMT_OSS_CPU_PCT",
    "LMT_OSS_MEM_PCT",
    "LMT_MDS_CPU_PCT",
    "LMT_MDT_OPS_RATE",
)
_LMT_MDT_TYPES = (
    "OPEN",
    "CLOSE",
    "GETATTR",
    "SETATTR",
    "MKDIR",
    "RMDIR",
    "UNLINK",
    "RENAME",
    "GETXATTR",
    "STATFS",
)

LMT_FEATURES: list[str] = (
    [f"{series}_{agg}" for series in _LMT_SERIES for agg in _LMT_AGG]
    + ["LMT_FULLNESS_PCT_MEAN"]
    + [f"LMT_MDT_{op}_MEAN" for op in _LMT_MDT_TYPES]
    + ["LMT_N_OSS_ACTIVE", "LMT_N_OST_ACTIVE"]
)

# structural invariants from the paper (§V)
assert len(POSIX_FEATURES) == 48, len(POSIX_FEATURES)
assert len(MPIIO_FEATURES) == 48, len(MPIIO_FEATURES)
assert len(COBALT_FEATURES) == 5, len(COBALT_FEATURES)
assert len(LMT_FEATURES) == 37, len(LMT_FEATURES)
assert len(set(POSIX_FEATURES + MPIIO_FEATURES + COBALT_FEATURES + LMT_FEATURES)) == 138
