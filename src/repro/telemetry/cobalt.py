"""Cobalt scheduler log synthesis (ALCF Theta).

Five features, per §V: nodes and cores assigned, job start and end times,
and a placement descriptor.  Crucially, ``START``/``END`` are *realized*
wall-clock values with sub-second resolution — so once Cobalt features are
included, "no two jobs are duplicates due to small timing variations"
(§VI.C), which is exactly the memorization hazard the paper demonstrates.
"""

from __future__ import annotations

import numpy as np

from repro.rng import generator_from
from repro.simulator.job import JobTable
from repro.telemetry.schema import COBALT_FEATURES

__all__ = ["cobalt_features"]


def cobalt_features(jobs: JobTable, rng) -> np.ndarray:
    """(n_jobs, 5) Cobalt matrix in :data:`COBALT_FEATURES` order."""
    gen = generator_from(rng)
    n = len(jobs)
    placement = gen.uniform(0.0, 1.0, n)  # normalized partition locality score
    X = np.column_stack(
        [
            jobs.nodes.astype(float),
            jobs.cores.astype(float),
            jobs.start_time,
            jobs.end_time,
            placement,
        ]
    )
    assert X.shape[1] == len(COBALT_FEATURES)
    return X
