"""Lustre Monitoring Tools (LMT) synthesis (NERSC Cori).

LMT records OSS/OST/MDS/MDT server-side state every 5 seconds; since a job
may be served by any number of servers, only window aggregates (min, max,
mean, std) are exposed to the model (§V).  We sample each base series at a
fixed number of points inside the job window, add server-side measurement
noise, and aggregate — the same information channel with the same dilution.

The base series are driven by the *shared* substrate state (background +
job-driven load timeline, weather realization), so LMT features genuinely
observe the ζg(t) process that the system-modeling litmus test targets:
degradations surface as MDS/OSS CPU spikes and served-bandwidth dips, and
filesystem fullness is reported directly.
"""

from __future__ import annotations

import numpy as np

from repro.rng import generator_from
from repro.simulator.contention import BackgroundLoad, LoadTimeline
from repro.simulator.job import JobTable
from repro.simulator.platform import Platform
from repro.simulator.weather import Weather
from repro.telemetry.schema import LMT_FEATURES

__all__ = ["lmt_features", "N_WINDOW_SAMPLES"]

#: sample points per job window (LMT's 5 s cadence collapsed to aggregates)
N_WINDOW_SAMPLES = 16

#: share of each MDT operation type in ambient metadata traffic
_MDT_MIX = np.array([0.22, 0.22, 0.28, 0.05, 0.02, 0.01, 0.06, 0.02, 0.04, 0.08])
_MDT_MIX = _MDT_MIX / _MDT_MIX.sum()


def _window_samples(jobs: JobTable, start_epoch: float) -> np.ndarray:
    """(n_jobs, K) sample times inside each job's window (offsets from span start)."""
    start = jobs.start_time - start_epoch
    end = jobs.end_time - start_epoch
    fracs = np.linspace(0.0, 1.0, N_WINDOW_SAMPLES)
    return start[:, None] + fracs[None, :] * (end - start)[:, None]


def lmt_features(
    jobs: JobTable,
    weather: Weather,
    timeline: LoadTimeline,
    background: BackgroundLoad,
    platform: Platform,
    start_epoch: float,
    rng,
    measurement_noise: float = 0.08,
) -> np.ndarray:
    """(n_jobs, 37) LMT matrix in :data:`LMT_FEATURES` order."""
    gen = generator_from(rng)
    t = _window_samples(jobs, start_epoch)
    n, k = t.shape

    load = timeline.load_at(t.ravel()).reshape(n, k) + background.load_at(t.ravel()).reshape(n, k)
    fg = weather.log_factor(t.ravel()).reshape(n, k)
    deg = weather.degradation(t.ravel()).reshape(n, k)
    fullness = weather.fullness(t.ravel()).reshape(n, k)

    cfg = platform.config
    served = np.clip(load, 0.0, 1.0) * np.power(10.0, fg)  # weather throttles delivery
    # direction split follows the platform's read/write capacity ratio
    read_share = cfg.peak_read_mibps / (cfg.peak_read_mibps + cfg.peak_write_mibps)
    ost_read = served * cfg.peak_read_mibps * read_share / max(cfg.n_oss, 1)
    ost_write = served * cfg.peak_write_mibps * (1.0 - read_share) / max(cfg.n_oss, 1)

    oss_cpu = np.clip(28.0 + 46.0 * load - 130.0 * fg, 0.0, 100.0)
    oss_mem = np.clip(45.0 + 30.0 * fullness + 8.0 * load, 0.0, 100.0)
    mds_cpu = np.clip(18.0 + 22.0 * load + 160.0 * deg, 0.0, 100.0)
    mdt_rate = (900.0 + 2400.0 * load + 9000.0 * deg) * cfg.n_mds

    def noisy(x: np.ndarray) -> np.ndarray:
        return x * np.exp(gen.normal(0.0, measurement_noise, x.shape))

    series = [noisy(ost_read), noisy(ost_write), noisy(oss_cpu), noisy(oss_mem),
              noisy(mds_cpu), noisy(mdt_rate)]

    cols: list[np.ndarray] = []
    for s in series:
        cols.extend([s.min(axis=1), s.max(axis=1), s.mean(axis=1), s.std(axis=1)])

    cols.append(100.0 * fullness.mean(axis=1))
    mdt_mean = series[5].mean(axis=1)
    for share in _MDT_MIX:
        cols.append(mdt_mean * share)
    cols.append(np.full(n, float(cfg.n_oss)))
    cols.append(np.full(n, float(cfg.n_ost)))

    X = np.column_stack(cols)
    assert X.shape[1] == len(LMT_FEATURES)
    return X
