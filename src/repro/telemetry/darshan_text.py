"""Darshan text-log round-trip (``darshan-parser --total`` format).

Production pipelines do not hand you feature matrices — they hand you
directories of Darshan logs that ``darshan-parser`` renders as
``total_<COUNTER>: <value>`` lines.  This module writes each simulated job
in that text format and parses it back, giving the repository a realistic
ingestion path (and making the synthetic corpus exportable to any external
Darshan tooling that consumes parser output).

Round-trip fidelity is exact for the integer counters and bit-exact for
floats (written with ``repr``), which the tests assert — duplicate-set
detection downstream depends on byte-identical feature rows surviving the
trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.dataset import Dataset
from repro.telemetry.schema import MPIIO_FEATURES, POSIX_FEATURES

__all__ = ["DarshanRecord", "render_log", "parse_log", "dump_dataset", "load_logs"]

_VERSION_LINE = "# darshan log version: 3.41 (synthetic)"


@dataclass
class DarshanRecord:
    """One job's parsed Darshan log."""

    job_id: int
    nprocs: int
    start_time: float
    end_time: float
    exe: str = "unknown"
    posix: dict[str, float] = field(default_factory=dict)
    mpiio: dict[str, float] = field(default_factory=dict)

    @property
    def has_mpiio(self) -> bool:
        return bool(self.mpiio)

    def posix_row(self) -> np.ndarray:
        """Counters as a row in :data:`POSIX_FEATURES` order."""
        try:
            return np.array([self.posix[name] for name in POSIX_FEATURES])
        except KeyError as exc:
            raise ValueError(f"log is missing POSIX counter {exc.args[0]!r}") from exc

    def mpiio_row(self) -> np.ndarray:
        """Counters as a row in :data:`MPIIO_FEATURES` order (zeros if absent)."""
        if not self.mpiio:
            return np.zeros(len(MPIIO_FEATURES))
        try:
            return np.array([self.mpiio[name] for name in MPIIO_FEATURES])
        except KeyError as exc:
            raise ValueError(f"log is missing MPI-IO counter {exc.args[0]!r}") from exc


def _fmt(value: float) -> str:
    """Integer counters as integers, fractional ones exactly via repr."""
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def render_log(record: DarshanRecord) -> str:
    """Render one record as darshan-parser--style text."""
    lines = [
        _VERSION_LINE,
        f"# exe: {record.exe}",
        f"# jobid: {record.job_id}",
        f"# nprocs: {record.nprocs}",
        f"# start_time: {repr(float(record.start_time))}",
        f"# end_time: {repr(float(record.end_time))}",
        "",
        "# *** POSIX module data ***",
    ]
    lines += [f"total_{name}: {_fmt(record.posix[name])}" for name in POSIX_FEATURES]
    if record.mpiio:
        lines.append("")
        lines.append("# *** MPI-IO module data ***")
        lines += [f"total_{name}: {_fmt(record.mpiio[name])}" for name in MPIIO_FEATURES]
    return "\n".join(lines) + "\n"


def parse_log(text: str) -> DarshanRecord:
    """Parse one darshan-parser--style log back into a record."""
    header: dict[str, str] = {}
    posix: dict[str, float] = {}
    mpiio: dict[str, float] = {}
    section = posix
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line.lstrip("# ").rstrip()
            if "MPI-IO module" in body:
                section = mpiio
            elif "POSIX module" in body:
                section = posix
            elif ":" in body:
                key, _, value = body.partition(":")
                header[key.strip()] = value.strip()
            continue
        if line.startswith("total_"):
            key, _, value = line.partition(":")
            section[key[len("total_"):].strip()] = float(value)
            continue
        raise ValueError(f"unparseable darshan line: {raw!r}")

    for required in ("jobid", "nprocs", "start_time", "end_time"):
        if required not in header:
            raise ValueError(f"darshan log missing header field {required!r}")
    return DarshanRecord(
        job_id=int(header["jobid"]),
        nprocs=int(header["nprocs"]),
        start_time=float(header["start_time"]),
        end_time=float(header["end_time"]),
        exe=header.get("exe", "unknown"),
        posix=posix,
        mpiio=mpiio,
    )


def dump_dataset(dataset: Dataset, directory: str | Path, limit: int | None = None) -> int:
    """Write one ``job<id>.darshan.txt`` per job; returns the file count.

    MPI-IO sections are emitted only for jobs whose MPI-IO counters are
    non-zero, mirroring Darshan's per-module opt-in (§V: "Darshan collects
    MPI-IO information for jobs that use it").
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    n = len(dataset) if limit is None else min(limit, len(dataset))
    posix = dataset.frames["posix"]
    mpiio = dataset.frames.get("mpiio")
    nprocs_col = POSIX_FEATURES.index("POSIX_NPROCS")
    fam = dataset.meta.get("family_id")

    for i in range(n):
        row = {name: float(posix[i, k]) for k, name in enumerate(POSIX_FEATURES)}
        mp: dict[str, float] = {}
        if mpiio is not None and np.any(mpiio[i] != 0.0):
            mp = {name: float(mpiio[i, k]) for k, name in enumerate(MPIIO_FEATURES)}
        record = DarshanRecord(
            job_id=i,
            nprocs=int(posix[i, nprocs_col]),
            start_time=float(dataset.start_time[i]),
            end_time=float(dataset.end_time[i]),
            exe=f"family_{int(fam[i])}" if fam is not None else "unknown",
            posix=row,
            mpiio=mp,
        )
        (directory / f"job{i}.darshan.txt").write_text(render_log(record))
    return n


def load_logs(directory: str | Path) -> list[DarshanRecord]:
    """Parse every ``*.darshan.txt`` under ``directory``, sorted by job id."""
    directory = Path(directory)
    records = [parse_log(p.read_text()) for p in sorted(directory.glob("*.darshan.txt"))]
    records.sort(key=lambda r: r.job_id)
    return records
