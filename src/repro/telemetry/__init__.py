"""Telemetry generators: render simulated jobs into the paper's log sources.

* :mod:`repro.telemetry.darshan` — 48 Darshan POSIX counters (application view)
* :mod:`repro.telemetry.mpiio`   — 48 Darshan MPI-IO counters (redundant view)
* :mod:`repro.telemetry.cobalt`  — 5 Cobalt scheduler features
* :mod:`repro.telemetry.lmt`     — 37 Lustre Monitoring Tools aggregates

Feature counts match §V of the paper exactly ("models have access to 48
Darshan POSIX, 48 Darshan MPI-IO, 37 LMT, and 5 Cobalt features").
"""

from repro.telemetry.cobalt import cobalt_features
from repro.telemetry.darshan import posix_features
from repro.telemetry.lmt import lmt_features
from repro.telemetry.mpiio import mpiio_features
from repro.telemetry.schema import COBALT_FEATURES, LMT_FEATURES, MPIIO_FEATURES, POSIX_FEATURES

__all__ = [
    "posix_features",
    "mpiio_features",
    "cobalt_features",
    "lmt_features",
    "POSIX_FEATURES",
    "MPIIO_FEATURES",
    "COBALT_FEATURES",
    "LMT_FEATURES",
]
