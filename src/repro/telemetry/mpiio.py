"""Darshan MPI-IO counter synthesis.

MPI-IO sits above POSIX: "all requests through MPI-IO are also visible on
the POSIX level" (§V).  Accordingly these counters are a *redundant*
re-expression of the same latent configuration — the generative reason the
paper's Fig. 3 finds that adding MPI-IO features does not reduce model error.
Jobs that do not use MPI-IO report an all-zero row, as a real Darshan log
without the MPI-IO module would after the usual "fill missing with 0"
preprocessing.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.darshan import size_histogram
from repro.telemetry.schema import MPIIO_FEATURES

__all__ = ["mpiio_features"]

_COLL_BUFFER = 4.0 * 1024 * 1024


def mpiio_features(params: dict[str, np.ndarray]) -> np.ndarray:
    """(n_jobs, 48) MPI-IO counter matrix in :data:`MPIIO_FEATURES` order."""
    uses = np.asarray(params["uses_mpiio"], dtype=bool)
    nprocs = np.asarray(params["nprocs"], dtype=float)
    total_bytes = np.asarray(params["total_bytes"], dtype=float)
    read_frac = np.asarray(params["read_frac"], dtype=float)
    xfer_read = np.asarray(params["xfer_read"], dtype=float)
    xfer_write = np.asarray(params["xfer_write"], dtype=float)
    shared_frac = np.asarray(params["shared_frac"], dtype=float)
    files_per_proc = np.asarray(params["files_per_proc"], dtype=float)
    shared_files = np.asarray(params["shared_files"], dtype=float)
    collective_frac = np.asarray(params["collective_frac"], dtype=float)
    fsync_per_gib = np.asarray(params["fsync_per_gib"], dtype=float)

    gib = total_bytes / 1024.0**3
    bytes_read = np.floor(total_bytes * read_frac)
    bytes_written = total_bytes - bytes_read
    reads = np.ceil(bytes_read / xfer_read)
    writes = np.ceil(bytes_written / xfer_write)

    coll_reads = np.floor(collective_frac * reads)
    coll_writes = np.floor(collective_frac * writes)
    indep_reads = reads - coll_reads
    indep_writes = writes - coll_writes

    n_shared = np.round(shared_files * np.minimum(1.0, shared_frac * 2.0))
    n_unique = np.round(nprocs * files_per_proc * (1.0 - 0.5 * shared_frac))
    coll_opens = np.floor(collective_frac * (n_shared * nprocs))
    indep_opens = n_unique + n_shared * nprocs - coll_opens

    # aggregated transfer size seen by the filesystem after collective buffering
    agg_xfer = (1.0 - collective_frac) * xfer_write + collective_frac * np.maximum(
        xfer_write, _COLL_BUFFER
    )

    mix = 1.0 - np.abs(2.0 * read_frac - 1.0)
    zeros = np.zeros_like(reads)
    cols = [
        indep_opens,
        coll_opens,
        indep_reads,
        indep_writes,
        coll_reads,
        coll_writes,
        np.floor(0.05 * coll_reads),          # split collective
        np.floor(0.05 * coll_writes),
        np.floor(0.10 * indep_reads),         # nonblocking
        np.floor(0.10 * indep_writes),
        np.floor(fsync_per_gib * gib),
        np.where(collective_frac > 0.0, 3.0, 1.0),   # hints set
        n_shared + np.floor(collective_frac * 2.0),  # views
        np.full_like(reads, 5.0),                    # amode (rdwr|create)
        bytes_read,
        bytes_written,
        np.floor(0.12 * mix * (reads + writes)),
        *size_histogram(reads, xfer_read).T,
        *size_histogram(writes, agg_xfer).T,
        np.where(writes >= reads, agg_xfer, xfer_read),
        np.floor(0.72 * np.maximum(reads, writes)),
        np.where(writes >= reads, xfer_read, agg_xfer),
        np.floor(0.72 * np.minimum(reads, writes)),
        nprocs,
        n_unique + n_shared,
        n_shared,
        n_unique,
        agg_xfer,
        np.full_like(reads, _COLL_BUFFER),
        zeros,                                 # datarep (native)
    ]
    X = np.column_stack(cols)
    X[~uses] = 0.0
    assert X.shape[1] == len(MPIIO_FEATURES)
    return X
