"""Duplicate-job discovery (paper §VI.A) and Δt pairing utilities (§IX).

Duplicates are found *from the observable features alone* — jobs whose
POSIX (application-side) feature rows are bit-identical — never from the
simulator's ground-truth variant ids.  This keeps the litmus tests honest:
they see exactly what a practitioner analyzing production Darshan logs sees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DuplicateSets", "find_duplicate_sets", "concurrent_subsets", "duplicate_pairs"]


@dataclass
class DuplicateSets:
    """Partition of jobs into duplicate sets of size >= 2.

    ``set_id[j]`` is the set index of job ``j`` or ``-1`` for singletons;
    ``sets`` lists member-index arrays, one per set.
    """

    set_id: np.ndarray
    sets: list[np.ndarray]

    @property
    def n_sets(self) -> int:
        return len(self.sets)

    @property
    def n_duplicates(self) -> int:
        return int(sum(s.size for s in self.sets))

    def fraction_of(self, n_jobs: int) -> float:
        """Share of the dataset that belongs to a duplicate set."""
        return self.n_duplicates / max(1, n_jobs)

    def set_sizes(self) -> np.ndarray:
        return np.array([s.size for s in self.sets], dtype=np.int64)


def _row_groups(X: np.ndarray) -> np.ndarray:
    """Group id per row such that identical rows share an id."""
    X = np.ascontiguousarray(X)
    _, inverse = np.unique(X, axis=0, return_inverse=True)
    return inverse.reshape(-1)


def find_duplicate_sets(features: np.ndarray) -> DuplicateSets:
    """Group jobs whose feature rows are exactly identical.

    Exact float equality is intentional: Darshan counters are integers and
    deterministic per rerun; any realized (noisy) quantity in the feature
    set — e.g. Cobalt end timestamps — correctly destroys duplicate
    structure, reproducing §VI.C.
    """
    inverse = _row_groups(np.asarray(features))
    order = np.argsort(inverse, kind="stable")
    sorted_ids = inverse[order]
    boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
    groups = np.split(order, boundaries)

    set_id = np.full(inverse.shape[0], -1, dtype=np.int64)
    sets: list[np.ndarray] = []
    for g in groups:
        if g.size >= 2:
            set_id[g] = len(sets)
            sets.append(np.sort(g))
    return DuplicateSets(set_id=set_id, sets=sets)


def concurrent_subsets(
    dups: DuplicateSets, start_time: np.ndarray, window: float = 1.0
) -> list[np.ndarray]:
    """Δt = 0 subsets: duplicate-set members started within ``window`` seconds.

    The paper's §IX litmus test observes duplicates "ran at the same time";
    batched submissions land within the same second.  Returns subsets of
    size >= 2 only.
    """
    t = np.asarray(start_time, dtype=float)
    out: list[np.ndarray] = []
    for members in dups.sets:
        bucket = np.floor(t[members] / window).astype(np.int64)
        order = np.argsort(bucket, kind="stable")
        sorted_b = bucket[order]
        boundaries = np.flatnonzero(np.diff(sorted_b)) + 1
        for g in np.split(members[order], boundaries):
            if g.size >= 2:
                out.append(np.sort(g))
    return out


def duplicate_pairs(
    dups: DuplicateSets,
    start_time: np.ndarray,
    values: np.ndarray,
    max_pairs_per_set: int = 2_000,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All (Δt, Δvalue, weight) pairs within duplicate sets (Fig. 1c / Fig. 6).

    Weights are ``1 / n_pairs(set)`` so large sets (periodic benchmarks with
    hundreds of members) are not over-represented — the paper applies the
    same reweighting.  Sets whose pair count exceeds ``max_pairs_per_set``
    are subsampled.
    """
    t = np.asarray(start_time, dtype=float)
    v = np.asarray(values, dtype=float)
    gen = rng if rng is not None else np.random.default_rng(0)

    dt_parts: list[np.ndarray] = []
    dv_parts: list[np.ndarray] = []
    w_parts: list[np.ndarray] = []
    for members in dups.sets:
        m = members.size
        n_pairs = m * (m - 1) // 2
        if n_pairs <= max_pairs_per_set:
            ii, jj = np.triu_indices(m, k=1)
            a, b = members[ii], members[jj]
        else:
            a = members[gen.integers(0, m, max_pairs_per_set)]
            b = members[gen.integers(0, m, max_pairs_per_set)]
            keep = a != b
            a, b = a[keep], b[keep]
        if a.size == 0:
            continue
        dt_parts.append(np.abs(t[a] - t[b]))
        dv_parts.append(v[a] - v[b])
        w_parts.append(np.full(a.size, 1.0 / a.size))
    if not dt_parts:
        empty = np.empty(0)
        return empty, empty.copy(), empty.copy()
    return np.concatenate(dt_parts), np.concatenate(dv_parts), np.concatenate(w_parts)
