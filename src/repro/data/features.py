"""Feature-set selection: the paper's model input configurations.

§VI-§VII compare models trained on POSIX alone against models enriched with
MPI-IO, Cobalt, LMT, or the bare job start time.  ``FEATURE_SETS`` names
each configuration; :func:`feature_matrix` materializes the corresponding
design matrix from a :class:`~repro.data.dataset.Dataset`.

Besides the raw counters, the matrix includes the ratio/percentage features
standard in Darshan analysis — "read/write ratios, distribution of accesses
per access size" (§V) — exactly the preprocessing of the paper's prior
work [2].  Tree ensembles cannot synthesize ratios of counters spanning six
orders of magnitude on their own; without these derived columns no model
family approaches the duplicate bound.  All derivations are deterministic,
so duplicate rows stay bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.telemetry.schema import MPIIO_FEATURES, POSIX_FEATURES

__all__ = ["FEATURE_SETS", "feature_matrix", "derived_posix_features", "derived_mpiio_features"]

_GiB = 1024.0**3


def _col(X: np.ndarray, names: list[str], name: str) -> np.ndarray:
    return X[:, names.index(name)]


def _safe_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a / np.maximum(b, 1.0)


def derived_posix_features(X: np.ndarray) -> tuple[np.ndarray, list[str]]:
    """Ratio/percentage features computed from the 48 raw POSIX counters."""
    names = POSIX_FEATURES
    reads = _col(X, names, "POSIX_READS")
    writes = _col(X, names, "POSIX_WRITES")
    ops = reads + writes
    bytes_read = _col(X, names, "POSIX_BYTES_READ")
    bytes_written = _col(X, names, "POSIX_BYTES_WRITTEN")
    total_bytes = bytes_read + bytes_written
    gib = total_bytes / _GiB
    nprocs = _col(X, names, "POSIX_NPROCS")
    file_count = _col(X, names, "POSIX_FILE_COUNT")

    cols = {
        "DRV_READ_BYTE_FRAC": _safe_div(bytes_read, np.maximum(total_bytes, 1.0)),
        "DRV_READ_OP_FRAC": _safe_div(reads, ops),
        "DRV_AVG_READ_SIZE": _safe_div(bytes_read, reads),
        "DRV_AVG_WRITE_SIZE": _safe_div(bytes_written, writes),
        "DRV_SEQ_READ_PCT": _safe_div(_col(X, names, "POSIX_SEQ_READS"), reads),
        "DRV_SEQ_WRITE_PCT": _safe_div(_col(X, names, "POSIX_SEQ_WRITES"), writes),
        "DRV_CONSEC_READ_PCT": _safe_div(_col(X, names, "POSIX_CONSEC_READS"), reads),
        "DRV_CONSEC_WRITE_PCT": _safe_div(_col(X, names, "POSIX_CONSEC_WRITES"), writes),
        "DRV_UNALIGNED_FILE_PCT": _safe_div(_col(X, names, "POSIX_FILE_NOT_ALIGNED"), ops),
        "DRV_UNALIGNED_MEM_PCT": _safe_div(_col(X, names, "POSIX_MEM_NOT_ALIGNED"), ops),
        "DRV_RW_SWITCH_PCT": _safe_div(_col(X, names, "POSIX_RW_SWITCHES"), ops),
        "DRV_SEEK_PCT": _safe_div(_col(X, names, "POSIX_SEEKS"), ops),
        "DRV_STATS_PER_GIB": _safe_div(_col(X, names, "POSIX_STATS"), np.maximum(gib, 1e-6)),
        "DRV_FSYNCS_PER_GIB": _safe_div(_col(X, names, "POSIX_FSYNCS"), np.maximum(gib, 1e-6)),
        "DRV_SHARED_FILE_PCT": _safe_div(_col(X, names, "POSIX_SHARED_FILE_COUNT"), file_count),
        "DRV_FILES_PER_PROC": _safe_div(file_count, nprocs),
        "DRV_BYTES_PER_PROC": _safe_div(total_bytes, nprocs),
        "DRV_OPS_PER_PROC": _safe_div(ops, nprocs),
        "DRV_OPENS_PER_FILE": _safe_div(_col(X, names, "POSIX_OPENS"), file_count),
    }
    # access-size histograms as shares of total operations
    for prefix, total in (("POSIX_SIZE_READ", reads), ("POSIX_SIZE_WRITE", writes)):
        for name in names:
            if name.startswith(prefix):
                cols[f"DRV_{name}_PCT"] = _safe_div(_col(X, names, name), total)
    return np.column_stack(list(cols.values())), list(cols)


def derived_mpiio_features(X: np.ndarray) -> tuple[np.ndarray, list[str]]:
    """Collective/independent ratios from the raw MPI-IO counters."""
    names = MPIIO_FEATURES
    coll_r = _col(X, names, "MPIIO_COLL_READS")
    coll_w = _col(X, names, "MPIIO_COLL_WRITES")
    indep_r = _col(X, names, "MPIIO_INDEP_READS")
    indep_w = _col(X, names, "MPIIO_INDEP_WRITES")
    ops = coll_r + coll_w + indep_r + indep_w
    cols = {
        "DRV_MPIIO_COLL_PCT": _safe_div(coll_r + coll_w, ops),
        "DRV_MPIIO_NB_PCT": _safe_div(
            _col(X, names, "MPIIO_NB_READS") + _col(X, names, "MPIIO_NB_WRITES"), ops
        ),
        "DRV_MPIIO_READ_OP_FRAC": _safe_div(coll_r + indep_r, ops),
        "DRV_MPIIO_COLL_OPEN_PCT": _safe_div(
            _col(X, names, "MPIIO_COLL_OPENS"),
            _col(X, names, "MPIIO_COLL_OPENS") + _col(X, names, "MPIIO_INDEP_OPENS"),
        ),
    }
    return np.column_stack(list(cols.values())), list(cols)

#: name -> (telemetry sources, include start-time feature)
FEATURE_SETS: dict[str, tuple[tuple[str, ...], bool]] = {
    "posix": (("posix",), False),
    "posix+mpiio": (("posix", "mpiio"), False),
    "posix+cobalt": (("posix", "cobalt"), False),
    "posix+lmt": (("posix", "lmt"), False),
    "posix+time": (("posix",), True),
    "posix+mpiio+time": (("posix", "mpiio"), True),
    "posix+lmt+time": (("posix", "lmt"), True),
}


def feature_matrix(
    dataset: Dataset, feature_set: str, include_derived: bool = True
) -> tuple[np.ndarray, list[str]]:
    """Design matrix and column names for a named feature set.

    ``include_derived`` appends the [2]-style ratio features for the POSIX
    and MPI-IO blocks (deterministic, duplicate-preserving).  Raises
    ``KeyError`` for unknown sets and ``ValueError`` when the platform does
    not collect a requested source (e.g. LMT on Theta), mirroring the
    paper's per-platform availability (§V).
    """
    try:
        sources, with_time = FEATURE_SETS[feature_set]
    except KeyError as exc:
        raise KeyError(
            f"unknown feature set {feature_set!r}; choose from {sorted(FEATURE_SETS)}"
        ) from exc

    blocks: list[np.ndarray] = []
    names: list[str] = []
    for source in sources:
        if source not in dataset.frames:
            raise ValueError(
                f"platform {dataset.name!r} does not collect {source!r} logs "
                f"(available: {dataset.sources})"
            )
        blocks.append(dataset.frames[source])
        names.extend(dataset.feature_names(source))
        if include_derived and source == "posix":
            drv, drv_names = derived_posix_features(dataset.frames[source])
            blocks.append(drv)
            names.extend(drv_names)
        elif include_derived and source == "mpiio":
            drv, drv_names = derived_mpiio_features(dataset.frames[source])
            blocks.append(drv)
            names.extend(drv_names)
    if with_time:
        blocks.append(dataset.start_time[:, None])
        names.append("JOB_START_TIME")
    return np.column_stack(blocks), names
