"""Feature preprocessing.

Darshan counters span 12+ orders of magnitude (bytes vs flag fields), so the
standard treatment — also used by the paper's prior work [2] — is a signed
``log1p`` compression followed by per-column standardization.  Tree/GBM
models are invariant to these monotone maps; neural networks require them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["signed_log1p", "Standardizer"]


def signed_log1p(X: np.ndarray) -> np.ndarray:
    """``sign(x) * log10(1 + |x|)`` elementwise; safe for all magnitudes."""
    X = np.asarray(X, dtype=float)
    return np.sign(X) * np.log10(1.0 + np.abs(X))


class Standardizer:
    """Per-column z-scoring with optional signed-log compression.

    Constant columns are left centred but unscaled (scale forced to 1) so
    they never produce NaNs.
    """

    def __init__(self, log_compress: bool = True):
        self.log_compress = bool(log_compress)
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def _pre(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return signed_log1p(X) if self.log_compress else X

    def fit(self, X: np.ndarray) -> "Standardizer":
        Z = self._pre(X)
        self.mean_ = Z.mean(axis=0)
        scale = Z.std(axis=0)
        scale[scale < 1e-12] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("Standardizer.transform called before fit")
        Z = self._pre(X)
        if Z.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"feature count mismatch: fitted {self.mean_.shape[0]}, got {Z.shape[1]}"
            )
        return (Z - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
