"""Dataset plumbing: from simulated platforms to ML-ready matrices."""

from repro.data.dataset import Dataset, build_dataset
from repro.data.duplicates import DuplicateSets, concurrent_subsets, duplicate_pairs, find_duplicate_sets
from repro.data.features import FEATURE_SETS, feature_matrix
from repro.data.preprocessing import Standardizer, signed_log1p
from repro.data.splits import random_split, temporal_split, train_val_test_split

__all__ = [
    "Dataset",
    "build_dataset",
    "DuplicateSets",
    "find_duplicate_sets",
    "concurrent_subsets",
    "duplicate_pairs",
    "FEATURE_SETS",
    "feature_matrix",
    "Standardizer",
    "signed_log1p",
    "random_split",
    "temporal_split",
    "train_val_test_split",
]
