"""Train/validation/test splitting.

Two regimes from the paper:

* **random** splits — estimate in-distribution behaviour (Fig. 1a, Fig. 4,
  Fig. 5);
* **temporal** splits — train on everything before a deployment cutoff and
  evaluate after it, exposing generalization/OoD error (Fig. 1d, §VIII).
"""

from __future__ import annotations

import numpy as np

from repro.rng import generator_from

__all__ = ["random_split", "temporal_split", "train_val_test_split"]


def random_split(
    n: int, test_frac: float = 0.2, rng: int | np.random.Generator = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffled (train, test) index arrays."""
    if not 0.0 < test_frac < 1.0:
        raise ValueError("test_frac must be in (0, 1)")
    gen = generator_from(rng)
    perm = gen.permutation(n)
    n_test = max(1, int(round(test_frac * n)))
    return np.sort(perm[n_test:]), np.sort(perm[:n_test])


def train_val_test_split(
    n: int,
    val_frac: float = 0.15,
    test_frac: float = 0.2,
    rng: int | np.random.Generator = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled (train, val, test) index arrays."""
    if val_frac <= 0.0 or test_frac <= 0.0 or val_frac + test_frac >= 1.0:
        raise ValueError("val_frac and test_frac must be positive and sum below 1")
    gen = generator_from(rng)
    perm = gen.permutation(n)
    n_test = max(1, int(round(test_frac * n)))
    n_val = max(1, int(round(val_frac * n)))
    test = perm[:n_test]
    val = perm[n_test : n_test + n_val]
    train = perm[n_test + n_val :]
    return np.sort(train), np.sort(val), np.sort(test)


def temporal_split(
    start_time: np.ndarray, cutoff: float | None = None, cutoff_frac: float = 0.8
) -> tuple[np.ndarray, np.ndarray]:
    """(train, deploy) indices split at a wall-clock cutoff.

    ``cutoff`` is an absolute timestamp; when omitted it is placed at the
    ``cutoff_frac`` quantile of the observed span (not of job count), which
    matches "trained on data from January 2018 to July 2019, evaluated
    after" (§VIII).
    """
    t = np.asarray(start_time, dtype=float)
    if cutoff is None:
        lo, hi = float(t.min()), float(t.max())
        cutoff = lo + cutoff_frac * (hi - lo)
    train = np.flatnonzero(t < cutoff)
    deploy = np.flatnonzero(t >= cutoff)
    if train.size == 0 or deploy.size == 0:
        raise ValueError("temporal cutoff leaves an empty side")
    return train, deploy
