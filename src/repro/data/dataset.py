"""The :class:`Dataset` container and its construction from a simulation.

A dataset bundles, per job:

* telemetry frames (``posix``, ``mpiio``, ``cobalt``, ``lmt`` — whichever
  the platform collects),
* the prediction target ``y`` = log10 I/O throughput in MiB/s (Eq. 6 works
  in log space),
* metadata used by litmus tests and ground-truth validation (start/end
  times, duplicate-set ground truth via ``variant_id``, OoD flags, and the
  true Eq. 3 components).

Only the telemetry frames and ``start_time`` may be fed to models; metadata
columns are for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.config import SimulationConfig
from repro.rng import RngFactory
from repro.simulator.engine import SimulationResult, simulate
from repro.simulator.job import LATENT_COLUMNS
from repro.telemetry import (
    COBALT_FEATURES,
    LMT_FEATURES,
    MPIIO_FEATURES,
    POSIX_FEATURES,
    cobalt_features,
    lmt_features,
    mpiio_features,
    posix_features,
)

__all__ = ["Dataset", "build_dataset"]

_FRAME_NAMES = {
    "posix": POSIX_FEATURES,
    "mpiio": MPIIO_FEATURES,
    "cobalt": COBALT_FEATURES,
    "lmt": LMT_FEATURES,
}


@dataclass
class Dataset:
    """ML-ready view of one simulated platform."""

    name: str
    frames: dict[str, np.ndarray]
    y: np.ndarray                       # log10 MiB/s
    start_time: np.ndarray              # unix seconds
    end_time: np.ndarray
    meta: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = self.y.shape[0]
        for key, frame in self.frames.items():
            if frame.shape != (n, len(_FRAME_NAMES[key])):
                raise ValueError(
                    f"frame {key!r} has shape {frame.shape}, expected ({n}, {len(_FRAME_NAMES[key])})"
                )

    def __len__(self) -> int:
        return int(self.y.shape[0])

    @property
    def sources(self) -> list[str]:
        return sorted(self.frames)

    def feature_names(self, source: str) -> list[str]:
        return list(_FRAME_NAMES[source])

    def subset(self, index: np.ndarray) -> "Dataset":
        """Row subset preserving frames and metadata."""
        return Dataset(
            name=self.name,
            frames={k: v[index] for k, v in self.frames.items()},
            y=self.y[index],
            start_time=self.start_time[index],
            end_time=self.end_time[index],
            meta={k: v[index] for k, v in self.meta.items()},
        )

    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> None:
        """Persist to a compressed ``.npz`` archive."""
        payload: dict[str, np.ndarray] = {
            "y": self.y,
            "start_time": self.start_time,
            "end_time": self.end_time,
        }
        for k, v in self.frames.items():
            payload[f"frame_{k}"] = v
        for k, v in self.meta.items():
            payload[f"meta_{k}"] = v
        np.savez_compressed(path, name=np.array(self.name), **payload)

    @classmethod
    def load(cls, path: str | Path) -> "Dataset":
        with np.load(path, allow_pickle=False) as z:
            frames = {k[6:]: z[k] for k in z.files if k.startswith("frame_")}
            meta = {k[5:]: z[k] for k in z.files if k.startswith("meta_")}
            return cls(
                name=str(z["name"]),
                frames=frames,
                y=z["y"],
                start_time=z["start_time"],
                end_time=z["end_time"],
                meta=meta,
            )


def build_dataset(config: SimulationConfig, sim: SimulationResult | None = None) -> Dataset:
    """Simulate (unless given) and render all telemetry the platform collects."""
    if sim is None:
        sim = simulate(config)
    jobs = sim.jobs
    rngs = RngFactory(config.seed)

    latent = {k: getattr(jobs, k) for k in LATENT_COLUMNS}
    frames: dict[str, np.ndarray] = {
        "posix": posix_features(latent),
        "mpiio": mpiio_features(latent),
    }
    if config.platform.has_cobalt:
        frames["cobalt"] = cobalt_features(jobs, rngs.get("cobalt"))
    if config.platform.has_lmt:
        frames["lmt"] = lmt_features(
            jobs,
            sim.weather,
            sim.timeline,
            sim.background,
            sim.platform,
            config.workload.start_epoch,
            rngs.get("lmt"),
        )

    meta = {
        "variant_id": jobs.variant_id,
        "family_id": jobs.family_id,
        "is_ood": jobs.is_ood,
        "fa_dex": jobs.fa_dex,
        "fg_dex": jobs.fg_dex,
        "fl_dex": jobs.fl_dex,
        "fn_dex": jobs.fn_dex,
        "io_time": jobs.io_time,
        "load_other": jobs.load_other,
        "total_bytes": jobs.total_bytes,
    }
    return Dataset(
        name=config.platform.name,
        frames=frames,
        y=jobs.log_throughput,
        start_time=jobs.start_time,
        end_time=jobs.end_time,
        meta=meta,
    )
