"""repro — reproduction of *A Taxonomy of Error Sources in HPC I/O Machine
Learning Models* (SC 2022).

Quickstart::

    from repro import preset, build_dataset, TaxonomyPipeline
    from repro.taxonomy.report import render_breakdown

    dataset = build_dataset(preset("theta", n_jobs=4000))
    report = TaxonomyPipeline().run(dataset)
    print(render_breakdown(report.breakdown))

Layers (bottom-up): :mod:`repro.scheduler` (batch system: topologies,
EASY backfill, placement, OST striping), :mod:`repro.simulator` (the
data-generating process), :mod:`repro.telemetry` (Darshan/MPI-IO/Cobalt/LMT
views + darshan-parser text round-trip), :mod:`repro.data` (datasets,
splits, duplicates), :mod:`repro.ml` (from-scratch GBM/forest/linear/kNN/
NN/ensembles/NAS/explainability), :mod:`repro.cluster` (workload
clustering), :mod:`repro.stats` (bootstrap/weighted/drift), and
:mod:`repro.taxonomy` (the litmus tests and framework).  ``repro.cli``
exposes all of it as the ``repro`` command.
"""

from repro.config import SimulationConfig, cori_config, preset, theta_config
from repro.data import Dataset, build_dataset, feature_matrix
from repro.simulator import simulate
from repro.taxonomy import TaxonomyPipeline
from repro.version import __version__

__all__ = [
    "__version__",
    "SimulationConfig",
    "preset",
    "theta_config",
    "cori_config",
    "simulate",
    "Dataset",
    "build_dataset",
    "feature_matrix",
    "TaxonomyPipeline",
]
