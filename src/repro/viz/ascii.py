"""ASCII renderings of the paper's figure types (histogram, heatmap, scatter).

These are intentionally simple: the benches print the *numbers* that define
each figure, and these helpers give a quick visual sanity check in a
terminal without any plotting dependency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_histogram", "ascii_heatmap", "ascii_scatter"]

_SHADES = " ░▒▓█"


def ascii_histogram(
    values: np.ndarray, bins: int = 24, width: int = 50, title: str = ""
) -> str:
    """Horizontal-bar histogram of a 1-D sample."""
    values = np.asarray(values, dtype=float)
    values = values[np.isfinite(values)]
    if values.size == 0:
        return f"{title}\n  (no data)"
    counts, edges = np.histogram(values, bins=bins)
    peak = max(1, counts.max())
    lines = [title] if title else []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(c / peak * width))
        lines.append(f"  {lo:+9.3f}..{hi:+9.3f} |{bar:<{width}}| {c}")
    return "\n".join(lines)


def ascii_heatmap(
    M: np.ndarray,
    x_labels: list | None = None,
    y_labels: list | None = None,
    title: str = "",
    value_format: str = "{:.1f}",
) -> str:
    """Dense numeric heatmap with shaded background ordering.

    Lower values print brighter (the sweeps minimize error), matching the
    reading of Fig. 1a.
    """
    M = np.asarray(M, dtype=float)
    finite = M[np.isfinite(M)]
    lo, hi = (finite.min(), finite.max()) if finite.size else (0.0, 1.0)
    span = max(hi - lo, 1e-12)
    lines = [title] if title else []
    x_labels = [str(x) for x in (x_labels or range(M.shape[1]))]
    y_labels = [str(y) for y in (y_labels or range(M.shape[0]))]
    cell = max(max(len(x) for x in x_labels) + 1, 7)
    header = " " * 10 + "".join(f"{x:>{cell}}" for x in x_labels)
    lines.append(header)
    for i, ylab in enumerate(y_labels):
        row = f"{ylab:>9} "
        for j in range(M.shape[1]):
            v = M[i, j]
            if not np.isfinite(v):
                row += " " * (cell - 2) + "··"
                continue
            shade = _SHADES[int(round((v - lo) / span * (len(_SHADES) - 1)))]
            row += f"{value_format.format(v):>{cell - 1}}{shade}"
        lines.append(row)
    return "\n".join(lines)


def ascii_scatter(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 64,
    height: int = 18,
    logx: bool = False,
    title: str = "",
) -> str:
    """Density scatter (shade = point count per cell)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    keep = np.isfinite(x) & np.isfinite(y)
    if logx:
        keep &= x > 0
        x = np.where(x > 0, np.log10(np.maximum(x, 1e-12)), 0.0)
    x, y = x[keep], y[keep]
    if x.size == 0:
        return f"{title}\n  (no data)"
    grid, _, _ = np.histogram2d(x, y, bins=(width, height))
    grid = grid.T[::-1]  # y increases upward
    peak = max(1.0, grid.max())
    lines = [title] if title else []
    for row in grid:
        line = "".join(
            _SHADES[int(np.ceil(c / peak * (len(_SHADES) - 1)))] if c > 0 else " " for c in row
        )
        lines.append("  |" + line + "|")
    lines.append(f"  x: [{x.min():.2f}, {x.max():.2f}]{' (log10)' if logx else ''}   "
                 f"y: [{y.min():.3f}, {y.max():.3f}]   n={x.size}")
    return "\n".join(lines)


def ascii_segment_bar(
    segments: dict[str, float],
    width: int = 60,
    title: str = "",
) -> str:
    """Proportional segment bar — the text rendering of a Fig. 7 pie chart.

    ``segments`` maps label -> percentage.  Percentages below 100 in total
    leave an unlabeled remainder (the paper's "unexplained" slice); values
    are clipped at 0 and the bar is normalized to the larger of 100 and the
    segment sum.
    """
    cleaned = {k: max(0.0, float(v)) for k, v in segments.items()}
    total = max(100.0, sum(cleaned.values()))
    fills = "█▓▒░▪▫◦"
    lines = [title] if title else []
    bar = ""
    for i, (label, value) in enumerate(cleaned.items()):
        bar += fills[i % len(fills)] * int(round(value / total * width))
    bar = bar.ljust(width, "·")[:width]
    lines.append("  [" + bar + "]")
    for i, (label, value) in enumerate(cleaned.items()):
        lines.append(f"  {fills[i % len(fills)]} {label:<38} {value:5.1f}%")
    remainder = 100.0 - sum(cleaned.values())
    if remainder > 0.5:
        lines.append(f"  · {'unexplained':<38} {remainder:5.1f}%")
    return "\n".join(lines)
