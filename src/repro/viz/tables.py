"""Aligned table rendering for the bench harness's paper-vs-measured rows."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Monospace table with per-column alignment (numbers right, text left)."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append("  " + "  ".join("-" * w for w in widths))
    for row, src in zip(str_rows, rows):
        cells = []
        for value, text, width in zip(src, row, widths):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                cells.append(text.rjust(width))
            else:
                cells.append(text.ljust(width))
        out.append("  " + "  ".join(cells))
    return "\n".join(out)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)
