"""Text-mode visualization used by examples and the bench harness."""

from repro.viz.ascii import ascii_heatmap, ascii_histogram, ascii_scatter, ascii_segment_bar
from repro.viz.tables import format_table

__all__ = ["ascii_histogram", "ascii_heatmap", "ascii_scatter", "ascii_segment_bar", "format_table"]
