"""§IX — contention + inherent-noise bound from concurrent duplicates.

Duplicate jobs submitted at the same instant (Δt = 0) share the application
term *and* the global system state; their throughput spread can only come
from contention ζl and noise ω.  Because most Δt = 0 sets hold just two
jobs, the mean-centred residuals are biased small — Bessel's correction and
a Student-t fit (rather than a normal) recover the true σ.  The result is
both (1) the floor on any model's error and (2) the throughput variability
a user of the system should expect: Theta ±5.71 % (68 %) / ±10.56 % (95 %),
Cori ±7.21 % / ±14.99 % in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.duplicates import DuplicateSets, concurrent_subsets
from repro.ml.metrics import dex_to_pct
from repro.taxonomy.tdist import TFit, band_from_sigma, fit_t_distribution, pooled_residuals

__all__ = ["NoiseBound", "noise_bound"]


@dataclass
class NoiseBound:
    """Result of the concurrent-duplicate litmus test."""

    sigma_dex: float              # σ of the Δt=0 distribution (t-fit, Bessel-corrected)
    band_68_pct: float            # ±x% at 68 % coverage
    band_95_pct: float
    median_abs_dex: float         # median |residual| (model-error floor)
    median_abs_pct: float
    n_concurrent_sets: int
    n_concurrent_jobs: int
    set_size_share_2: float       # share of Δt=0 sets with exactly 2 jobs (~70 %)
    set_size_share_le6: float     # share with <= 6 jobs (~96 %)
    tfit: TFit
    residuals_dex: np.ndarray

    def aleatory_error_pct(self) -> float:
        """The unfixable (contention + noise) error floor in percent."""
        return self.median_abs_pct


def noise_bound(
    y_dex: np.ndarray,
    dups: DuplicateSets,
    start_time: np.ndarray,
    window: float = 1.0,
    exclude: np.ndarray | None = None,
    bessel: bool = True,
) -> NoiseBound:
    """Run the Δt=0 litmus test.

    ``exclude`` is an optional boolean mask of jobs to drop first — Step 5
    of the framework removes OoD jobs before estimating noise so novelty is
    not misread as noise (§VIII: "systems that run a lot of novel jobs
    appear to be more noisy than they truly are").
    """
    y_dex = np.asarray(y_dex, dtype=float)
    subsets = concurrent_subsets(dups, start_time, window=window)
    if exclude is not None:
        mask = np.asarray(exclude, dtype=bool)
        subsets = [s[~mask[s]] for s in subsets]
        subsets = [s for s in subsets if s.size >= 2]
    if not subsets:
        raise ValueError("no concurrent duplicate sets found (need batched reruns)")

    sizes = np.array([s.size for s in subsets])
    resid = pooled_residuals(y_dex, subsets, correct=bessel)
    tfit = fit_t_distribution(resid)
    med = float(np.median(np.abs(resid)))
    # σ via the median absolute deviation (1.4826·MAD is consistent for the
    # Gaussian core).  The pool is a Gaussian core plus heavy placement /
    # outlier tails, so both the raw std and the t-MLE variance are
    # unstable — a handful of tail draws can move them by tens of percent
    # between seeds, while the MAD readout is what "throughput variability
    # a user should expect" means.  Bessel's correction is already applied
    # inside ``pooled_residuals`` (the paper's §IX small-set fix); the t fit
    # is kept for the shape analysis of Fig. 6.
    sigma = float(1.4826 * med)
    return NoiseBound(
        sigma_dex=sigma,
        band_68_pct=band_from_sigma(sigma, 0.68),
        band_95_pct=band_from_sigma(sigma, 0.95),
        median_abs_dex=med,
        median_abs_pct=float(dex_to_pct(med)),
        n_concurrent_sets=len(subsets),
        n_concurrent_jobs=int(sizes.sum()),
        set_size_share_2=float(np.mean(sizes == 2)),
        set_size_share_le6=float(np.mean(sizes <= 6)),
        tfit=tfit,
        residuals_dex=resid,
    )
