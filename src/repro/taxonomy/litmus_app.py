"""§VI.A — the application-modeling litmus test.

Duplicate jobs share every observable application feature, so no model can
tell them apart; the best it can do is predict each set's mean.  The spread
of duplicates around their set mean is therefore a *lower bound* on any
model's error — and the distance between a practical model and this bound
is its application-modeling error, removable by tuning (eapp).

Procedure (paper):
  1. find duplicate sets; 2. subtract each set's mean I/O throughput;
  3. apply Bessel's correction; 4. report the median absolute error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.duplicates import DuplicateSets, find_duplicate_sets
from repro.ml.metrics import dex_to_pct
from repro.taxonomy.tdist import pooled_residuals

__all__ = ["ApplicationBound", "application_bound", "duplicate_residuals"]


@dataclass
class ApplicationBound:
    """Result of the duplicate litmus test."""

    median_abs_dex: float        # bound in log10 units
    median_abs_pct: float        # bound as the paper's % number
    n_duplicates: int
    n_sets: int
    duplicate_fraction: float
    residuals_dex: np.ndarray    # pooled Bessel-corrected residuals

    def model_app_error_pct(self, model_error_pct: float) -> float:
        """eapp estimate for a model: its error minus the bound (>= 0)."""
        return max(0.0, model_error_pct - self.median_abs_pct)


def duplicate_residuals(
    y_dex: np.ndarray, dups: DuplicateSets, bessel: bool = True
) -> np.ndarray:
    """Pooled within-set residuals of log throughput (signed, dex)."""
    return pooled_residuals(y_dex, dups.sets, correct=bessel)


def application_bound(
    features: np.ndarray,
    y_dex: np.ndarray,
    dups: DuplicateSets | None = None,
    bessel: bool = True,
) -> ApplicationBound:
    """Run the litmus test on (application features, log throughputs).

    ``dups`` may be supplied to reuse a previous duplicate census.
    """
    y_dex = np.asarray(y_dex, dtype=float)
    if dups is None:
        dups = find_duplicate_sets(features)
    if dups.n_sets == 0:
        raise ValueError("no duplicate sets found; the litmus test needs reruns")
    resid = duplicate_residuals(y_dex, dups, bessel=bessel)
    med = float(np.median(np.abs(resid)))
    return ApplicationBound(
        median_abs_dex=med,
        median_abs_pct=float(dex_to_pct(med)),
        n_duplicates=dups.n_duplicates,
        n_sets=dups.n_sets,
        duplicate_fraction=dups.fraction_of(y_dex.shape[0]),
        residuals_dex=resid,
    )
