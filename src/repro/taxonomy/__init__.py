"""The paper's primary contribution: the error taxonomy and its litmus tests.

* :mod:`repro.taxonomy.litmus_app`    — §VI  duplicate-job application bound
* :mod:`repro.taxonomy.litmus_system` — §VII golden start-time model
* :mod:`repro.taxonomy.litmus_ood`    — §VIII EU-threshold OoD attribution
* :mod:`repro.taxonomy.litmus_noise`  — §IX  Δt=0 duplicates, t-fit, σ bands
* :mod:`repro.taxonomy.framework`     — §X   the 5-step procedure (Fig. 7)
"""

from repro.taxonomy.errors import ErrorBreakdown
from repro.taxonomy.framework import TaxonomyPipeline, TaxonomyReport
from repro.taxonomy.litmus_app import ApplicationBound, application_bound, duplicate_residuals
from repro.taxonomy.litmus_noise import NoiseBound, noise_bound
from repro.taxonomy.litmus_ood import OodAttribution, ood_attribution
from repro.taxonomy.litmus_system import SystemBound, system_bound
from repro.taxonomy.tdist import bessel_correction_factor, fit_t_distribution

__all__ = [
    "ErrorBreakdown",
    "TaxonomyPipeline",
    "TaxonomyReport",
    "ApplicationBound",
    "application_bound",
    "duplicate_residuals",
    "SystemBound",
    "system_bound",
    "OodAttribution",
    "ood_attribution",
    "NoiseBound",
    "noise_bound",
    "fit_t_distribution",
    "bessel_correction_factor",
]
