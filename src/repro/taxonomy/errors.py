"""Error accounting records for the taxonomy (Eq. 5, Fig. 7)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ErrorBreakdown"]


@dataclass
class ErrorBreakdown:
    """Attribution of a baseline model's error to the five classes.

    All ``*_pct_of_total`` entries are percentages of the *initial baseline
    error* (the pie-chart convention of Fig. 7): estimated segments come
    from litmus tests, ``removed`` segments from actually improved models.
    ``unexplained`` is what the estimates fail to cover; the paper reports
    32.9 % (Theta) and 13.5 % (Cori).
    """

    platform: str
    baseline_error_pct: float                 # median |%| error of the Step-1 model

    # estimated segments (litmus tests)
    application_pct_of_total: float = 0.0     # Step 2.1
    system_pct_of_total: float = 0.0          # Step 3.1
    ood_pct_of_total: float = 0.0             # Step 4
    aleatory_pct_of_total: float = 0.0        # Step 5 (contention + noise)

    # realized improvements (outer ring of Fig. 7)
    removed_by_tuning_pct_of_total: float = 0.0   # Step 2.2
    removed_by_system_logs_pct_of_total: float = 0.0  # Step 3.2 (LMT; Cori only)

    # absolute anchors (median |%| errors of intermediate models/bounds)
    tuned_error_pct: float = 0.0
    application_bound_pct: float = 0.0
    system_bound_pct: float = 0.0
    noise_bound_pct: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def unexplained_pct_of_total(self) -> float:
        return 100.0 - (
            self.application_pct_of_total
            + self.system_pct_of_total
            + self.ood_pct_of_total
            + self.aleatory_pct_of_total
        )

    def segments(self) -> dict[str, float]:
        """Inner-ring segments as in Fig. 7 (percent of baseline error)."""
        return {
            "application_modeling": self.application_pct_of_total,
            "system_modeling": self.system_pct_of_total,
            "out_of_distribution": self.ood_pct_of_total,
            "aleatory (contention+noise)": self.aleatory_pct_of_total,
            "unexplained": self.unexplained_pct_of_total,
        }

    def validate(self) -> None:
        for name, value in self.segments().items():
            if value < -25.0 or value > 125.0:
                raise ValueError(f"segment {name} out of range: {value:.1f}%")
