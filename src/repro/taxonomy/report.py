"""Rendering of taxonomy results (text-mode Fig. 7)."""

from __future__ import annotations

from repro.taxonomy.errors import ErrorBreakdown

__all__ = ["render_breakdown"]

_BAR_WIDTH = 46


def _bar(pct: float) -> str:
    filled = int(round(max(0.0, min(100.0, pct)) / 100.0 * _BAR_WIDTH))
    return "█" * filled + "·" * (_BAR_WIDTH - filled)


def render_breakdown(b: ErrorBreakdown) -> str:
    """Markdown/ASCII rendering of one platform's Fig. 7 pie."""
    lines = [
        f"Error taxonomy — {b.platform}",
        f"  baseline model error (Step 1): {b.baseline_error_pct:.2f}% median abs",
        "",
        "  segment (as % of baseline error)",
    ]
    for name, value in b.segments().items():
        lines.append(f"  {name:<28s} {value:5.1f}%  {_bar(value)}")
    lines += [
        "",
        f"  removed by tuning (Step 2.2):      {b.removed_by_tuning_pct_of_total:5.1f}%"
        f"  (tuned model: {b.tuned_error_pct:.2f}%)",
    ]
    if b.removed_by_system_logs_pct_of_total:
        lines.append(
            f"  removed by system logs (Step 3.2): {b.removed_by_system_logs_pct_of_total:5.1f}%"
        )
    lines += [
        "",
        f"  application bound (duplicates):    {b.application_bound_pct:.2f}%",
        f"  system bound (golden time model):  {b.system_bound_pct:.2f}%",
        f"  aleatory floor (Δt=0 duplicates):  {b.noise_bound_pct:.2f}%",
    ]
    if "noise_band_68_pct" in b.details:
        lines.append(
            f"  expected throughput variability:   ±{b.details['noise_band_68_pct']:.2f}% (68%)"
            f" / ±{b.details['noise_band_95_pct']:.2f}% (95%)"
        )
    return "\n".join(lines)
