"""§VII.A — the global-system-modeling litmus test.

Global system impact ζg(t) is, by definition, a pure function of time.  A
"golden" model that sees the application features *plus the job start time*
can learn the I/O weather without observing its causes; its test error is a
lower bound on application + system modeling combined.  The gap between the
tuned application-only model and this golden model estimates esystem.

Procedure (paper): add the start-time feature to the Darshan-only dataset,
hyperparameter-search on a validation set, report the test error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.hpo import grid_search
from repro.ml.metrics import dex_to_pct, median_abs_log_ratio

__all__ = ["SystemBound", "system_bound", "DEFAULT_GOLDEN_GRID"]

#: compact search grid for the golden model (a larger model is needed to
#: "remember the I/O weather throughout the lifetime of the system", §VII.A)
DEFAULT_GOLDEN_GRID: dict[str, Sequence[Any]] = {
    "n_estimators": (300, 600),
    "max_depth": (8, 10),
    "learning_rate": (0.05,),
    "min_child_weight": (6,),
    "subsample": (0.8,),
    "colsample_bytree": (0.8,),
    "loss": ("squared",),
}


@dataclass
class SystemBound:
    """Result of the golden start-time-model litmus test."""

    golden_error_dex: float
    golden_error_pct: float
    best_params: dict[str, Any]
    model: Any

    def system_error_pct(self, tuned_app_error_pct: float) -> float:
        """esystem estimate: tuned app-only error minus golden error."""
        return max(0.0, tuned_app_error_pct - self.golden_error_pct)


def system_bound(
    X_time: np.ndarray,
    y_dex: np.ndarray,
    train: np.ndarray,
    val: np.ndarray,
    test: np.ndarray,
    grid: Mapping[str, Sequence[Any]] | None = None,
    factory: Callable[..., Any] = GradientBoostingRegressor,
    workers: int | None = 1,
) -> SystemBound:
    """Fit the golden model on features that include ``JOB_START_TIME``.

    ``X_time`` must already contain the start-time column (use
    ``feature_matrix(ds, "posix+time")``).
    """
    result = grid_search(
        factory,
        dict(grid or DEFAULT_GOLDEN_GRID),
        X_time[train], y_dex[train],
        X_time[val], y_dex[val],
        workers=workers,
    )
    err = median_abs_log_ratio(y_dex[test], result.best_model.predict(X_time[test]))
    return SystemBound(
        golden_error_dex=err,
        golden_error_pct=float(dex_to_pct(err)),
        best_params=result.best_params,
        model=result.best_model,
    )
