"""Student-t fitting and small-sample corrections (§IX).

Duplicate-set residuals are computed against the set's *estimated* mean.
For a set of n draws from N(μ, σ²):

* the residuals have variance σ²·(n−1)/n — Bessel's correction
  ``sqrt(n/(n−1))`` restores unit scaling;
* standardized residuals follow a Student-t-like distribution, not a
  normal — with most Δt = 0 sets holding only 2 jobs, the paper observes
  exactly this and fits a t-distribution before reading off σ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["bessel_correction_factor", "pooled_residuals", "fit_t_distribution", "TFit", "band_from_sigma"]


def band_from_sigma(sigma_dex: float, coverage: float = 0.68) -> float:
    """Symmetric throughput band ``±(10^(z·σ) − 1)`` in percent.

    ``coverage=0.68`` yields the paper's "within ±x % of the predicted value
    68 % of the time" statement.
    """
    z = stats.norm.ppf(0.5 + coverage / 2.0)
    return float((10.0 ** (z * float(sigma_dex)) - 1.0) * 100.0)


def bessel_correction_factor(set_size: np.ndarray | int) -> np.ndarray | float:
    """``sqrt(n / (n−1))`` — undoes the variance bias of mean-subtraction."""
    n = np.asarray(set_size, dtype=float)
    if np.any(n < 2):
        raise ValueError("Bessel correction needs set sizes >= 2")
    out = np.sqrt(n / (n - 1.0))
    return float(out) if out.ndim == 0 else out


def pooled_residuals(
    values: np.ndarray, sets: list[np.ndarray], correct: bool = True
) -> np.ndarray:
    """Mean-centred residuals pooled across sets (Bessel-corrected by default).

    ``values`` are per-job log10 throughputs; ``sets`` are index arrays of
    duplicate sets (size >= 2 each).
    """
    v = np.asarray(values, dtype=float)
    parts: list[np.ndarray] = []
    for members in sets:
        if members.size < 2:
            continue
        r = v[members] - v[members].mean()
        if correct:
            r = r * bessel_correction_factor(members.size)
        parts.append(r)
    if not parts:
        return np.empty(0)
    return np.concatenate(parts)


@dataclass
class TFit:
    """Location-scale Student-t fit plus the implied Gaussian σ."""

    df: float
    loc: float
    scale: float
    sigma: float          # std of the underlying distribution (dex)
    n_samples: int

    def band(self, coverage: float = 0.68) -> float:
        """Symmetric throughput band implied by the t-fit's σ (percent)."""
        return band_from_sigma(self.sigma, coverage)


def fit_t_distribution(residuals: np.ndarray, df_bounds: tuple[float, float] = (2.1, 200.0)) -> TFit:
    """MLE location-scale t fit with the variance read back as σ².

    ``sigma`` is derived from the t variance ``scale²·df/(df−2)`` so that a
    near-normal sample (large df) reproduces its empirical std.
    """
    r = np.asarray(residuals, dtype=float)
    if r.size < 8:
        raise ValueError("need at least 8 residuals to fit a t-distribution")
    df, loc, scale = stats.t.fit(r)
    df = float(np.clip(df, *df_bounds))
    # re-fit scale/loc at the clipped df for stability on small samples
    loc, scale = stats.t.fit(r, fdf=df)[-2:] if hasattr(stats.t, "fit") else (loc, scale)
    sigma = float(scale * np.sqrt(df / (df - 2.0)))
    return TFit(df=df, loc=float(loc), scale=float(scale), sigma=sigma, n_samples=int(r.size))
