"""§X — applying the taxonomy end to end (Fig. 7).

:class:`TaxonomyPipeline` executes the paper's five-step procedure on a
:class:`~repro.data.Dataset` and returns an
:class:`~repro.taxonomy.errors.ErrorBreakdown`:

1.   train/evaluate a baseline model (default-hyperparameter GBM);
2.1  estimate the application-modeling bound from duplicate jobs;
2.2  hyperparameter-search toward that bound (error removed by tuning);
3.1  train the golden start-time model (system-modeling bound);
3.2  add system logs (LMT) and measure the error actually removed;
4.   tag OoD jobs with ensemble epistemic uncertainty, attribute their error;
5.   estimate the aleatory floor from concurrent duplicates (OoD removed).

All segment percentages are relative to the Step-1 baseline error, exactly
as in the paper's pie charts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.duplicates import find_duplicate_sets
from repro.data.features import feature_matrix
from repro.data.splits import train_val_test_split
from repro.ml.ensemble import DeepEnsemble
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.hpo import grid_search
from repro.ml.metrics import median_abs_pct_error
from repro.taxonomy.errors import ErrorBreakdown
from repro.taxonomy.litmus_app import application_bound
from repro.taxonomy.litmus_noise import noise_bound
from repro.taxonomy.litmus_ood import ood_attribution
from repro.taxonomy.litmus_system import DEFAULT_GOLDEN_GRID, system_bound

__all__ = ["TaxonomyPipeline", "TaxonomyReport"]

#: compact tuning grid for Step 2.2 (REPRO_FULL expands it in the benches)
DEFAULT_TUNING_GRID: dict[str, Sequence[Any]] = {
    "n_estimators": (100, 300, 600),
    "max_depth": (6, 10),
    "learning_rate": (0.05, 0.1),
    "min_child_weight": (6,),
    "subsample": (0.8,),
    "colsample_bytree": (0.8,),
    "loss": ("squared",),
}


@dataclass
class TaxonomyReport:
    """Breakdown plus every intermediate artifact, for inspection/tests."""

    breakdown: ErrorBreakdown
    baseline_model: Any
    tuned_model: Any
    app_bound: Any
    sys_bound: Any
    ood: Any
    noise: Any
    splits: tuple[np.ndarray, np.ndarray, np.ndarray]


class TaxonomyPipeline:
    """Configurable runner for the five-step framework.

    Budget knobs (``tuning_grid``, ``ensemble_members``, ``ensemble_epochs``)
    let benches trade fidelity for runtime; defaults run a Theta-scale
    dataset end to end in a few minutes on one core.
    """

    def __init__(
        self,
        feature_set: str = "posix",
        tuning_grid: Mapping[str, Sequence[Any]] | None = None,
        golden_grid: Mapping[str, Sequence[Any]] | None = None,
        ensemble_members: int = 6,
        ensemble_epochs: int = 30,
        ood_quantile: float = 0.99,
        val_frac: float = 0.15,
        test_frac: float = 0.2,
        seed: int = 0,
        workers: int | None = 1,
    ):
        self.feature_set = feature_set
        self.tuning_grid = dict(tuning_grid or DEFAULT_TUNING_GRID)
        self.golden_grid = dict(golden_grid or DEFAULT_GOLDEN_GRID)
        self.ensemble_members = int(ensemble_members)
        self.ensemble_epochs = int(ensemble_epochs)
        self.ood_quantile = float(ood_quantile)
        self.val_frac = float(val_frac)
        self.test_frac = float(test_frac)
        self.seed = int(seed)
        self.workers = workers

    # ------------------------------------------------------------------ #
    def run(self, dataset: Dataset) -> TaxonomyReport:
        X_app, _ = feature_matrix(dataset, self.feature_set)
        y = dataset.y
        train, val, test = train_val_test_split(
            len(dataset), self.val_frac, self.test_frac, rng=self.seed
        )

        # Step 1 — baseline model, default hyperparameters
        baseline = GradientBoostingRegressor(n_estimators=100, max_depth=6, loss="squared")
        baseline.fit(X_app[train], y[train])
        e0 = median_abs_pct_error(y[test], baseline.predict(X_app[test]))

        # Step 2.1 — application-modeling bound from duplicates
        dups = find_duplicate_sets(dataset.frames["posix"])
        app = application_bound(dataset.frames["posix"], y, dups=dups)
        est_app = max(0.0, e0 - app.median_abs_pct) / e0 * 100.0

        # Step 2.2 — tune toward the bound
        tuned = grid_search(
            GradientBoostingRegressor,
            self.tuning_grid,
            X_app[train], y[train], X_app[val], y[val],
            workers=self.workers,
        )
        e_tuned = median_abs_pct_error(y[test], tuned.best_model.predict(X_app[test]))
        removed_tuning = max(0.0, e0 - e_tuned) / e0 * 100.0

        # Step 3.1 — golden model with the start-time feature
        X_time, _ = feature_matrix(dataset, f"{self.feature_set}+time")
        sysb = system_bound(
            X_time, y, train, val, test,
            grid=self.golden_grid, workers=self.workers,
        )
        est_sys = max(0.0, e_tuned - sysb.golden_error_pct) / e0 * 100.0

        # Step 3.2 — add system logs when the platform collects them
        removed_logs = 0.0
        e_logs = None
        if "lmt" in dataset.frames:
            X_lmt, _ = feature_matrix(dataset, f"{self.feature_set}+lmt")
            logs_model = GradientBoostingRegressor(**tuned.best_params)
            logs_model.fit(X_lmt[np.concatenate([train, val])], y[np.concatenate([train, val])])
            e_logs = median_abs_pct_error(y[test], logs_model.predict(X_lmt[test]))
            removed_logs = max(0.0, e_tuned - e_logs) / e0 * 100.0

        # Step 4 — OoD tagging via ensemble epistemic uncertainty
        ensemble = DeepEnsemble(
            n_members=self.ensemble_members,
            diversity="arch",
            epochs=self.ensemble_epochs,
            random_state=self.seed,
        )
        ensemble.fit(X_app[np.concatenate([train, val])], y[np.concatenate([train, val])])
        decomp = ensemble.decompose(X_app[test])
        # attribute against the tuned model's errors (the deployed predictor)
        ood = ood_attribution(
            decomp, y[test],
            pred_dex=tuned.best_model.predict(X_app[test]),
            quantile=self.ood_quantile,
        )
        est_ood = ood.error_share * 100.0

        # Step 5 — aleatory floor from concurrent duplicates, OoD removed
        exclude = np.zeros(len(dataset), dtype=bool)
        exclude[test[ood.is_ood]] = True
        noise = noise_bound(y, dups, dataset.start_time, exclude=exclude)
        est_aleatory = min(100.0, noise.median_abs_pct / e0 * 100.0)

        breakdown = ErrorBreakdown(
            platform=dataset.name,
            baseline_error_pct=e0,
            application_pct_of_total=est_app,
            system_pct_of_total=est_sys,
            ood_pct_of_total=est_ood,
            aleatory_pct_of_total=est_aleatory,
            removed_by_tuning_pct_of_total=removed_tuning,
            removed_by_system_logs_pct_of_total=removed_logs,
            tuned_error_pct=e_tuned,
            application_bound_pct=app.median_abs_pct,
            system_bound_pct=sysb.golden_error_pct,
            noise_bound_pct=noise.median_abs_pct,
            details={
                "tuned_params": tuned.best_params,
                "golden_params": sysb.best_params,
                "lmt_error_pct": e_logs,
                "ood_threshold": ood.threshold,
                "ood_fraction": ood.ood_fraction,
                "noise_band_68_pct": noise.band_68_pct,
                "noise_band_95_pct": noise.band_95_pct,
            },
        )
        breakdown.validate()
        return TaxonomyReport(
            breakdown=breakdown,
            baseline_model=baseline,
            tuned_model=tuned.best_model,
            app_bound=app,
            sys_bound=sysb,
            ood=ood,
            noise=noise,
            splits=(train, val, test),
        )
