"""§VIII — out-of-distribution error attribution.

Deep-ensemble epistemic uncertainty (EU) flags jobs the training set does
not cover; *all* error on flagged jobs is attributed to eOoD (the paper's
conservative choice: on a truly OoD sample AU/EU cannot be separated).

The EU threshold is found at the "shoulder" of the inverse cumulative error
curve — the point where a small EU increment stops buying much error mass —
or supplied explicitly (the paper quotes 0.24 for Theta).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.ensemble import UncertaintyDecomposition

__all__ = ["OodAttribution", "ood_attribution", "shoulder_threshold"]


@dataclass
class OodAttribution:
    """OoD tagging and its error share."""

    threshold: float              # EU (std, dex) cutoff
    is_ood: np.ndarray            # per test job
    ood_fraction: float           # share of jobs tagged
    error_share: float            # share of total |error| carried by tagged jobs
    enrichment: float             # mean |error| of tagged vs average (3x in §VIII)


def shoulder_threshold(
    eu_std: np.ndarray,
    abs_err: np.ndarray | None = None,
    quantile: float = 0.995,
    gap_search_frac: float = 0.03,
    min_gap_ratio: float = 2.5,
) -> float:
    """Pick an EU cutoff at the "shoulder" of the EU distribution.

    The paper observes that "the quick drop or 'shoulder' in inverse
    cumulative error ... makes the choice of an eOoD threshold robust"
    (§VIII).  When truly novel jobs exist, their EU sits orders of
    magnitude above the in-distribution tail, so the sorted EU values show
    a wide multiplicative gap — the threshold is placed inside the largest
    such gap within the top ``gap_search_frac`` of jobs.  If no gap of at
    least ``min_gap_ratio`` exists (no separable OoD population), the
    ``quantile`` of EU is used instead, which bounds the tag rate.

    ``abs_err`` is accepted for API compatibility and future
    error-curve-based shoulder criteria; the gap detection does not need it.
    """
    eu_std = np.sort(np.asarray(eu_std, dtype=float))
    n = eu_std.size
    tail_start = max(0, min(n - 2, int(np.floor(n * (1.0 - gap_search_frac)))))
    tail = np.maximum(eu_std[tail_start:], 1e-12)
    if tail.size >= 2:
        ratios = tail[1:] / tail[:-1]
        k = int(np.argmax(ratios))
        if ratios[k] >= min_gap_ratio:
            return float(np.sqrt(tail[k] * tail[k + 1]))  # geometric midpoint
    return float(np.quantile(eu_std, quantile))


def ood_attribution(
    decomposition: UncertaintyDecomposition,
    y_dex: np.ndarray,
    pred_dex: np.ndarray | None = None,
    threshold: float | None = None,
    quantile: float = 0.99,
) -> OodAttribution:
    """Tag OoD jobs by EU and account their error share.

    ``pred_dex`` defaults to the ensemble mean.  ``threshold`` overrides the
    automatic shoulder pick.
    """
    y_dex = np.asarray(y_dex, dtype=float)
    mu = decomposition.mean if pred_dex is None else np.asarray(pred_dex, dtype=float)
    abs_err = np.abs(y_dex - mu)
    eu = decomposition.epistemic_std
    thr = float(threshold) if threshold is not None else shoulder_threshold(eu, abs_err, quantile)
    tagged = eu >= thr
    total = float(abs_err.sum())
    share = float(abs_err[tagged].sum() / total) if total > 0 else 0.0
    frac = float(tagged.mean())
    mean_all = float(abs_err.mean()) if abs_err.size else 0.0
    mean_tag = float(abs_err[tagged].mean()) if tagged.any() else 0.0
    return OodAttribution(
        threshold=thr,
        is_ood=tagged,
        ood_fraction=frac,
        error_share=share,
        enrichment=(mean_tag / mean_all) if mean_all > 0 else 0.0,
    )
