"""Deterministic random-number management.

Every stochastic component of the simulator and the ML stack draws from a
:class:`numpy.random.Generator` produced here.  We use NumPy's
``SeedSequence`` spawning so that

* a single integer seed reproduces an entire simulated platform, and
* independent subsystems (workload sampling, weather, noise, model init,
  ...) receive *statistically independent* streams that do not shift when an
  unrelated subsystem changes how many draws it makes.

This mirrors the common HPC SPMD pattern of giving each rank its own
counter-based stream rather than sharing one global RNG.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["RngFactory", "generator_from", "spawn_generators"]


def generator_from(seed: int | np.random.SeedSequence | np.random.Generator) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts a plain integer, a ``SeedSequence`` or an existing generator
    (returned unchanged) so that public APIs can take any of the three.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(int(seed))


def spawn_generators(seed: int | np.random.SeedSequence, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators from one root seed."""
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(int(seed))
    return [np.random.default_rng(child) for child in root.spawn(n)]


class RngFactory:
    """Named, reproducible RNG streams derived from one root seed.

    ``RngFactory(123).get("weather")`` always returns a generator seeded the
    same way, independent of the order or number of other ``get`` calls.
    Names are hashed into the spawn key, so adding a new subsystem never
    perturbs existing ones.
    """

    def __init__(self, seed: int):
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the stream called ``name``."""
        # Stable 64-bit key from the stream name; avoids Python's salted hash().
        key = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
        digest = int(np.sum(key.astype(np.uint64) * np.arange(1, key.size + 1, dtype=np.uint64)) % (2**63))
        ss = np.random.SeedSequence(entropy=self._seed, spawn_key=(digest,))
        return np.random.default_rng(ss)

    def streams(self, *names: str) -> Iterator[np.random.Generator]:
        """Yield one generator per name, in order."""
        for name in names:
            yield self.get(name)

    def child(self, name: str, index: int) -> np.random.Generator:
        """Indexed sub-stream, e.g. one per ensemble member or per job batch."""
        return self.get(f"{name}:{int(index)}")
