"""Parameter-sweep execution: the engine behind the paper's 8046-model grid.

A :class:`ParamGrid` enumerates the Cartesian product of named parameter
lists; :func:`run_grid` evaluates a callable at every point via
:func:`repro.parallel.pool.parallel_map` and returns ``SweepResult`` rows
sorted by score.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.parallel.pool import parallel_map
from repro.rng import generator_from

__all__ = ["ParamGrid", "SweepResult", "run_grid", "run_random_search"]


class ParamGrid:
    """Cartesian product of named parameter value lists, iterated lazily."""

    def __init__(self, **params: Sequence[Any]):
        if not params:
            raise ValueError("ParamGrid requires at least one parameter")
        self._names = list(params)
        self._values = [list(v) for v in params.values()]
        for name, vals in zip(self._names, self._values):
            if not vals:
                raise ValueError(f"parameter {name!r} has no values")

    def __len__(self) -> int:
        n = 1
        for vals in self._values:
            n *= len(vals)
        return n

    def __iter__(self) -> Iterator[dict[str, Any]]:
        for combo in product(*self._values):
            yield dict(zip(self._names, combo))

    @property
    def names(self) -> list[str]:
        return list(self._names)

    def axis(self, name: str) -> list[Any]:
        """Values of one axis (used to reshape sweep results into heatmaps)."""
        return list(self._values[self._names.index(name)])


@dataclass(frozen=True)
class SweepResult:
    """One evaluated grid point."""

    params: dict[str, Any]
    score: float
    info: dict[str, Any]


def _evaluate(args: tuple[Callable[..., Any], dict[str, Any]]) -> SweepResult:
    fn, params = args
    out = fn(**params)
    if isinstance(out, tuple):
        score, info = out
    else:
        score, info = out, {}
    return SweepResult(params=params, score=float(score), info=dict(info))


def run_grid(
    fn: Callable[..., float | tuple[float, Mapping[str, Any]]],
    grid: ParamGrid,
    workers: int | None = 1,
) -> list[SweepResult]:
    """Evaluate ``fn(**params)`` at every grid point.

    ``fn`` returns either a scalar score (lower is better) or a
    ``(score, info)`` tuple.  Results come back sorted ascending by score.
    """
    jobs = [(fn, params) for params in grid]
    results = parallel_map(_evaluate, jobs, workers=workers)
    return sorted(results, key=lambda r: r.score)


def run_random_search(
    fn: Callable[..., float | tuple[float, Mapping[str, Any]]],
    space: Mapping[str, Sequence[Any]],
    n_iter: int,
    seed: int | np.random.Generator = 0,
    workers: int | None = 1,
) -> list[SweepResult]:
    """Uniform random search over a discrete space (dedup-free, as is standard)."""
    rng = generator_from(seed)
    names = list(space)
    values = [list(space[k]) for k in names]
    draws = [
        {name: vals[rng.integers(len(vals))] for name, vals in zip(names, values)}
        for _ in range(int(n_iter))
    ]
    jobs = [(fn, params) for params in draws]
    results = parallel_map(_evaluate, jobs, workers=workers)
    return sorted(results, key=lambda r: r.score)
