"""Shared-nothing parallel helpers used by the sweep engine and HPO.

The design follows the SPMD decomposition idiom: work items are split into
contiguous chunks, each chunk is processed independently (optionally in a
process pool), and results are gathered in submission order.
"""

from repro.parallel.pool import parallel_map, effective_workers
from repro.parallel.sweep import ParamGrid, run_grid, run_random_search

__all__ = ["parallel_map", "effective_workers", "ParamGrid", "run_grid", "run_random_search"]
