"""Chunked map with optional process-pool execution.

``parallel_map`` is the single execution primitive used by the grid sweeps,
the NAS, and the ensemble trainer.  With ``workers <= 1`` (the default on a
single-core machine) it degrades to a plain loop with zero overhead, so all
call sites can be written once in the parallel style.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "effective_workers"]


def effective_workers(workers: int | None = None) -> int:
    """Resolve a worker count.

    ``None`` means "use ``REPRO_WORKERS`` env var, else the CPU count".  The
    result is always >= 1.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        if env is not None:
            workers = int(env)
        else:
            workers = os.cpu_count() or 1
    return max(1, int(workers))


def _chunks(items: Sequence[T], n_chunks: int) -> list[list[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, balanced chunks."""
    n = len(items)
    n_chunks = max(1, min(n_chunks, n))
    bounds = [round(i * n / n_chunks) for i in range(n_chunks + 1)]
    return [list(items[bounds[i] : bounds[i + 1]]) for i in range(n_chunks) if bounds[i] < bounds[i + 1]]


def _apply_chunk(fn: Callable[[T], R], chunk: list[T]) -> list[R]:
    return [fn(item) for item in chunk]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int | None = None,
    chunks_per_worker: int = 4,
    backend: str = "process",
) -> list[R]:
    """Apply ``fn`` to every item, preserving order.

    Parameters
    ----------
    fn:
        Pure function of one argument.  Must be picklable when ``workers > 1``
        with the process backend.
    items:
        Work items; materialized once.
    workers:
        Worker count; ``None`` → :func:`effective_workers`.  ``1`` runs
        serially in-process (no pickling, easy to debug and profile).
    chunks_per_worker:
        Over-decomposition factor for load balancing, as in classic
        block-cyclic work distribution.
    backend:
        ``"process"`` (default) isolates workers and suits pure-Python
        objectives; ``"thread"`` shares memory — the right choice for
        NumPy-bound kernels (bincount/cumsum/gather release the GIL) such
        as forest tree training, where pickling the binned matrix per
        chunk would dwarf the compute.
    """
    if backend not in ("process", "thread"):
        raise ValueError("backend must be 'process' or 'thread'")
    seq = list(items)
    if not seq:
        return []
    n_workers = effective_workers(workers)
    if n_workers == 1 or len(seq) == 1:
        return [fn(item) for item in seq]

    chunked = _chunks(seq, n_workers * max(1, chunks_per_worker))
    executor_cls = ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
    results: list[R] = []
    with executor_cls(max_workers=n_workers) as pool:
        for part in pool.map(_apply_chunk, [fn] * len(chunked), chunked):
            results.extend(part)
    return results
