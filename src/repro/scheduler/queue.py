"""Event-driven batch scheduling: FCFS with EASY backfill.

The queueing discipline Cobalt-era leadership machines ran: jobs are
served first-come-first-served, but a later job may *backfill* — start
early on idle nodes — when doing so cannot delay the reservation of the
queue head (EASY backfill, using user-supplied walltime estimates).

The simulation is a two-heap event loop (releases and a submit pointer),
O((n + events) log n).  Outputs per job: start time, allocation, wait
time — exactly the Cobalt columns the paper's models consume — plus queue
statistics and a utilization estimate for the whole trace.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.scheduler.placement import Allocation, PlacementPolicy, allocation_locality

__all__ = ["ScheduledJob", "SchedulerStats", "BatchScheduler"]


@dataclass
class ScheduledJob:
    """One job's schedule outcome."""

    job_id: int
    submit_time: float
    start_time: float
    end_time: float          # start + walltime estimate (the reservation)
    n_nodes: int
    allocation: Allocation
    locality: float          # mean pairwise hop distance of the allocation
    backfilled: bool

    @property
    def wait_time(self) -> float:
        return self.start_time - self.submit_time


@dataclass
class SchedulerStats:
    """Aggregate queue behaviour over a trace."""

    n_jobs: int
    mean_wait: float
    p95_wait: float
    backfill_share: float
    utilization: float       # node-seconds used / node-seconds available
    makespan: float

    def summary(self) -> str:
        return (
            f"{self.n_jobs} jobs, mean wait {self.mean_wait:.0f}s, "
            f"p95 wait {self.p95_wait:.0f}s, backfill {self.backfill_share:.0%}, "
            f"utilization {self.utilization:.0%}"
        )


@dataclass
class _Pending:
    job_id: int
    submit: float
    nodes: int
    walltime: float
    order: int = field(default=0)


class BatchScheduler:
    """FCFS + EASY backfill over a placement policy.

    Parameters
    ----------
    placement:
        The node allocator (owns the topology and the free pool).
    backfill:
        Enable EASY backfill.  With ``False`` the queue is pure FCFS —
        the ablation baseline.
    """

    def __init__(self, placement: PlacementPolicy, backfill: bool = True):
        self.placement = placement
        self.backfill = bool(backfill)

    # ------------------------------------------------------------------ #
    def run(
        self,
        submit_times: np.ndarray,
        n_nodes: np.ndarray,
        walltimes: np.ndarray,
    ) -> tuple[list[ScheduledJob], SchedulerStats]:
        """Schedule a whole trace; returns per-job outcomes + statistics."""
        submit_times = np.asarray(submit_times, dtype=float)
        n_nodes = np.asarray(n_nodes, dtype=np.int64)
        walltimes = np.asarray(walltimes, dtype=float)
        n = submit_times.size
        if not (n_nodes.size == n and walltimes.size == n):
            raise ValueError("submit_times, n_nodes, walltimes must align")
        total_nodes = self.placement.topology.n_nodes
        if np.any(n_nodes < 1) or np.any(n_nodes > total_nodes):
            raise ValueError("node request outside [1, machine size]")
        if np.any(walltimes <= 0.0):
            raise ValueError("walltimes must be positive")

        order = np.argsort(submit_times, kind="stable")
        queue: list[_Pending] = []
        releases: list[tuple[float, int, Allocation]] = []  # (end, job_id, alloc)
        done: dict[int, ScheduledJob] = {}
        next_submit = 0
        now = float(submit_times[order[0]]) if n else 0.0
        used_node_seconds = 0.0

        def try_start(pending: _Pending, current_time: float, backfilled: bool) -> bool:
            alloc = self.placement.allocate(int(pending.nodes))
            if alloc is None:
                return False
            loc = allocation_locality(self.placement.topology, alloc.node_ids)
            end = current_time + pending.walltime
            heapq.heappush(releases, (end, pending.job_id, alloc))
            done[pending.job_id] = ScheduledJob(
                job_id=pending.job_id,
                submit_time=pending.submit,
                start_time=current_time,
                end_time=end,
                n_nodes=int(pending.nodes),
                allocation=alloc,
                locality=loc,
                backfilled=backfilled,
            )
            return True

        while len(done) < n:
            # admit all jobs submitted up to `now`
            while next_submit < n and submit_times[order[next_submit]] <= now:
                j = int(order[next_submit])
                queue.append(
                    _Pending(job_id=j, submit=float(submit_times[j]),
                             nodes=int(n_nodes[j]), walltime=float(walltimes[j]),
                             order=next_submit)
                )
                next_submit += 1

            # FCFS head starts; then EASY backfill against the head's shadow
            progressed = True
            while progressed and queue:
                progressed = False
                head = queue[0]
                if try_start(head, now, backfilled=False):
                    queue.pop(0)
                    progressed = True
                    continue
                if not self.backfill or len(queue) < 2:
                    break
                # shadow time: when the head is guaranteed to fit
                shadow = self._shadow_time(head.nodes, releases)
                for idx in range(1, len(queue)):
                    cand = queue[idx]
                    # cannot delay the head: either finishes before the
                    # shadow, or fits alongside the head's reservation
                    if now + cand.walltime <= shadow or cand.nodes <= self._spare_at_shadow(
                        head.nodes, releases
                    ):
                        if try_start(cand, now, backfilled=True):
                            queue.pop(idx)
                            progressed = True
                            break

            # advance time: next release or next submission
            next_events = []
            if releases:
                next_events.append(releases[0][0])
            if next_submit < n:
                next_events.append(float(submit_times[order[next_submit]]))
            if not next_events:
                break
            now = min(next_events)
            while releases and releases[0][0] <= now:
                _, jid, alloc = heapq.heappop(releases)
                self.placement.release(alloc)
                used_node_seconds += alloc.n_nodes * (done[jid].end_time - done[jid].start_time)

        # drain remaining reservations for bookkeeping
        while releases:
            _, jid, alloc = heapq.heappop(releases)
            self.placement.release(alloc)
            used_node_seconds += alloc.n_nodes * (done[jid].end_time - done[jid].start_time)

        jobs = [done[i] for i in range(n)]
        waits = np.array([j.wait_time for j in jobs]) if jobs else np.zeros(0)
        t0 = float(submit_times.min()) if n else 0.0
        t1 = max((j.end_time for j in jobs), default=t0)
        makespan = max(t1 - t0, 1e-9)
        stats = SchedulerStats(
            n_jobs=n,
            mean_wait=float(waits.mean()) if n else 0.0,
            p95_wait=float(np.percentile(waits, 95)) if n else 0.0,
            backfill_share=float(np.mean([j.backfilled for j in jobs])) if n else 0.0,
            utilization=float(used_node_seconds / (total_nodes * makespan)),
            makespan=makespan,
        )
        return jobs, stats

    # ------------------------------------------------------------------ #
    def _shadow_time(self, head_nodes: int, releases: list) -> float:
        """Earliest time the queue head is guaranteed its nodes."""
        free = self.placement.n_free
        if free >= head_nodes:
            return 0.0
        for end, _, alloc in sorted(releases):
            free += alloc.n_nodes
            if free >= head_nodes:
                return float(end)
        return np.inf

    def _spare_at_shadow(self, head_nodes: int, releases: list) -> int:
        """Nodes a long-running backfill job may take without delaying the head.

        At the shadow time the head will hold ``head_nodes`` out of
        ``free_now + freed_by_shadow`` available nodes; a backfill job that
        outlives the shadow must fit in the surplus — and, of course, in
        what is free right now.
        """
        free_now = self.placement.n_free
        freed_by_shadow = 0
        free = free_now
        for _, _, alloc in sorted(releases):
            if free >= head_nodes:
                break
            free += alloc.n_nodes
            freed_by_shadow += alloc.n_nodes
        surplus_at_shadow = free_now + freed_by_shadow - head_nodes
        return max(0, min(free_now, surplus_at_shadow))
