"""Interconnect topologies: Aries-style dragonfly and a 3-D torus.

Placement quality is a topological notion — an allocation is "tight" when
its nodes are few hops apart — so the scheduler needs an actual
interconnect model.  Both testbed machines (ALCF Theta and NERSC Cori) are
Cray XC40s with the Aries dragonfly; the torus is included for placement
ablations (it was the BG/Q-era geometry and stresses policies differently:
torus distance grows smoothly, dragonfly distance is nearly bimodal).

Router graphs are built with ``networkx``; hop distances come from BFS and
are cached per topology.  Node counts are kept configurable so benches can
run scaled-down machines.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

__all__ = ["Topology", "Dragonfly", "Torus3D"]


class Topology:
    """Base class: a router graph plus a node→router mapping.

    Subclasses populate ``graph`` (routers as integer vertices) and
    ``nodes_per_router``.  Compute nodes are numbered consecutively,
    router-major: node ``i`` sits on router ``i // nodes_per_router``.
    """

    def __init__(self, graph: nx.Graph, nodes_per_router: int):
        if nodes_per_router < 1:
            raise ValueError("nodes_per_router must be >= 1")
        self.graph = graph
        self.nodes_per_router = int(nodes_per_router)
        self._hops: np.ndarray | None = None

    @property
    def n_routers(self) -> int:
        return int(self.graph.number_of_nodes())

    @property
    def n_nodes(self) -> int:
        return self.n_routers * self.nodes_per_router

    def router_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Router index hosting each compute node."""
        node_ids = np.asarray(node_ids)
        if np.any(node_ids < 0) or np.any(node_ids >= self.n_nodes):
            raise IndexError("node id out of range")
        return node_ids // self.nodes_per_router

    # ------------------------------------------------------------------ #
    def hop_matrix(self) -> np.ndarray:
        """All-pairs router hop distances (cached; BFS per router)."""
        if self._hops is None:
            n = self.n_routers
            hops = np.zeros((n, n), dtype=np.int16)
            for src, dists in nx.all_pairs_shortest_path_length(self.graph):
                for dst, d in dists.items():
                    hops[src, dst] = d
            self._hops = hops
        return self._hops

    def node_distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Hop distance between compute nodes (0 when on the same router)."""
        ra = self.router_of(np.asarray(a))
        rb = self.router_of(np.asarray(b))
        return self.hop_matrix()[ra, rb]

    def diameter(self) -> int:
        return int(self.hop_matrix().max())


class Dragonfly(Topology):
    """Aries-style dragonfly: all-to-all intra-group, girdled global links.

    Parameters
    ----------
    n_groups:
        Number of electrical groups.
    routers_per_group:
        Routers per group (all-to-all within the group).
    nodes_per_router:
        Compute nodes per router (4 on an Aries blade).
    global_links_per_router:
        How many distinct *other groups* each router connects to directly.
        Groups stay mutually reachable (≤ 3 router hops end-to-end) as in
        the real machine, where every group pair shares at least one link.
    """

    def __init__(
        self,
        n_groups: int = 12,
        routers_per_group: int = 16,
        nodes_per_router: int = 4,
        global_links_per_router: int = 1,
        seed: int = 0,
    ):
        if n_groups < 2 or routers_per_group < 2:
            raise ValueError("need at least 2 groups of 2 routers")
        rng = np.random.default_rng(seed)
        g = nx.Graph()
        n_routers = n_groups * routers_per_group
        g.add_nodes_from(range(n_routers))

        def router(group: int, slot: int) -> int:
            return group * routers_per_group + slot

        # intra-group all-to-all
        for grp in range(n_groups):
            for i in range(routers_per_group):
                for j in range(i + 1, routers_per_group):
                    g.add_edge(router(grp, i), router(grp, j))

        # deterministic round-robin guarantee: every group pair gets a link
        pair_idx = 0
        for ga in range(n_groups):
            for gb in range(ga + 1, n_groups):
                sa = pair_idx % routers_per_group
                sb = (pair_idx * 7 + 3) % routers_per_group
                g.add_edge(router(ga, sa), router(gb, sb))
                pair_idx += 1

        # extra random global links up to the per-router budget
        extra = max(0, global_links_per_router - 1) * n_routers // 2
        for _ in range(extra):
            ga, gb = rng.choice(n_groups, 2, replace=False)
            g.add_edge(
                router(int(ga), int(rng.integers(routers_per_group))),
                router(int(gb), int(rng.integers(routers_per_group))),
            )

        super().__init__(g, nodes_per_router)
        self.n_groups = int(n_groups)
        self.routers_per_group = int(routers_per_group)

    def group_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Electrical group of each compute node."""
        return self.router_of(node_ids) // self.routers_per_group


class Torus3D(Topology):
    """Wrap-around 3-D mesh (BG/Q-era geometry, kept for ablations)."""

    def __init__(self, dims: tuple[int, int, int] = (8, 8, 8), nodes_per_router: int = 1):
        dx, dy, dz = (int(d) for d in dims)
        if min(dx, dy, dz) < 2:
            raise ValueError("all torus dimensions must be >= 2")
        g = nx.Graph()
        n = dx * dy * dz

        def rid(x: int, y: int, z: int) -> int:
            return (x * dy + y) * dz + z

        g.add_nodes_from(range(n))
        for x in range(dx):
            for y in range(dy):
                for z in range(dz):
                    a = rid(x, y, z)
                    g.add_edge(a, rid((x + 1) % dx, y, z))
                    g.add_edge(a, rid(x, (y + 1) % dy, z))
                    g.add_edge(a, rid(x, y, (z + 1) % dz))
        super().__init__(g, nodes_per_router)
        self.dims = (dx, dy, dz)

    def coordinates(self, node_ids: np.ndarray) -> np.ndarray:
        """(n, 3) torus coordinates of each node's router."""
        r = self.router_of(np.asarray(node_ids))
        _, dy, dz = self.dims
        x = r // (dy * dz)
        y = (r // dz) % dy
        z = r % dz
        return np.stack([x, y, z], axis=1)
