"""Node-allocation policies and locality metrics.

A placement policy turns "give me k free nodes" into a concrete node set.
The three policies span the realistic design space:

* ``contiguous`` — lowest-numbered free nodes first (slot ordering follows
  the machine's physical numbering, so low ids cluster topologically);
* ``cluster``    — greedy BFS growth from the emptiest router, the
  quality-oriented policy;
* ``random``     — uniformly random free nodes, the fragmentation
  worst case (and, empirically, not far from a busy machine's reality).

:func:`allocation_locality` scores an allocation by its mean pairwise hop
distance — the quantity the contention model consumes: a spread-out job
shares routers/links with more strangers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import generator_from
from repro.scheduler.topology import Topology

__all__ = ["Allocation", "PlacementPolicy", "allocation_locality"]

_POLICIES = ("contiguous", "cluster", "random")


@dataclass
class Allocation:
    """A concrete node grant."""

    node_ids: np.ndarray

    @property
    def n_nodes(self) -> int:
        return int(self.node_ids.size)


def allocation_locality(topology: Topology, node_ids: np.ndarray, sample: int = 64) -> float:
    """Mean pairwise router-hop distance of an allocation (0 = one router).

    Allocations larger than ``sample`` nodes are subsampled — the mean pair
    distance concentrates fast and the full quadratic form is never needed.
    """
    node_ids = np.asarray(node_ids)
    if node_ids.size < 2:
        return 0.0
    if node_ids.size > sample:
        # deterministic thinning keeps the metric reproducible
        step = node_ids.size / sample
        node_ids = node_ids[(np.arange(sample) * step).astype(np.int64)]
    routers = topology.router_of(node_ids)
    hops = topology.hop_matrix()[np.ix_(routers, routers)]
    iu = np.triu_indices(routers.size, k=1)
    return float(hops[iu].mean())


class PlacementPolicy:
    """Stateful allocator over a topology's node pool."""

    def __init__(self, topology: Topology, policy: str = "contiguous", seed: int = 0):
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}")
        self.topology = topology
        self.policy = policy
        self._rng = generator_from(seed)
        self._free = np.ones(topology.n_nodes, dtype=bool)

    # ------------------------------------------------------------------ #
    @property
    def n_free(self) -> int:
        return int(self._free.sum())

    def allocate(self, k: int) -> Allocation | None:
        """Grant ``k`` nodes or return None if the machine is too full."""
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > self.n_free:
            return None
        if self.policy == "contiguous":
            chosen = np.flatnonzero(self._free)[:k]
        elif self.policy == "random":
            chosen = self._rng.choice(np.flatnonzero(self._free), k, replace=False)
        else:
            chosen = self._cluster_allocate(k)
        self._free[chosen] = False
        return Allocation(node_ids=np.sort(chosen))

    def release(self, allocation: Allocation) -> None:
        if np.any(self._free[allocation.node_ids]):
            raise ValueError("releasing nodes that are already free")
        self._free[allocation.node_ids] = True

    # ------------------------------------------------------------------ #
    def _cluster_allocate(self, k: int) -> np.ndarray:
        """Grow from the router with most free nodes, then nearest routers."""
        topo = self.topology
        npr = topo.nodes_per_router
        free_per_router = np.add.reduceat(
            self._free, np.arange(0, topo.n_nodes, npr)
        )
        seed_router = int(free_per_router.argmax())
        order = np.argsort(topo.hop_matrix()[seed_router], kind="stable")

        chosen: list[int] = []
        for router in order:
            base = int(router) * npr
            for local in range(npr):
                node = base + local
                if self._free[node]:
                    chosen.append(node)
                    if len(chosen) == k:
                        return np.asarray(chosen, dtype=np.int64)
        raise AssertionError("unreachable: free-count was checked by allocate()")
