"""Batch-scheduler substrate (the system behind the paper's Cobalt logs).

The Cobalt logs the paper consumes (§V) — "number of nodes and cores
assigned to a job, job start and end times, job placement" — are the
*output* of a batch scheduler.  This subpackage implements that substrate:

* :mod:`repro.scheduler.topology`  — dragonfly / 3-D torus interconnects
  (both Theta and Cori are Cray XC40 Aries dragonflies; the torus is kept
  for placement ablations) built on ``networkx``
* :mod:`repro.scheduler.placement` — node-allocation policies and the
  locality metrics that feed contention
* :mod:`repro.scheduler.queue`     — event-driven FCFS + EASY-backfill
  scheduling of a job stream
* :mod:`repro.scheduler.ost`       — Lustre OST striping assignment and
  per-OST load overlap between concurrent jobs

The placement ablation bench uses these pieces to show *why* the ζl term
is idiosyncratic: two identical jobs submitted together land on different
nodes/OSTs and see different neighbour traffic (§IX's unobservable
contention), and tighter placement policies shrink — but cannot remove —
that spread.
"""

from repro.scheduler.ost import OstStriper, ost_overlap_matrix
from repro.scheduler.placement import Allocation, PlacementPolicy, allocation_locality
from repro.scheduler.queue import BatchScheduler, ScheduledJob, SchedulerStats
from repro.scheduler.trace import QueueTrace, schedule_jobs, trace_from_jobs
from repro.scheduler.topology import Dragonfly, Torus3D

__all__ = [
    "Dragonfly",
    "Torus3D",
    "PlacementPolicy",
    "Allocation",
    "allocation_locality",
    "BatchScheduler",
    "ScheduledJob",
    "SchedulerStats",
    "OstStriper",
    "ost_overlap_matrix",
    "QueueTrace",
    "schedule_jobs",
    "trace_from_jobs",
]
