"""Lustre OST striping: which storage targets a job actually touches.

Contention is not a function of *aggregate* system load alone — a job is
slowed by the neighbours that share its object storage targets.  Lustre
assigns each file a stripe (a subset of OSTs, round-robin from a start
offset); two concurrent jobs interact in proportion to their stripe
overlap.  This module implements that assignment and the overlap/pressure
computations the placement ablation consumes, and is the mechanistic
justification for the engine's lognormal "placement luck" term: identical
jobs submitted together draw different stripe offsets and therefore
different neighbour sets (§IX's unobservable ζl).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import generator_from

__all__ = ["StripeAssignment", "OstStriper", "ost_overlap_matrix", "per_ost_load"]


@dataclass
class StripeAssignment:
    """The OST subset of one job."""

    ost_ids: np.ndarray

    @property
    def width(self) -> int:
        return int(self.ost_ids.size)


class OstStriper:
    """Round-robin stripe allocator over ``n_ost`` targets.

    ``policy="roundrobin"`` mimics Lustre's default allocator: each new
    file starts at a rotating offset, which balances aggregate load but
    randomizes neighbour sets.  ``policy="random"`` draws stripes uniformly
    (the worst case); ``policy="balanced"`` picks the currently least
    loaded targets (an idealized QOS allocator for the ablation).
    """

    _POLICIES = ("roundrobin", "random", "balanced")

    def __init__(self, n_ost: int, policy: str = "roundrobin", seed: int = 0):
        if n_ost < 1:
            raise ValueError("n_ost must be >= 1")
        if policy not in self._POLICIES:
            raise ValueError(f"policy must be one of {self._POLICIES}")
        self.n_ost = int(n_ost)
        self.policy = policy
        self._rng = generator_from(seed)
        self._cursor = 0
        self._load = np.zeros(self.n_ost)

    def assign(self, stripe_width: int, demand: float = 0.0) -> StripeAssignment:
        """Grant a stripe of ``stripe_width`` OSTs; track ``demand`` on them.

        ``demand`` is the job's bandwidth pressure (any consistent unit);
        it accumulates per OST and steers the ``balanced`` policy.
        """
        w = int(min(max(stripe_width, 1), self.n_ost))
        if self.policy == "roundrobin":
            osts = (self._cursor + np.arange(w)) % self.n_ost
            self._cursor = int((self._cursor + w) % self.n_ost)
        elif self.policy == "random":
            osts = self._rng.choice(self.n_ost, w, replace=False)
        else:
            osts = np.argsort(self._load, kind="stable")[:w]
        osts = np.sort(np.asarray(osts, dtype=np.int64))
        if demand:
            self._load[osts] += demand / w
        return StripeAssignment(ost_ids=osts)

    def release(self, assignment: StripeAssignment, demand: float) -> None:
        """Remove a finished job's pressure from its stripe."""
        if demand:
            self._load[assignment.ost_ids] -= demand / assignment.width
            np.maximum(self._load, 0.0, out=self._load)

    @property
    def load(self) -> np.ndarray:
        """Current per-OST pressure (copy)."""
        return self._load.copy()


def ost_overlap_matrix(assignments: list[StripeAssignment], n_ost: int) -> np.ndarray:
    """(k, k) pairwise stripe-overlap fractions for k concurrent jobs.

    Entry (i, j) is |stripe_i ∩ stripe_j| / width_i — the share of job i's
    targets that job j also hits (not symmetric when widths differ).
    """
    k = len(assignments)
    member = np.zeros((k, n_ost), dtype=bool)
    for i, a in enumerate(assignments):
        member[i, a.ost_ids] = True
    inter = (member[:, None, :] & member[None, :, :]).sum(axis=2).astype(float)
    widths = member.sum(axis=1).astype(float)
    out = inter / np.maximum(widths[:, None], 1.0)
    np.fill_diagonal(out, 0.0)
    return out


def per_ost_load(
    assignments: list[StripeAssignment], demands: np.ndarray, n_ost: int
) -> np.ndarray:
    """Aggregate pressure per OST from concurrent jobs (demand split evenly)."""
    demands = np.asarray(demands, dtype=float)
    if demands.size != len(assignments):
        raise ValueError("one demand per assignment required")
    load = np.zeros(n_ost)
    for a, d in zip(assignments, demands):
        load[a.ost_ids] += d / a.width
    return load
