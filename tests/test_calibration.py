"""Integration tests: the simulator's calibration against the paper's numbers.

These assert *bands* around the headline statistics of §V, §VI.A and §IX —
the quantities DESIGN.md §5 commits to.  They exercise the full path
simulator → telemetry → duplicate census → litmus tests (no model training,
so they stay fast).
"""

import numpy as np
import pytest

from repro.config import cori_config, theta_config
from repro.data import build_dataset, find_duplicate_sets
from repro.taxonomy import application_bound, noise_bound


@pytest.fixture(scope="module")
def theta():
    ds = build_dataset(theta_config(n_jobs=8000))
    dups = find_duplicate_sets(ds.frames["posix"])
    return ds, dups


@pytest.fixture(scope="module")
def cori():
    ds = build_dataset(cori_config(n_jobs=12000))
    dups = find_duplicate_sets(ds.frames["posix"])
    return ds, dups


class TestDuplicateCensus:
    def test_theta_duplicate_fraction(self, theta):
        """Paper: 23.5 % of Theta jobs are duplicates."""
        ds, dups = theta
        assert 0.18 <= dups.fraction_of(len(ds)) <= 0.33

    def test_cori_duplicate_fraction(self, cori):
        """Paper: 54 % of Cori jobs are duplicates."""
        ds, dups = cori
        assert 0.45 <= dups.fraction_of(len(ds)) <= 0.65

    def test_mean_set_size_plausible(self, theta):
        """Paper: 19010 duplicates over 3509 sets ⇒ mean ~5.4."""
        _, dups = theta
        mean_size = dups.n_duplicates / dups.n_sets
        assert 3.0 <= mean_size <= 9.0


class TestApplicationBoundCalibration:
    def test_theta_bound_band(self, theta):
        """Paper: 10.01 % on Theta."""
        ds, dups = theta
        bound = application_bound(ds.frames["posix"], ds.y, dups=dups)
        assert 7.5 <= bound.median_abs_pct <= 14.0

    def test_cori_bound_band(self, cori):
        """Paper: 14.15 % on Cori — and higher than Theta's."""
        ds, dups = cori
        bound = application_bound(ds.frames["posix"], ds.y, dups=dups)
        assert 10.5 <= bound.median_abs_pct <= 19.0

    def test_ordering_cori_above_theta(self, theta, cori):
        bt = application_bound(theta[0].frames["posix"], theta[0].y, dups=theta[1])
        bc = application_bound(cori[0].frames["posix"], cori[0].y, dups=cori[1])
        assert bc.median_abs_pct > bt.median_abs_pct


class TestNoiseBoundCalibration:
    def test_theta_bands(self, theta):
        """Paper: ±5.71 % (68 %) and ±10.56 % (95 %) on Theta."""
        ds, dups = theta
        nb = noise_bound(ds.y, dups, ds.start_time)
        assert 4.2 <= nb.band_68_pct <= 7.5
        assert 8.0 <= nb.band_95_pct <= 14.5

    def test_cori_bands(self, cori):
        """Paper: ±7.21 % / ±14.99 % on Cori — noisier than Theta."""
        ds, dups = cori
        nb = noise_bound(ds.y, dups, ds.start_time)
        assert 5.2 <= nb.band_68_pct <= 9.5

    def test_concurrent_set_sizes(self, theta):
        """Paper: 70 % of Δt=0 sets have 2 jobs; 96 % have ≤ 6."""
        ds, dups = theta
        nb = noise_bound(ds.y, dups, ds.start_time)
        assert 0.55 <= nb.set_size_share_2 <= 0.85
        assert nb.set_size_share_le6 >= 0.90

    def test_noise_below_application_bound(self, theta):
        """Δt=0 spread excludes weather ⇒ must sit below the all-time bound."""
        ds, dups = theta
        nb = noise_bound(ds.y, dups, ds.start_time)
        ab = application_bound(ds.frames["posix"], ds.y, dups=dups)
        assert nb.median_abs_pct < ab.median_abs_pct


class TestGroundTruthValidation:
    def test_application_bound_tracks_true_irreducible(self, theta):
        """The litmus estimate must track the generative ground truth.

        This validation is only possible because our substrate is a
        simulator: the paper could never check its own bound this way.
        """
        ds, dups = theta
        bound = application_bound(ds.frames["posix"], ds.y, dups=dups)
        irr = ds.meta["fg_dex"] + ds.meta["fl_dex"] + ds.meta["fn_dex"]
        true_med = np.median(np.abs(irr - np.median(irr)))
        assert bound.median_abs_dex == pytest.approx(true_med, rel=0.35)

    def test_noise_sigma_tracks_injected_noise(self, theta):
        ds, dups = theta
        nb = noise_bound(ds.y, dups, ds.start_time)
        # fn + idiosyncratic contention: must exceed the pure fn σ and stay
        # well below the all-weather spread
        fn_sigma = np.std(ds.meta["fn_dex"])
        assert nb.sigma_dex > 0.8 * fn_sigma
        assert nb.sigma_dex < 3.0 * fn_sigma
