"""Tests for quantile pre-binning."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.binning import QuantileBinner


class TestQuantileBinner:
    def test_codes_within_range(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (300, 3))
        codes = QuantileBinner(16).fit_transform(X)
        assert codes.dtype == np.uint8
        assert codes.max() < 16

    def test_monotone_within_feature(self):
        X = np.sort(np.random.default_rng(1).normal(0, 1, (200, 1)), axis=0)
        codes = QuantileBinner(32).fit_transform(X)
        assert np.all(np.diff(codes[:, 0].astype(int)) >= 0)

    def test_out_of_range_clipped_gracefully(self):
        X = np.arange(100.0)[:, None]
        binner = QuantileBinner(8).fit(X)
        lo = binner.transform(np.array([[-1e9]]))
        hi = binner.transform(np.array([[1e9]]))
        assert lo[0, 0] == 0
        assert hi[0, 0] == binner.actual_bins - 1

    def test_constant_feature_single_bin(self):
        X = np.ones((50, 1))
        binner = QuantileBinner(8).fit(X)
        codes = binner.transform(X)
        assert np.unique(codes).size == 1

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            QuantileBinner().transform(np.zeros((2, 2)))

    def test_feature_mismatch_raises(self):
        binner = QuantileBinner(8).fit(np.zeros((10, 2)))
        with pytest.raises(ValueError):
            binner.transform(np.zeros((10, 3)))

    @pytest.mark.parametrize("bad", [1, 256, 0])
    def test_invalid_bin_count_raises(self, bad):
        with pytest.raises(ValueError):
            QuantileBinner(bad)

    @given(arrays(np.float64, (50, 2), elements=st.floats(-1e6, 1e6)))
    def test_order_preserving_property(self, X):
        codes = QuantileBinner(16).fit_transform(X)
        for f in range(X.shape[1]):
            order = np.argsort(X[:, f], kind="stable")
            assert np.all(np.diff(codes[order, f].astype(int)) >= 0)


class TestCacheStalenessRegression:
    """The LRU opt-in is immutability; a writeable array must NEVER hit.

    Regression for the wrong way to opt in: keeping the array writeable,
    binning it (no cache entry may be created), mutating it in place, and
    binning again — the second pass must see the mutation.  Sweep drivers
    opt in correctly by freezing a private copy once (``hpo._make_objective``,
    ``agebo.run``, ``model_selection.cross_val_error``).
    """

    def test_writable_array_mutated_after_binning_no_stale_hit(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (400, 3))  # writeable: the wrong way to opt in
        binner = QuantileBinner(32)
        codes_before = binner.fit(X).transform(X).copy()
        X[:, 1] = rng.normal(5, 0.1, 400)  # in-place mutation (permutation-importance style)
        # same binner, same array object: a stale code-cache hit would
        # return codes_before — the mutated column must be re-discretized
        codes_after = binner.transform(X)
        assert not np.array_equal(codes_after[:, 1], codes_before[:, 1])
        assert np.all(codes_after[:, 1] >= codes_before[:, 1].max())  # shifted above old edges
        # refitting must also see the new quantiles, not cached edges
        refit = QuantileBinner(32).fit(X)
        assert not np.array_equal(refit.edges_[1], binner.edges_[1])

    def test_agebo_freezes_private_copies(self):
        """``agebo.run`` must freeze its matrices the ``hpo`` way — caller
        arrays stay writeable, search-internal fits see immutable data."""
        from repro.ml.agebo import AgingEvolutionSearch

        rng = np.random.default_rng(1)
        X = rng.normal(0, 1, (60, 4))
        y = X[:, 0] + 0.1 * rng.normal(0, 1, 60)
        seen_writeable = []

        class Probe(AgingEvolutionSearch):
            def _evaluate(self, config, X_train, y_train, X_val, y_val, member_seed):
                seen_writeable.append(X_train.flags.writeable or X_val.flags.writeable)
                return float(member_seed)  # skip the MLP fit: we only probe the arrays

        Probe(population=3, generations=2, epochs=1, seed=0).run(X[:40], y[:40], X[40:], y[40:])
        assert seen_writeable and not any(seen_writeable)
        assert X.flags.writeable  # caller memory untouched

    def test_cross_val_error_guards_fold_slices(self):
        """Fold slices handed to estimators are read-only (no estimator can
        mutate the caller's X through them) but deliberately NOT
        cache-eligible — throwaway per-fold identities must not churn the
        small module-level binning LRU."""
        from repro.ml.binning import _is_frozen
        from repro.ml.model_selection import cross_val_error

        rng = np.random.default_rng(2)
        X = rng.normal(0, 1, (80, 3))
        y = X[:, 0]
        seen = []

        class Probe:
            def fit(self, Xf, yf):
                seen.append((Xf.flags.writeable, _is_frozen(Xf)))
                self.mean = float(np.mean(yf))
                return self

            def predict(self, Xf):
                seen.append((Xf.flags.writeable, _is_frozen(Xf)))
                return np.full(Xf.shape[0], self.mean)

        cross_val_error(Probe, X, y, k=4)
        assert len(seen) == 8
        assert not any(w for w, _ in seen)       # read-only for the estimator
        assert not any(f for _, f in seen)       # but never enters the LRU
        assert X.flags.writeable
