"""Tests for quantile pre-binning."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.binning import QuantileBinner


class TestQuantileBinner:
    def test_codes_within_range(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (300, 3))
        codes = QuantileBinner(16).fit_transform(X)
        assert codes.dtype == np.uint8
        assert codes.max() < 16

    def test_monotone_within_feature(self):
        X = np.sort(np.random.default_rng(1).normal(0, 1, (200, 1)), axis=0)
        codes = QuantileBinner(32).fit_transform(X)
        assert np.all(np.diff(codes[:, 0].astype(int)) >= 0)

    def test_out_of_range_clipped_gracefully(self):
        X = np.arange(100.0)[:, None]
        binner = QuantileBinner(8).fit(X)
        lo = binner.transform(np.array([[-1e9]]))
        hi = binner.transform(np.array([[1e9]]))
        assert lo[0, 0] == 0
        assert hi[0, 0] == binner.actual_bins - 1

    def test_constant_feature_single_bin(self):
        X = np.ones((50, 1))
        binner = QuantileBinner(8).fit(X)
        codes = binner.transform(X)
        assert np.unique(codes).size == 1

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            QuantileBinner().transform(np.zeros((2, 2)))

    def test_feature_mismatch_raises(self):
        binner = QuantileBinner(8).fit(np.zeros((10, 2)))
        with pytest.raises(ValueError):
            binner.transform(np.zeros((10, 3)))

    @pytest.mark.parametrize("bad", [1, 256, 0])
    def test_invalid_bin_count_raises(self, bad):
        with pytest.raises(ValueError):
            QuantileBinner(bad)

    @given(arrays(np.float64, (50, 2), elements=st.floats(-1e6, 1e6)))
    def test_order_preserving_property(self, X):
        codes = QuantileBinner(16).fit_transform(X)
        for f in range(X.shape[1]):
            order = np.argsort(X[:, f], kind="stable")
            assert np.all(np.diff(codes[order, f].astype(int)) >= 0)
