"""Tests for hyperparameter search, AgEBO-style NAS, and AutoDEUQ."""

import numpy as np
import pytest

from repro.ml.agebo import DEFAULT_SPACE, AgingEvolutionSearch, NasHistory, SearchSpace
from repro.ml.hpo import grid_search, heatmap_from_results, random_search
from repro.ml.linear import RidgeRegression
from repro.ml.model_selection import cross_val_error, kfold_indices
from repro.ml.uncertainty import autodeuq
from repro.parallel.sweep import SweepResult
from repro.rng import generator_from


def _toy_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, 4))
    y = X[:, 0] - 0.5 * X[:, 1] + 0.05 * rng.normal(0, 1, n)
    return X, y


class TestGridSearch:
    def test_finds_better_alpha(self):
        X, y = _toy_data()
        res = grid_search(
            RidgeRegression,
            {"alpha": [1e-6, 1e4]},
            X[:250], y[:250], X[250:320], y[250:320],
        )
        assert res.best_params["alpha"] == 1e-6
        assert res.best_model is not None

    def test_results_sorted(self):
        X, y = _toy_data()
        res = grid_search(RidgeRegression, {"alpha": [1e-6, 1.0, 1e4]},
                          X[:250], y[:250], X[250:320], y[250:320])
        scores = res.scores()
        assert scores == sorted(scores)

    def test_no_refit(self):
        X, y = _toy_data()
        res = grid_search(RidgeRegression, {"alpha": [1.0]},
                          X[:250], y[:250], X[250:320], y[250:320], refit=False)
        assert res.best_model is None


class TestRandomSearchEstimator:
    def test_runs(self):
        X, y = _toy_data()
        res = random_search(RidgeRegression, {"alpha": [1e-6, 1.0, 100.0]}, 5,
                            X[:250], y[:250], X[250:320], y[250:320], seed=1)
        assert len(res.results) == 5


class TestHeatmap:
    def test_pivot_keeps_best(self):
        results = [
            SweepResult({"a": 1, "b": 1, "c": 0}, 5.0, {}),
            SweepResult({"a": 1, "b": 1, "c": 1}, 3.0, {}),
            SweepResult({"a": 2, "b": 1, "c": 0}, 4.0, {}),
        ]
        M, xs, ys = heatmap_from_results(results, "a", "b")
        assert M.shape == (1, 2)
        assert M[0, xs.index(1)] == 3.0  # min over the c axis


class TestModelSelection:
    def test_kfold_partitions(self):
        folds = list(kfold_indices(20, 4, rng=0))
        assert len(folds) == 4
        all_test = np.concatenate([te for _, te in folds])
        assert np.sort(all_test).tolist() == list(range(20))
        for tr, te in folds:
            assert np.intersect1d(tr, te).size == 0

    def test_kfold_bad_k_raises(self):
        with pytest.raises(ValueError):
            list(kfold_indices(5, 1))

    def test_cross_val_error_runs(self):
        X, y = _toy_data(150)
        err = cross_val_error(lambda: RidgeRegression(1e-6), X, y, k=3)
        assert 0 <= err < 0.5


class TestSearchSpace:
    def setup_method(self):
        self.space = SearchSpace(DEFAULT_SPACE)
        self.rng = generator_from(0)

    def test_sample_within_choices(self):
        config = self.space.sample(self.rng)
        for key, value in config.items():
            assert value in DEFAULT_SPACE[key]

    def test_mutate_changes_exactly_one(self):
        config = self.space.sample(self.rng)
        mutated = self.space.mutate(config, self.rng)
        diffs = [k for k in config if config[k] != mutated[k]]
        assert len(diffs) == 1

    def test_encode_one_hot(self):
        config = self.space.sample(self.rng)
        vec = self.space.encode(config)
        assert vec.sum() == len(DEFAULT_SPACE)
        assert set(np.unique(vec)) <= {0.0, 1.0}


class TestNasHistory:
    def test_best_per_generation_monotone(self):
        h = NasHistory(generation=[0, 0, 1, 1, 2], config=[{}] * 5,
                       score=[5.0, 4.0, 6.0, 3.0, 7.0])
        curve = h.best_per_generation()
        assert curve == [4.0, 3.0, 3.0]
        assert all(b <= a for a, b in zip(curve[:-1], curve[1:]))

    def test_improvements_count(self):
        h = NasHistory(generation=[0, 1, 2], config=[{}] * 3, score=[5.0, 4.0, 4.5])
        assert h.improvements() == 1


class TestAgingEvolution:
    def test_small_run(self):
        X, y = _toy_data(300, seed=2)
        nas = AgingEvolutionSearch(
            space={"hidden": ((4,), (8,)), "activation": ("relu",),
                   "learning_rate": (1e-3, 3e-3), "dropout": (0.0,), "weight_decay": (0.0,)},
            population=3, generations=3, epochs=4, seed=0,
        )
        nas.run(X[:200], y[:200], X[200:], y[200:])
        assert nas.best_config_ is not None
        assert np.isfinite(nas.best_score_)
        # history holds population + (generations-1)*population evaluations
        assert len(nas.history.score) == 3 + 2 * 3

    def test_top_configs_distinct(self):
        X, y = _toy_data(300, seed=2)
        nas = AgingEvolutionSearch(
            space={"hidden": ((4,), (8,)), "activation": ("relu",),
                   "learning_rate": (1e-3,), "dropout": (0.0,), "weight_decay": (0.0,)},
            population=3, generations=2, epochs=3, seed=0,
        )
        nas.run(X[:200], y[:200], X[200:], y[200:])
        top = nas.top_configs(2)
        assert 1 <= len(top) <= 2
        assert all(isinstance(c, dict) for c in top)


class TestAutoDeuq:
    def test_without_nas(self):
        X, y = _toy_data(400, seed=3)
        res = autodeuq(X[:250], y[:250], X[250:300], y[250:300], X[300:],
                       n_members=2, run_nas=False, epochs=5, seed=0)
        assert res.nas is None
        d = res.decomposition
        assert d.mean.shape == (100,)
        assert np.all(d.aleatory >= 0) and np.all(d.epistemic >= 0)

    def test_with_tiny_nas(self):
        X, y = _toy_data(300, seed=4)
        res = autodeuq(
            X[:200], y[:200], X[200:250], y[200:250], X[250:],
            n_members=2, epochs=4, seed=0,
            nas_kwargs=dict(
                space={"hidden": ((4,), (8,)), "activation": ("relu",),
                       "learning_rate": (1e-3,), "dropout": (0.0,), "weight_decay": (0.0,)},
                population=2, generations=2, epochs=3,
            ),
        )
        assert res.nas is not None
        assert len(res.ensemble.models_) <= 2
