"""Tests for the random forest, kNN regression, and novelty scores."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.forest import RandomForestRegressor
from repro.ml.neighbors import KNeighborsRegressor, knn_novelty


def _toy(n=400, d=6, seed=0, noise=0.05):
    rng = np.random.default_rng(seed)
    X = rng.normal(0.0, 1.0, (n, d))
    y = 1.5 * X[:, 0] - 0.8 * X[:, 1] ** 2 + 0.3 * X[:, 2] + rng.normal(0.0, noise, n)
    return X, y


class TestRandomForest:
    def test_fits_nonlinear_signal(self):
        X, y = _toy()
        model = RandomForestRegressor(n_estimators=60, random_state=1).fit(X, y)
        resid = model.predict(X) - y
        assert np.mean(np.abs(resid)) < 0.35

    def test_better_than_mean_on_holdout(self):
        X, y = _toy(n=800)
        model = RandomForestRegressor(n_estimators=80, random_state=3).fit(X[:600], y[:600])
        mae_model = np.mean(np.abs(model.predict(X[600:]) - y[600:]))
        mae_mean = np.mean(np.abs(y[600:] - y[:600].mean()))
        assert mae_model < 0.6 * mae_mean

    def test_oob_estimate_available_and_sane(self):
        X, y = _toy(n=500)
        model = RandomForestRegressor(n_estimators=60, random_state=0).fit(X, y)
        assert model.oob_mae_ is not None
        # OOB error should be in the ballpark of holdout error (not near 0)
        assert 0.05 < model.oob_mae_ < 1.0

    def test_no_bootstrap_no_oob(self):
        X, y = _toy(n=200)
        model = RandomForestRegressor(n_estimators=10, bootstrap=False).fit(X, y)
        assert model.oob_prediction_ is None

    def test_deterministic_given_seed(self):
        X, y = _toy()
        p1 = RandomForestRegressor(n_estimators=15, random_state=7).fit(X, y).predict(X[:20])
        p2 = RandomForestRegressor(n_estimators=15, random_state=7).fit(X, y).predict(X[:20])
        np.testing.assert_array_equal(p1, p2)

    def test_seed_changes_predictions(self):
        X, y = _toy()
        p1 = RandomForestRegressor(n_estimators=15, random_state=1).fit(X, y).predict(X[:50])
        p2 = RandomForestRegressor(n_estimators=15, random_state=2).fit(X, y).predict(X[:50])
        assert not np.allclose(p1, p2)

    def test_predict_dist_variance_nonnegative(self):
        X, y = _toy()
        model = RandomForestRegressor(n_estimators=25, random_state=0).fit(X, y)
        _, var = model.predict_dist(X[:50])
        assert np.all(var >= 0.0)

    def test_tree_disagreement_larger_off_distribution(self):
        X, y = _toy(n=600)
        model = RandomForestRegressor(n_estimators=60, random_state=0).fit(X, y)
        _, var_in = model.predict_dist(X[:100])
        X_far = X[:100] + 8.0  # way outside the training hull
        _, var_out = model.predict_dist(X_far)
        # binned trees clip extrapolation, but disagreement must not shrink
        assert np.median(var_out) >= 0.5 * np.median(var_in)

    def test_feature_importances_concentrate_on_signal(self):
        X, y = _toy(n=900)
        model = RandomForestRegressor(n_estimators=60, random_state=0).fit(X, y)
        imp = model.feature_importances(X.shape[1])
        assert imp.shape == (X.shape[1],)
        assert imp.sum() == pytest.approx(1.0)
        assert imp[:3].sum() > imp[3:].sum()

    def test_rejects_bad_max_features(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(max_features=0.0)

    def test_rejects_mismatched_rows(self):
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(np.zeros((10, 2)), np.zeros(9))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((3, 2)))


class TestKNeighbors:
    def test_recovers_local_signal(self):
        X, y = _toy(n=1200, noise=0.01)
        model = KNeighborsRegressor(n_neighbors=5).fit(X[:1000], y[:1000])
        mae = np.mean(np.abs(model.predict(X[1000:]) - y[1000:]))
        # 6-D brute-force kNN at n=1000: local averaging beats the mean
        # predictor (~1.3) clearly but cannot reach the noise floor
        assert mae < 0.7

    def test_exact_duplicate_queries_return_neighbor_mean(self):
        X = np.array([[0.0, 0.0], [0.0, 0.0], [10.0, 10.0]])
        y = np.array([1.0, 3.0, 100.0])
        model = KNeighborsRegressor(n_neighbors=2, standardize=False).fit(X, y)
        assert model.predict(np.array([[0.0, 0.0]]))[0] == pytest.approx(2.0)

    def test_distance_weighting_prefers_closer(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0.0, 1.0, 100.0])
        uni = KNeighborsRegressor(n_neighbors=2, weights="uniform", standardize=False).fit(X, y)
        dis = KNeighborsRegressor(n_neighbors=2, weights="distance", standardize=False).fit(X, y)
        q = np.array([[0.1]])
        assert dis.predict(q)[0] < uni.predict(q)[0]

    def test_k1_is_nearest_value(self):
        X, y = _toy(n=50)
        model = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(weights="gravity")

    def test_rejects_k_larger_than_train(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(n_neighbors=10).fit(np.zeros((5, 2)), np.zeros(5))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 6), st.integers(20, 60))
    def test_prediction_within_training_range(self, k, n):
        """kNN means can never extrapolate beyond the training target range."""
        rng = np.random.default_rng(k * 100 + n)
        X = rng.normal(0.0, 1.0, (n, 3))
        y = rng.normal(0.0, 1.0, n)
        model = KNeighborsRegressor(n_neighbors=k).fit(X, y)
        pred = model.predict(rng.normal(0.0, 2.0, (15, 3)))
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9


class TestKnnNovelty:
    def test_far_points_score_higher(self):
        rng = np.random.default_rng(0)
        X_train = rng.normal(0.0, 1.0, (500, 8))
        near = rng.normal(0.0, 1.0, (50, 8))
        far = rng.normal(6.0, 1.0, (50, 8))
        s_near = knn_novelty(X_train, near, k=5)
        s_far = knn_novelty(X_train, far, k=5)
        assert np.median(s_far) > 3.0 * np.median(s_near)

    def test_self_scoring_with_exclusion(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0.0, 1.0, (100, 4))
        with_self = knn_novelty(X, X, k=3, exclude_self=False)
        without_self = knn_novelty(X, X, k=3, exclude_self=True)
        assert np.all(without_self >= with_self - 1e-12)

    def test_duplicates_score_zero_without_exclusion(self):
        X = np.tile(np.arange(8.0).reshape(2, 4), (5, 1))  # 5 copies of 2 rows
        scores = knn_novelty(X, X[:2], k=3, standardize=False)
        np.testing.assert_allclose(scores, 0.0, atol=1e-9)

    def test_rejects_small_train(self):
        with pytest.raises(ValueError):
            knn_novelty(np.zeros((3, 2)), np.zeros((1, 2)), k=5)

    def test_scores_nonnegative_and_finite(self):
        rng = np.random.default_rng(2)
        X = rng.normal(0.0, 1.0, (200, 5))
        s = knn_novelty(X, rng.normal(0.0, 3.0, (40, 5)), k=4)
        assert np.all(np.isfinite(s)) and np.all(s >= 0.0)
