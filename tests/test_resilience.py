"""Resilience plane: breaker state machine, retry trajectories, supervisor.

Everything here runs against injected clocks, scripted fake clusters, and
seeded jitter streams — no worker processes, no wall time.  The pinned
contract is the ISSUE's determinism acceptance: retry/backoff/breaker/
supervisor trajectories are *pure functions* of the injected clock, the
seed, and the scripted failure schedule, so every scenario is asserted
twice — once for the expected behaviour, once that an identical replay
produces the identical trajectory.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.errors import CodedError, ErrorCode, code_of, coded
from repro.serve.monitor.policy import PolicyEngine
from repro.serve.registry import ModelRegistry
from repro.serve.resilience import CircuitBreaker, RetryController, ShardSupervisor
from repro.serve.shard import ShardCrashedError

pytestmark = [pytest.mark.serve, pytest.mark.faults]


class FakeClock:
    """Hand-cranked monotonic clock; ``sleep`` advances it and logs."""

    def __init__(self, t: float = 0.0):
        self.t = float(t)
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.t

    def sleep(self, dt: float) -> None:
        self.sleeps.append(dt)
        self.t += dt

    def advance(self, dt: float) -> None:
        self.t += dt


class FakeTicket:
    def __init__(self, shard_id: int, value=None, error=None):
        self.shard_id = shard_id
        self._value = value
        self._error = error

    def done(self) -> bool:
        return True

    def result(self, timeout=None):
        if self._error is not None:
            raise self._error
        return self._value


class ScriptedCluster:
    """Replays a scripted outcome per submit: a value or an exception."""

    def __init__(self, outcomes, route="hash", n_shards=1):
        self.outcomes = list(outcomes)
        self.route = route
        self.n_shards = n_shards
        self.submits = 0

    def shard_of(self, name: str) -> int:
        return 0

    def live_shards(self):
        return list(range(self.n_shards))

    def _next(self):
        out = self.outcomes[min(self.submits, len(self.outcomes) - 1)]
        self.submits += 1
        if isinstance(out, BaseException):
            return FakeTicket(0, error=out)
        return FakeTicket(0, value=out)

    def submit(self, name, row, kind="predict"):
        return self._next()

    def submit_block(self, name, X, kind="predict"):
        return self._next()


# --------------------------------------------------------------------- #
# circuit breaker
# --------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        br = CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0, clock=clock)
        for _ in range(2):
            br.record_failure()
        assert br.state == "closed"
        br.record_failure()
        assert br.state == "open"
        assert br.opens == 1

    def test_success_resets_the_consecutive_count(self):
        br = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"  # blips are not outages

    def test_open_refuses_until_reset_timeout(self):
        clock = FakeClock()
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0, clock=clock)
        br.record_failure()
        allowed, wait = br.try_acquire()
        assert not allowed and wait == pytest.approx(1.0)
        clock.advance(0.5)
        allowed, wait = br.try_acquire()
        assert not allowed and wait == pytest.approx(0.5)

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0, clock=clock)
        br.record_failure()
        clock.advance(1.0)
        assert br.try_acquire() == (True, 0.0)   # the probe
        assert br.state == "half_open"
        allowed, _ = br.try_acquire()            # concurrent second caller
        assert not allowed
        assert br.probes == 1

    def test_probe_success_closes(self):
        clock = FakeClock()
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0, clock=clock)
        br.record_failure()
        clock.advance(1.0)
        br.try_acquire()
        br.record_success()
        assert br.state == "closed"
        assert br.closes == 1
        assert br.try_acquire() == (True, 0.0)

    def test_probe_failure_reopens_for_a_full_timeout(self):
        clock = FakeClock()
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0, clock=clock)
        br.record_failure()
        clock.advance(1.0)
        br.try_acquire()
        br.record_failure()
        assert br.state == "open"
        assert br.opens == 2
        allowed, wait = br.try_acquire()
        assert not allowed and wait == pytest.approx(1.0)

    @settings(max_examples=100, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["fail", "ok", "acquire"]),
                st.floats(0.0, 0.3, allow_nan=False),
            ),
            max_size=60,
        ),
        threshold=st.integers(1, 5),
    )
    def test_state_machine_properties(self, ops, threshold):
        """Hypothesis drive: legal states, counter sanity, and bit-exact
        replay determinism under an identical injected-clock schedule."""
        def run():
            clock = FakeClock()
            br = CircuitBreaker(
                failure_threshold=threshold, reset_timeout_s=0.1, clock=clock
            )
            trajectory = []
            for op, dt in ops:
                clock.advance(dt)
                if op == "fail":
                    br.record_failure()
                elif op == "ok":
                    br.record_success()
                else:
                    br.try_acquire()
                state = br.state
                assert state in ("closed", "open", "half_open")
                if state == "closed":
                    assert br.consecutive_failures < threshold
                if op == "ok":
                    assert state == "closed"
                    assert br.consecutive_failures == 0
                assert br.closes <= br.opens  # every close needed an open
                trajectory.append((state, br.opens, br.probes, br.closes))
            return trajectory

        assert run() == run()  # pure function of the schedule


# --------------------------------------------------------------------- #
# retry controller
# --------------------------------------------------------------------- #
class TestRetryController:
    def _controller(self, cluster, clock, **kw):
        kw.setdefault("deadline_s", 10.0)
        kw.setdefault("base_delay_s", 0.01)
        kw.setdefault("max_delay_s", 0.25)
        kw.setdefault("jitter", 0.1)
        kw.setdefault("seed", 7)
        return RetryController(cluster, clock=clock, sleep=clock.sleep, **kw)

    def test_happy_path_never_retries(self):
        clock = FakeClock()
        cluster = ScriptedCluster([1.5])
        rc = self._controller(cluster, clock)
        assert rc.predict("m", np.zeros(3)) == 1.5
        s = rc.stats()
        assert (s.submits, s.retries, s.recovered) == (1, 0, 0)
        assert clock.sleeps == []

    def test_transient_failures_retry_then_recover(self):
        clock = FakeClock()
        cluster = ScriptedCluster(
            [ShardCrashedError("s0 died")] * 2 + [42.0]
        )
        rc = self._controller(cluster, clock, breaker_threshold=5)
        assert rc.predict("m", np.zeros(3)) == 42.0
        s = rc.stats()
        assert s.retries == 2 and s.recovered == 1 and s.failed_fast == 0
        assert cluster.submits == 3

    def test_backoff_schedule_is_seeded_and_exponential(self):
        clock = FakeClock()
        cluster = ScriptedCluster([ShardCrashedError("x")] * 3 + [1.0])
        rc = self._controller(cluster, clock, breaker_threshold=10)
        rc.predict("m", np.zeros(3))
        # reproduce the expected jittered exponential independently: the
        # ticket's stream is default_rng((seed, index)) with index 0
        rng = np.random.default_rng((7, 0))
        expected = []
        for attempt in range(3):
            delay = min(0.25, 0.01 * 2.0 ** attempt)
            expected.append(delay * (1.0 + 0.1 * (2.0 * rng.random() - 1.0)))
        assert clock.sleeps == pytest.approx(expected)

    def test_trajectory_is_a_pure_function_of_clock_and_seed(self):
        def run():
            clock = FakeClock()
            cluster = ScriptedCluster([ShardCrashedError("x")] * 4 + [9.0])
            rc = self._controller(cluster, clock, breaker_threshold=2)
            value = rc.predict("m", np.zeros(3))
            return value, clock.sleeps, rc.stats(), cluster.submits

        assert run() == run()

    def test_non_retryable_fails_fast_with_zero_resubmissions(self):
        clock = FakeClock()
        cluster = ScriptedCluster(
            [coded(ValueError("bad row"), ErrorCode.MALFORMED_REQUEST)]
        )
        rc = self._controller(cluster, clock)
        with pytest.raises(ValueError) as info:
            rc.predict("m", np.zeros(3))
        assert code_of(info.value) is ErrorCode.MALFORMED_REQUEST
        assert cluster.submits == 1      # zero retries
        assert clock.sleeps == []        # zero backoff waits
        assert rc.stats().failed_fast == 1

    def test_poisoned_probe_releases_the_half_open_breaker(self):
        # PR 9 chaos-harness regression: the half-open probe slot is
        # consumed by try_acquire but was only released by record_success
        # (ok) or record_failure (transient).  A probe that failed with a
        # NON-transient coded reply — a poisoned row's MALFORMED_REQUEST —
        # recorded neither, leaking the slot: the breaker wedged
        # half-open and every later hash-routed request spun in the gate
        # for its whole deadline before raising CIRCUIT_OPEN.  A coded
        # client reply comes from a live, scoring worker, so
        # availability-wise it must count as breaker success.
        clock = FakeClock()
        cluster = ScriptedCluster(
            [coded(ValueError("poison row"), ErrorCode.MALFORMED_REQUEST), 7.0]
        )
        rc = self._controller(cluster, clock, breaker_threshold=3,
                              breaker_reset_s=0.2)
        br = rc.breaker(0)
        for _ in range(3):
            br.record_failure()        # the kill storm opened the circuit
        assert br.state == "open"
        clock.advance(0.25)            # reset lapsed: next acquire probes
        with pytest.raises(ValueError) as info:
            rc.predict("m", np.zeros(3))   # the probe is the poisoned row
        assert code_of(info.value) is ErrorCode.MALFORMED_REQUEST
        assert br.state == "closed"    # pre-fix: stuck "half_open"
        assert rc.predict("m", np.zeros(3)) == 7.0
        assert rc.stats().breaker_probes == 1
        assert clock.sleeps == []      # and nobody spun in the gate

    def test_unclassified_internal_errors_are_not_blind_retried(self):
        clock = FakeClock()
        cluster = ScriptedCluster([RuntimeError("??")])
        rc = self._controller(cluster, clock)
        with pytest.raises(RuntimeError):
            rc.predict("m", np.zeros(3))
        assert cluster.submits == 1

    def test_deadline_budget_exhaustion_raises_the_last_error(self):
        clock = FakeClock()
        cluster = ScriptedCluster([ShardCrashedError("forever down")])
        rc = self._controller(cluster, clock, deadline_s=0.05,
                              breaker_threshold=1000)
        with pytest.raises(ShardCrashedError):
            rc.predict("m", np.zeros(3))
        assert rc.stats().exhausted == 1
        # the budget bounds total injected-clock spend
        assert sum(clock.sleeps) <= 0.05 + 1e-9

    def test_result_timeout_overrides_the_default_budget(self):
        clock = FakeClock()
        cluster = ScriptedCluster([ShardCrashedError("down")])
        rc = self._controller(cluster, clock, deadline_s=100.0,
                              breaker_threshold=1000)
        with pytest.raises(ShardCrashedError):
            rc.submit("m", np.zeros(3)).result(timeout=0.05)
        assert sum(clock.sleeps) <= 0.05 + 1e-9

    def test_breaker_opens_then_probe_recovers(self):
        clock = FakeClock()
        cluster = ScriptedCluster([ShardCrashedError("x")] * 3 + [5.0])
        rc = self._controller(cluster, clock, breaker_threshold=3,
                              breaker_reset_s=0.2)
        assert rc.predict("m", np.zeros(3)) == 5.0
        s = rc.stats()
        assert s.breaker_opens == 1   # 3 consecutive transient failures
        assert s.breaker_probes == 1  # the half-open trial
        assert s.breaker_closes == 1  # ... which succeeded
        assert rc.breaker(0).state == "closed"

    def test_open_breaker_with_no_budget_raises_circuit_open(self):
        clock = FakeClock()
        cluster = ScriptedCluster([ShardCrashedError("x")])
        rc = self._controller(cluster, clock, breaker_threshold=1,
                              breaker_reset_s=50.0)
        with pytest.raises(CodedError) as info:
            rc.predict("m", np.zeros(3), timeout=0.1)  # opens the breaker,
        assert info.value.code is ErrorCode.CIRCUIT_OPEN  # then budget dies
        with pytest.raises(CodedError) as info:           # waiting on it
            rc.predict("m", np.zeros(3), timeout=0.1)  # cannot wait 50s
        assert info.value.code is ErrorCode.CIRCUIT_OPEN
        assert cluster.submits == 1  # the open circuit blocked resubmission
        assert ErrorCode.CIRCUIT_OPEN.retryable  # a later call may succeed

    def test_replicated_route_skips_the_breaker_gate(self):
        clock = FakeClock()
        cluster = ScriptedCluster([ShardCrashedError("x"), 3.0],
                                  route="replicated")
        rc = self._controller(cluster, clock, breaker_threshold=1)
        # shard 0's breaker opens on the failure, but replicated routing
        # re-routes inside the cluster — the gate must not block resubmits
        assert rc.predict("m", np.zeros(3)) == 3.0
        assert rc.stats().recovered == 1

    def test_ticket_settles_once_and_replays_from_cache(self):
        clock = FakeClock()
        cluster = ScriptedCluster([2.0, 99.0])
        rc = self._controller(cluster, clock)
        t = rc.submit("m", np.zeros(3))
        assert t.result() == 2.0
        assert t.result() == 2.0  # no resubmission
        assert cluster.submits == 1
        assert t.done()

    def test_submit_block_validates_shape(self):
        rc = self._controller(ScriptedCluster([0.0]), FakeClock())
        with pytest.raises(CodedError) as info:
            rc.submit_block("m", np.zeros((2, 2, 2)))
        assert info.value.code is ErrorCode.MALFORMED_REQUEST


# --------------------------------------------------------------------- #
# shard supervisor
# --------------------------------------------------------------------- #
class FlakyCluster:
    """Liveness stub: tests flip shards dead; respawn revives (or fails)."""

    def __init__(self, n_shards=2, fail_respawns=0):
        self.n_shards = n_shards
        self.alive = {i: True for i in range(n_shards)}
        self.fail_respawns = fail_respawns  # first N respawn calls raise
        self.respawn_calls: list[list[int]] = []

    def live_shards(self):
        return [i for i, a in self.alive.items() if a]

    def kill(self, shard_id):
        self.alive[shard_id] = False

    def respawn(self, shard_ids):
        self.respawn_calls.append(list(shard_ids))
        if self.fail_respawns > 0:
            self.fail_respawns -= 1
            raise RuntimeError("spawn refused")
        n = 0
        for i in shard_ids:
            if not self.alive[i]:
                self.alive[i] = True
                n += 1
        return n


class TestShardSupervisor:
    def _supervisor(self, cluster, clock, **kw):
        kw.setdefault("backoff_base_s", 0.05)
        kw.setdefault("backoff_max_s", 0.4)
        kw.setdefault("stability_window_s", 1.0)
        return ShardSupervisor(cluster, clock=clock, **kw)

    def test_healthy_cluster_emits_nothing(self):
        sup = self._supervisor(FlakyCluster(), FakeClock())
        assert sup.step() == []
        assert sup.stats().respawns == 0

    def test_dead_shard_is_detected_and_respawned(self):
        clock = FakeClock()
        cluster = FlakyCluster()
        sup = self._supervisor(cluster, clock)
        cluster.kill(1)
        events = sup.step()
        assert [e.action for e in events] == ["alert", "respawn"]
        assert events[0].code is ErrorCode.SHARD_CRASHED
        assert events[0].name == "shard:1"
        assert cluster.live_shards() == [0, 1]
        assert sup.stats().respawns == 1

    def test_respawn_storm_backs_off_exponentially(self):
        clock = FakeClock()
        cluster = FlakyCluster()
        sup = self._supervisor(cluster, clock)
        respawn_times = []
        cluster.kill(0)
        for _ in range(200):  # step far more often than respawns happen
            before = len(cluster.respawn_calls)
            sup.step()
            if len(cluster.respawn_calls) > before:
                respawn_times.append(clock.t)
                cluster.kill(0)  # it dies right back: a storm
            clock.advance(0.01)
        gaps = np.diff(respawn_times)
        # consecutive respawns of the same shard wait base * 2**(n-1),
        # capped — the schedule the docstring promises (0.01 step quantum)
        expected = [0.05, 0.1, 0.2, 0.4, 0.4, 0.4]
        assert gaps[: len(expected)] == pytest.approx(expected, abs=0.011)

    def test_stability_resets_the_storm_counter(self):
        clock = FakeClock()
        cluster = FlakyCluster()
        sup = self._supervisor(cluster, clock)
        cluster.kill(0)
        sup.step()                     # respawn #1, immediate
        cluster.kill(0)
        clock.advance(0.05)
        sup.step()                     # respawn #2 after base backoff
        assert len(cluster.respawn_calls) == 2
        clock.advance(2.0)             # stays up past stability_window_s
        sup.step()                     # observes stability, resets count
        cluster.kill(0)
        t0 = clock.t
        sup.step()                     # a fresh death respawns immediately
        assert len(cluster.respawn_calls) == 3
        assert clock.t == t0

    def test_respawn_failure_is_a_coded_event(self):
        clock = FakeClock()
        cluster = FlakyCluster(fail_respawns=1)
        sup = self._supervisor(cluster, clock)
        cluster.kill(1)
        events = sup.step()
        assert [e.action for e in events] == ["alert", "alert-failed"]
        assert events[1].code is ErrorCode.RESPAWN_FAILED
        assert sup.stats().respawn_failures == 1
        clock.advance(0.05)            # failed attempt backs off too
        events = sup.step()
        assert [e.action for e in events] == ["respawn"]
        assert cluster.live_shards() == [0, 1]

    def test_event_stream_is_deterministic_under_replay(self):
        def run():
            clock = FakeClock()
            cluster = FlakyCluster(fail_respawns=2)
            sup = self._supervisor(cluster, clock)
            stream = []
            for i in range(120):
                if i in (3, 40, 41):
                    cluster.kill(i % 2)
                stream.extend(
                    (e.at, e.name, e.action, e.code) for e in sup.step()
                )
                clock.advance(0.02)
            return stream

        first = run()
        assert first == run()
        assert any(action == "alert-failed" for _, _, action, _ in first)
        assert any(action == "respawn" for _, _, action, _ in first)

    def test_events_land_in_the_policy_engine_audit_trail(self):
        clock = FakeClock()
        cluster = FlakyCluster()
        policy = PolicyEngine(ModelRegistry(), clock=clock)
        sup = self._supervisor(cluster, clock, policy=policy)
        cluster.kill(0)
        sup.step()
        actions = [e.action for e in policy.events]
        assert actions == ["alert", "respawn"]
        assert policy.events[0].code is ErrorCode.SHARD_CRASHED
        assert policy.events[0].rule == ShardSupervisor.RULE

    def test_backoff_for_schedule(self):
        sup = self._supervisor(FlakyCluster(), FakeClock())
        assert sup.backoff_for(0) == 0.0
        assert [sup.backoff_for(n) for n in (1, 2, 3, 4, 5)] == \
            pytest.approx([0.05, 0.1, 0.2, 0.4, 0.4])
