"""Property suite for the AIMD batch tuner (hypothesis, injected clock).

The tuner runs unattended for the lifetime of a serving process, steering
live batcher limits from whatever counter deltas traffic produces — so its
safety properties must hold for *arbitrary* latency histories, not just
the friendly ones unit tests pick.  Everything here drives
:meth:`AdaptiveBatchTuner.step` against fake batchers under a fake clock:
no sleeps, no threads, fully deterministic shrinking.

Properties:

* limits stay inside the configured clamp bounds after every window,
* an over-target window backs off monotonically (never raises a limit),
* an at/under-target window never lowers a limit,
* a zero-completion window holds exactly (no latency evidence, no move),
* the whole trajectory is a pure function of the window sequence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.adaptive import AdaptiveBatchTuner

pytestmark = [pytest.mark.serve, pytest.mark.gateway]

BATCH_BOUNDS = (8, 1024)
DELAY_BOUNDS = (2e-4, 0.05)
TARGET_MS = 5.0


class FakeBatcher:
    """Counter source shaped like a MicroBatcher, driven by the test."""

    def __init__(self, max_batch=64, max_delay=0.005):
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.completed = 0
        self.total_latency_s = 0.0
        self.set_limit_calls = 0

    def advance(self, completed_delta: int, latency_delta_s: float) -> None:
        self.completed += completed_delta
        self.total_latency_s += latency_delta_s

    def counters(self) -> dict:
        return {"completed": self.completed, "total_latency_s": self.total_latency_s}

    def set_limits(self, max_batch=None, max_delay=None) -> None:
        # same validation contract as the real batcher
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay is not None and max_delay <= 0:
            raise ValueError("max_delay must be > 0")
        if max_batch is not None:
            self.max_batch = int(max_batch)
        if max_delay is not None:
            self.max_delay = float(max_delay)
        self.set_limit_calls += 1


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _tuner(batcher, clock, **kw):
    kw.setdefault("target_latency_ms", TARGET_MS)
    kw.setdefault("batch_bounds", BATCH_BOUNDS)
    kw.setdefault("delay_bounds", DELAY_BOUNDS)
    return AdaptiveBatchTuner({"m": batcher}, clock=clock, **kw)


# one window = (completed requests, summed latency seconds); zero-completion
# windows and absurd latencies are the interesting corners, so both appear
windows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2000),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=30,
)

start_limits = st.tuples(
    st.integers(min_value=BATCH_BOUNDS[0], max_value=BATCH_BOUNDS[1]),
    st.floats(min_value=DELAY_BOUNDS[0], max_value=DELAY_BOUNDS[1]),
)


def _run(seq, start):
    """Drive one tuner over a window sequence; yield per-window evidence."""
    batcher = FakeBatcher(*start)
    clock = FakeClock()
    tuner = _tuner(batcher, clock)
    tuner.step()  # first observation only snapshots counters
    trace = []
    for completed, latency_s in seq:
        before = (batcher.max_batch, batcher.max_delay)
        batcher.advance(completed, latency_s)
        clock.now += 1.0
        decisions = tuner.step()
        assert len(decisions) == 1
        trace.append((before, (batcher.max_batch, batcher.max_delay), decisions[0]))
    return trace


@settings(max_examples=120, deadline=None)
@given(seq=windows, start=start_limits)
def test_limits_always_within_clamp_bounds(seq, start):
    for _before, after, _decision in _run(seq, start):
        assert BATCH_BOUNDS[0] <= after[0] <= BATCH_BOUNDS[1]
        assert DELAY_BOUNDS[0] <= after[1] <= DELAY_BOUNDS[1]


@settings(max_examples=120, deadline=None)
@given(seq=windows, start=start_limits)
def test_aimd_direction_is_monotone_per_window(seq, start):
    """Over target may only shrink the limits; at/under target may only
    grow them; the recorded direction matches the observed window."""
    for before, after, decision in _run(seq, start):
        if decision.window_completed == 0:
            continue
        if decision.window_latency_ms > TARGET_MS:
            assert decision.direction == "backoff"
            assert after[0] <= before[0]
            assert after[1] <= before[1]
        else:
            assert decision.direction == "grow"
            assert after[0] >= before[0]
            assert after[1] >= before[1]


@settings(max_examples=120, deadline=None)
@given(seq=windows, start=start_limits)
def test_sustained_overload_converges_to_lower_bounds(seq, start):
    """However the history starts, a long run of over-target windows walks
    both limits down to the clamp floor (backoff is multiplicative, so the
    descent is geometric — 40 windows is far more than enough)."""
    batcher = FakeBatcher(*start)
    clock = FakeClock()
    tuner = _tuner(batcher, clock)
    tuner.step()
    for completed, latency_s in seq:
        batcher.advance(completed, latency_s)
        clock.now += 1.0
        tuner.step()
    for _ in range(40):
        batcher.advance(100, 100 * (10 * TARGET_MS / 1e3))  # 10x over target
        clock.now += 1.0
        tuner.step()
    assert batcher.max_batch == BATCH_BOUNDS[0]
    assert batcher.max_delay == pytest.approx(DELAY_BOUNDS[0])


@settings(max_examples=120, deadline=None)
@given(seq=windows, start=start_limits)
def test_zero_completion_windows_hold(seq, start):
    for before, after, decision in _run(seq, start):
        if decision.window_completed == 0:
            assert decision.direction == "hold"
            assert after == before


@settings(max_examples=60, deadline=None)
@given(seq=windows, start=start_limits)
def test_trajectory_is_deterministic(seq, start):
    """Two fresh tuners fed the same windows make identical decisions —
    the controller reads nothing but the injected clock and counters."""
    t1 = _run(seq, start)
    t2 = _run(seq, start)
    assert [(b, a) for b, a, _ in t1] == [(b, a) for b, a, _ in t2]
    for (_, _, d1), (_, _, d2) in zip(t1, t2):
        assert (d1.direction, d1.max_batch, d1.max_delay, d1.window_completed) == (
            d2.direction, d2.max_batch, d2.max_delay, d2.window_completed
        )


@settings(max_examples=60, deadline=None)
@given(seq=windows, start=start_limits)
def test_hold_windows_write_nothing(seq, start):
    """A hold must not even call set_limits — a no-op write would still
    take the live batcher's queue lock under traffic."""
    batcher = FakeBatcher(*start)
    clock = FakeClock()
    tuner = _tuner(batcher, clock)
    tuner.step()
    for completed, latency_s in seq:
        calls_before = batcher.set_limit_calls
        batcher.advance(completed, latency_s)
        clock.now += 1.0
        (decision,) = tuner.step()
        if decision.direction == "hold":
            assert batcher.set_limit_calls == calls_before
