"""Property tests of fa(j): the idle-system application-performance model.

These pin the qualitative physics the paper's analysis rests on: I/O gets
slower with tiny transfers, random access, unaligned writes, shared-file
lock contention and metadata pressure — the broad application behaviours
§VI calls "predictable and explainable" (e.g. "this application is slow
because it frequently writes to shared files").
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import theta_config
from repro.simulator.iomodel import ideal_log_throughput, ideal_throughput_mibps
from repro.simulator.platform import Platform


@pytest.fixture(scope="module")
def platform():
    return Platform(theta_config().platform)


def _base(n=1, **over):
    params = {
        "nprocs": np.full(n, 256.0),
        "total_bytes": np.full(n, 1024.0**4),
        "read_frac": np.full(n, 0.3),
        "xfer_read": np.full(n, 2.0**20),
        "xfer_write": np.full(n, 2.0**20),
        "shared_frac": np.full(n, 0.2),
        "files_per_proc": np.ones(n),
        "shared_files": np.ones(n),
        "meta_per_gib": np.full(n, 1.0),
        "seq_frac": np.full(n, 0.9),
        "aligned_frac": np.full(n, 0.8),
        "collective_frac": np.zeros(n),
        "fsync_per_gib": np.full(n, 0.1),
    }
    params.update({k: np.asarray(v, dtype=float) for k, v in over.items()})
    return params


class TestMonotonicity:
    def test_larger_transfers_never_slower(self, platform):
        sizes = 2.0 ** np.arange(12, 25)
        tp = ideal_throughput_mibps(
            platform, _base(n=sizes.size, xfer_read=sizes, xfer_write=sizes)
        )
        assert np.all(np.diff(tp) >= -1e-9)

    def test_sequential_never_slower_than_random(self, platform):
        seq = ideal_throughput_mibps(platform, _base(seq_frac=1.0))
        rnd = ideal_throughput_mibps(platform, _base(seq_frac=0.0))
        assert seq > rnd

    def test_aligned_never_slower(self, platform):
        ali = ideal_throughput_mibps(platform, _base(aligned_frac=1.0))
        una = ideal_throughput_mibps(platform, _base(aligned_frac=0.0))
        assert ali > una

    def test_shared_file_writes_pay_lock_penalty(self, platform):
        fpp = ideal_throughput_mibps(platform, _base(shared_frac=0.0, read_frac=0.0))
        n1 = ideal_throughput_mibps(platform, _base(shared_frac=1.0, read_frac=0.0))
        assert n1 < fpp

    def test_metadata_pressure_slows_io(self, platform):
        light = ideal_throughput_mibps(platform, _base(meta_per_gib=0.1))
        heavy = ideal_throughput_mibps(platform, _base(meta_per_gib=1000.0))
        assert heavy < light

    def test_more_processes_help_until_saturation(self, platform):
        nprocs = 2.0 ** np.arange(0, 14)
        tp = ideal_throughput_mibps(platform, _base(n=nprocs.size, nprocs=nprocs))
        assert np.all(np.diff(tp) >= -1e-6)      # monotone non-decreasing
        # but saturating: the last doubling gains far less than the first
        first_gain = tp[1] / tp[0]
        last_gain = tp[-1] / tp[-2]
        assert last_gain < 0.6 * first_gain


class TestCollectiveBuffering:
    def test_collective_rescues_small_unaligned_writes(self, platform):
        bad = _base(xfer_write=2.0**12, aligned_frac=0.0, seq_frac=0.2, read_frac=0.0)
        plain = ideal_throughput_mibps(platform, bad)
        coll = ideal_throughput_mibps(platform, {**bad, "collective_frac": np.ones(1)})
        assert coll > 1.5 * plain

    def test_collective_neutral_for_large_sequential(self, platform):
        good = _base(xfer_write=2.0**23, aligned_frac=1.0, seq_frac=1.0, read_frac=0.0)
        plain = ideal_throughput_mibps(platform, good)
        coll = ideal_throughput_mibps(platform, {**good, "collective_frac": np.ones(1)})
        assert coll == pytest.approx(plain, rel=0.35)


class TestScaleInvariances:
    def test_throughput_is_rate_not_volume(self, platform):
        """fa must be (nearly) invariant to problem size (throughput is a rate)."""
        small = ideal_throughput_mibps(platform, _base(total_bytes=64 * 1024.0**3))
        large = ideal_throughput_mibps(platform, _base(total_bytes=16 * 1024.0**4))
        assert small == pytest.approx(large, rel=0.05)

    def test_log_form_consistent(self, platform):
        params = _base(n=5, nprocs=[16, 64, 256, 1024, 4096])
        np.testing.assert_allclose(
            ideal_log_throughput(platform, params),
            np.log10(ideal_throughput_mibps(platform, params)),
        )

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(1.0, 8192.0),
        st.floats(2.0**9, 2.0**25),
        st.floats(0.0, 1.0),
        st.floats(0.0, 1.0),
    )
    def test_always_positive_and_below_peak(self, nprocs, xfer, shared, seq):
        platform = Platform(theta_config().platform)
        tp = ideal_throughput_mibps(
            platform,
            _base(nprocs=nprocs, xfer_read=xfer, xfer_write=xfer,
                  shared_frac=shared, seq_frac=seq),
        )
        peak = max(platform.config.peak_read_mibps, platform.config.peak_write_mibps)
        assert 0.0 < tp[0] <= peak * 1.01
