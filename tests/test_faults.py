"""Fault injection against the *real* serve stack.

Where ``test_resilience.py`` pins trajectories against scripted stubs and
injected clocks, this suite breaks real components: micro-batcher slots
abandoned by timed-out callers, worker pipes that snap mid-send, and
worker processes hard-killed while requests are in flight.  The
acceptance contract (ISSUE 6): with a :class:`RetryController` in front
and a :class:`ShardSupervisor` respawning the dead, every retryable
request completes bit-identical to a direct predict — zero client-visible
``ShardCrashedError`` — while malformed requests fail fast with a 4xx
code and zero retries, and nothing ever hangs or answers twice.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.serve import (
    ErrorCode,
    MicroBatcher,
    ModelRegistry,
    RetryController,
    ShardSupervisor,
    ShardedServingCluster,
    code_of,
)
from repro.serve.shard import ShardCrashedError
from repro.serve.transport import TransportError

pytestmark = [pytest.mark.serve, pytest.mark.faults]


def _data(n=600, d=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, d))
    y = np.sin(2 * X[:, 0]) + X[:, 1] * X[:, 2] + 0.05 * rng.normal(0, 1, n)
    return X, y


@pytest.fixture(scope="module")
def forest():
    X, y = _data()
    return RandomForestRegressor(n_estimators=20, max_depth=8, random_state=1).fit(X, y)


@pytest.fixture(scope="module")
def registry(forest):
    reg = ModelRegistry()
    reg.register("forest", forest, promote=True)
    return reg


# --------------------------------------------------------------------- #
# micro-batcher: abandoned tickets must not leak queue slots
# --------------------------------------------------------------------- #
class TestAbandonedTickets:
    def test_timed_out_result_tombstones_the_pending_entry(self, forest):
        row = _data(n=1, seed=3)[0][0]
        # max_delay huge and batch far from full: nothing will ever flush
        with MicroBatcher(forest, max_batch=10_000, max_delay=600.0) as mb:
            t = mb.submit(row)
            with pytest.raises(TimeoutError) as info:
                t.result(timeout=0.01)
            assert code_of(info.value) is ErrorCode.DEADLINE_EXCEEDED
            assert mb.counters()["abandoned"] == 1
            assert mb._pending == [] and mb._pending_rows == 0  # slot freed

    def test_abandoned_slot_does_not_wedge_later_traffic(self, forest):
        rows = _data(n=8, seed=4)[0]
        with MicroBatcher(forest, max_batch=10_000, max_delay=600.0) as mb:
            dead = mb.submit(rows[0])
            with pytest.raises(TimeoutError):
                dead.result(timeout=0.01)
            live = [mb.submit(r) for r in rows[1:]]
            mb.flush()
            got = np.array([t.result(timeout=20.0) for t in live])
            ref = np.array([forest.predict(r[None, :])[0] for r in rows[1:]])
            assert np.array_equal(got, ref)
            # the dead ticket stays dead: its answer was never computed
            with pytest.raises(TimeoutError):
                dead.result(timeout=0.0)
            assert mb.counters()["abandoned"] == 1

    def test_abandonment_storm_leaks_no_rows(self, forest):
        rows = _data(n=32, seed=5)[0]
        with MicroBatcher(forest, max_batch=10_000, max_delay=600.0) as mb:
            for r in rows:
                with pytest.raises(TimeoutError):
                    mb.submit(r).result(timeout=0.0)
            assert mb.counters()["abandoned"] == len(rows)
            assert mb._pending == [] and mb._pending_rows == 0
            assert mb.flush() == 0  # nothing left to flush

    def test_flush_wins_the_race_against_abandonment(self, forest):
        """A ticket drained by flush before ``_abandon`` runs keeps its
        real answer; the tombstone path is a no-op."""
        row = _data(n=1, seed=6)[0][0]
        with MicroBatcher(forest, max_batch=10_000, max_delay=600.0) as mb:
            t = mb.submit(row)
            mb.flush()
            value = t.result(timeout=20.0)
            mb._abandon(t)  # late abandon: caller's timer fired anyway
            assert t.result(timeout=0.0) == value  # answer unchanged
            assert mb.counters()["abandoned"] == 0

    def test_concurrent_abandoners_and_flushers(self, forest):
        """Half the callers give up with tiny timeouts while a flusher
        hammers; every ticket either carries its bit-exact answer or a
        DEADLINE_EXCEEDED — and no pending row survives."""
        rows = _data(n=64, seed=7)[0]
        with MicroBatcher(forest, max_batch=8, max_delay=0.002) as mb:
            outcomes: list[tuple[int, object]] = []
            lock = threading.Lock()

            def caller(i):
                t = mb.submit(rows[i])
                try:
                    v = t.result(timeout=0.001 if i % 2 else 20.0)
                except TimeoutError as exc:
                    v = code_of(exc)
                with lock:
                    outcomes.append((i, v))

            threads = [threading.Thread(target=caller, args=(i,)) for i in range(len(rows))]
            for th in threads:
                th.start()
            for th in threads:
                th.join(timeout=30.0)
            assert len(outcomes) == len(rows)  # nobody hung
            direct = [forest.predict(r[None, :])[0] for r in rows]
            for i, v in outcomes:
                if isinstance(v, ErrorCode):
                    assert v is ErrorCode.DEADLINE_EXCEEDED
                else:
                    assert v == direct[i]
            mb.flush()
            assert mb._pending == [] and mb._pending_rows == 0


# --------------------------------------------------------------------- #
# replicated routing: dead shards must never be picked
# --------------------------------------------------------------------- #
class _SnappedTransport:
    """A transport whose sends fail like a worker that died this instant —
    before the reader thread has noticed and flipped ``alive``."""

    def __init__(self, inner):
        self._inner = inner

    def send(self, msg):
        raise TransportError("worker went away mid-send")

    def __getattr__(self, attr):
        return getattr(self._inner, attr)


class TestReplicatedRouting:
    def test_round_robin_skips_shards_that_snap_at_send_time(self, registry):
        """Regression: round-robin used to hand requests to a shard whose
        pipe was already broken, erroring the ticket instead of rerouting.
        ``alive`` is still True here — only the send itself fails."""
        rows = _data(n=12, seed=8)[0]
        with ShardedServingCluster(
            registry, n_shards=2, route="replicated", max_batch=16, max_delay=0.005
        ) as cluster:
            victim = cluster._shards[0]
            victim.transport = _SnappedTransport(victim.transport)
            tickets = [cluster.submit("forest", r) for r in rows]
            cluster.flush()
            got = np.array([t.result(timeout=20.0) for t in tickets])
            model = registry.get("forest")
            ref = np.array([model.predict(r[None, :])[0] for r in rows])
            assert np.array_equal(got, ref)
            assert not victim.alive  # the failed send marked it dead

    def test_round_robin_skips_known_dead_shards(self, registry):
        rows = _data(n=12, seed=9)[0]
        with ShardedServingCluster(
            registry, n_shards=3, route="replicated", max_batch=16, max_delay=0.005
        ) as cluster:
            cluster.kill_shard(1)
            deadline = time.monotonic() + 10.0
            while 1 in cluster.live_shards() and time.monotonic() < deadline:
                time.sleep(0.005)
            tickets = [cluster.submit("forest", r) for r in rows]
            cluster.flush()
            got = np.array([t.result(timeout=20.0) for t in tickets])
            model = registry.get("forest")
            ref = np.array([model.predict(r[None, :])[0] for r in rows])
            assert np.array_equal(got, ref)
            for t in tickets:
                assert t.shard_id != 1

    def test_all_shards_dead_yields_a_coded_error_not_a_hang(self, registry):
        with ShardedServingCluster(
            registry, n_shards=2, route="replicated", max_batch=16, max_delay=0.005
        ) as cluster:
            for sid in (0, 1):
                cluster.kill_shard(sid)
            deadline = time.monotonic() + 10.0
            while cluster.live_shards() and time.monotonic() < deadline:
                time.sleep(0.005)
            t = cluster.submit("forest", np.zeros(6))
            with pytest.raises(ShardCrashedError) as info:
                t.result(timeout=5.0)
            assert code_of(info.value) is ErrorCode.SHARD_CRASHED
            assert code_of(info.value).retryable

    def test_block_split_counts_only_live_shards(self, registry):
        X = _data(n=40, seed=10)[0]
        with ShardedServingCluster(
            registry, n_shards=3, route="replicated", max_batch=64, max_delay=0.005
        ) as cluster:
            cluster.kill_shard(2)
            deadline = time.monotonic() + 10.0
            while 2 in cluster.live_shards() and time.monotonic() < deadline:
                time.sleep(0.005)
            t = cluster.submit_block("forest", X)
            got = t.result(timeout=20.0)
            # two live shards -> two chunks; bit-identity is pinned against
            # the same chunk composition the cluster scored
            model = registry.get("forest")
            ref = np.concatenate([model.predict(c) for c in np.array_split(X, 2)])
            assert np.array_equal(got, ref)


# --------------------------------------------------------------------- #
# the acceptance soak: kill-during-flight with retry + supervision
# --------------------------------------------------------------------- #
class TestKillDuringFlightSoak:
    @pytest.mark.parametrize("route", ["replicated", "hash"])
    def test_every_request_recovers_bit_identical(self, registry, route):
        """Hard-kill workers while a request stream is in flight.  With
        retry + supervision, *every* request must come back bit-identical
        to a direct predict — the client never sees ShardCrashedError on
        a retryable route, and nothing hangs."""
        rows = _data(n=150, seed=11)[0]
        direct = np.array([registry.get("forest").predict(r[None, :])[0] for r in rows])
        with ShardedServingCluster(
            registry, n_shards=2, route=route, max_batch=16, max_delay=0.002,
            cache_entries=1,
        ) as cluster:
            retry = RetryController(
                cluster, deadline_s=60.0, base_delay_s=0.01, max_delay_s=0.1,
                seed=0, breaker_threshold=3, breaker_reset_s=0.05,
            )
            with ShardSupervisor(
                cluster, check_interval_s=0.01, backoff_base_s=0.02,
                backoff_max_s=0.2, stability_window_s=0.5,
            ) as sup:
                sup.start()
                tickets, got = [], []
                for i, row in enumerate(rows):
                    tickets.append(retry.submit("forest", row))
                    if i in (20, 60, 100):  # storms mid-flight
                        victims = cluster.live_shards()
                        if victims:
                            cluster.kill_shard(victims[i % len(victims)])
                    if len(tickets) >= 30:
                        got.extend(t.result(timeout=60.0) for t in tickets)
                        tickets.clear()
                got.extend(t.result(timeout=60.0) for t in tickets)
            assert np.array_equal(np.array(got), direct)
            s = retry.stats()
            assert s.submits >= len(rows)
            assert s.exhausted == 0 and s.failed_fast == 0
            assert sup.stats().respawns >= 1  # the supervisor did the healing

    def test_malformed_requests_fail_fast_during_the_storm(self, registry):
        """Client errors are never retried — even while shards are dying
        and the controller is busy recovering everyone else."""
        with ShardedServingCluster(
            registry, n_shards=2, route="replicated", max_batch=16,
            max_delay=0.002,
        ) as cluster:
            retry = RetryController(cluster, deadline_s=30.0, seed=0)
            with ShardSupervisor(cluster, check_interval_s=0.01):
                cluster.kill_shard(cluster.live_shards()[0])
                before = retry.stats()
                with pytest.raises(ValueError) as info:
                    retry.predict("forest", np.zeros((2, 2, 2)))
                assert code_of(info.value) is ErrorCode.MALFORMED_REQUEST
                with pytest.raises(LookupError) as info:
                    retry.predict("no-such-model", np.zeros(6))
                assert code_of(info.value) is ErrorCode.UNKNOWN_MODEL
                after = retry.stats()
                assert after.retries == before.retries       # zero retries
                assert after.failed_fast - before.failed_fast == 2

    def test_no_duplicate_scoring_under_retry(self, registry):
        """Settled tickets replay from cache: draining results twice after
        a kill storm resubmits nothing and returns identical arrays."""
        rows = _data(n=30, seed=12)[0]
        with ShardedServingCluster(
            registry, n_shards=2, route="replicated", max_batch=16,
            max_delay=0.002,
        ) as cluster:
            retry = RetryController(cluster, deadline_s=60.0, seed=0)
            with ShardSupervisor(cluster, check_interval_s=0.01):
                tickets = [retry.submit("forest", r) for r in rows]
                cluster.kill_shard(cluster.live_shards()[0])
                first = np.array([t.result(timeout=60.0) for t in tickets])
                submits_after_drain = retry.stats().submits
                second = np.array([t.result(timeout=60.0) for t in tickets])
                assert retry.stats().submits == submits_after_drain
            assert np.array_equal(first, second)
            model = registry.get("forest")
            ref = np.array([model.predict(r[None, :])[0] for r in rows])
            assert np.array_equal(first, ref)
