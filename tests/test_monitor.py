"""Tests for the online error-source monitoring plane (repro.serve.monitor).

The plane's load-bearing contracts, in test form:

* **observational** — a monitored gateway/cluster returns bit-identical
  (``np.array_equal``) results to an unmonitored one, even with a tap
  that raises on every call;
* **bounded memory** — ring-buffer windows clamp at their capacity;
* **deterministic** — detection depends only on the observed sequence
  (evaluation cadence counts rows, the injected clock only stamps
  events and drives cooldowns);
* **actionable** — rule firings execute through the registry's normal
  stage-change path, so an auto-rollback propagates to a sharded
  cluster's every worker, ack-gated, exactly like an operator's call.
"""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.uncertainty import epistemic_sample
from repro.serve import (
    EuQuantileRule,
    ModelRegistry,
    MonitoringPlane,
    PolicyEngine,
    PsiThresholdRule,
    ServingGateway,
    ShadowScorer,
    ShadowWinnerRule,
    ShardedServingCluster,
    StreamProfile,
    UncertaintyTap,
)
from repro.serve.monitor import NameState

pytestmark = [pytest.mark.serve, pytest.mark.monitor]


def _data(n=400, d=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, d))
    y = 2 * X[:, 0] + np.sin(X[:, 1]) + 0.05 * rng.normal(0, 1, n)
    return X, y


def _forest(X, y, seed=0, trees=25):
    return RandomForestRegressor(
        n_estimators=trees, max_depth=8, random_state=seed
    ).fit(X, y)


@pytest.fixture(scope="module")
def setup():
    X, y = _data()
    m1 = _forest(X, y, seed=0)
    m2 = _forest(X, y, seed=1)
    return X, y, m1, m2


def _registry(setup, reference=True):
    X, y, m1, m2 = setup
    reg = ModelRegistry()
    v1 = reg.register("m", m1, promote=True)
    if reference:
        reg.set_reference("m", X, eu=epistemic_sample(m1, X))
    v2 = reg.register("m", m2)
    return reg, v1, v2


# ---------------------------------------------------------------------- #
# registry reference snapshots
# ---------------------------------------------------------------------- #
class TestReferenceSnapshot:
    def test_set_get_and_freeze(self, setup):
        X, y, m1, _ = setup
        reg = ModelRegistry()
        reg.register("m", m1, promote=True)
        ref = reg.set_reference("m", X, eu=np.ones(10), names=[f"c{i}" for i in range(X.shape[1])])
        assert not ref.X.flags.writeable and not ref.eu.flags.writeable
        got = reg.get_reference("m")
        assert got is ref
        assert got.names == tuple(f"c{i}" for i in range(X.shape[1]))
        # the stored X is a private copy, not the caller's array
        assert got.X is not X

    def test_unknown_name_refused(self):
        reg = ModelRegistry()
        with pytest.raises(LookupError):
            reg.set_reference("ghost", np.zeros((10, 2)))
        with pytest.raises(LookupError):
            reg.get_reference("ghost")

    def test_none_until_set(self, setup):
        X, y, m1, _ = setup
        reg = ModelRegistry()
        reg.register("m", m1, promote=True)
        assert reg.get_reference("m") is None

    def test_listener_notified(self, setup):
        X, y, m1, _ = setup
        reg = ModelRegistry()
        reg.register("m", m1, promote=True)
        seen = []
        reg.add_listener(lambda n, v, a: seen.append((n, v, a)))
        reg.set_reference("m", X)
        assert ("m", 0, "set_reference") in seen

    def test_snapshot_restore_carries_reference(self, setup):
        import pickle

        X, y, m1, _ = setup
        reg = ModelRegistry()
        reg.register("m", m1, promote=True)
        reg.set_reference("m", X, eu=np.arange(5.0))
        blob = pickle.dumps(reg.snapshot())
        replica = ModelRegistry()
        replica.restore(pickle.loads(blob))
        ref = replica.get_reference("m")
        assert np.array_equal(ref.X, X)
        assert np.array_equal(ref.eu, np.arange(5.0))
        # pickling dropped the read-only flag; restore re-froze it
        assert not ref.X.flags.writeable

    def test_restore_with_reference_but_no_versions(self, setup):
        # a snapshot can carry a reference for a name whose every version
        # was unregistered — restore must still rebuild it (worker respawn
        # path), not crash on the missing entry
        import pickle

        X, y, m1, _ = setup
        reg = ModelRegistry()
        reg.register("m", m1)  # never promoted
        reg.set_reference("m", X)
        reg.unregister("m", 1)
        blob = pickle.dumps(reg.snapshot())
        replica = ModelRegistry()
        replica.restore(pickle.loads(blob))
        assert replica.versions("m") == []
        assert np.array_equal(replica.get_reference("m").X, X)

    def test_stage_change_does_not_clear_cache_on_reference(self, setup):
        # set_reference must not invalidate warm prediction caches — it
        # moves no production alias
        X, y, m1, _ = setup
        reg = ModelRegistry()
        reg.register("m", m1, promote=True)
        with ServingGateway(reg, max_batch=4, max_delay=0.05) as gw:
            gw.predict("m", X[0], timeout=5.0)
            hit_before = gw.service("m").cache.invalidations
            reg.set_reference("m", X)
            assert gw.service("m").cache.invalidations == hit_before


# ---------------------------------------------------------------------- #
# stream profile
# ---------------------------------------------------------------------- #
class TestStreamProfile:
    def test_window_clamps(self):
        rng = np.random.default_rng(0)
        ref = rng.normal(0, 1, (100, 3))
        prof = StreamProfile(ref, window=16, min_window=4)
        for row in rng.normal(0, 1, (50, 3)):
            prof.observe(row)
        assert prof.window_fill == 16
        assert prof.n_observed == 50
        assert prof.window().shape == (16, 3)

    def test_window_keeps_most_recent_in_order(self):
        ref = np.arange(60.0).reshape(20, 3)
        prof = StreamProfile(ref, window=8, min_window=1)
        rows = np.arange(90.0).reshape(30, 3)
        for row in rows:
            prof.observe(row)
        assert np.array_equal(prof.window(), rows[-8:])

    def test_block_observe(self):
        rng = np.random.default_rng(1)
        ref = rng.normal(0, 1, (100, 3))
        prof = StreamProfile(ref, window=10, min_window=1)
        prof.observe(rng.normal(0, 1, (25, 3)))  # block larger than window
        assert prof.window_fill == 10
        assert prof.n_observed == 25

    def test_none_below_min_window(self):
        rng = np.random.default_rng(2)
        prof = StreamProfile(rng.normal(0, 1, (100, 3)), window=64, min_window=32)
        for row in rng.normal(0, 1, (31, 3)):
            prof.observe(row)
        assert prof.drift() is None
        prof.observe(rng.normal(0, 1, 3))
        assert prof.drift() is not None

    def test_identical_window_scores_zero(self):
        rng = np.random.default_rng(3)
        ref = rng.normal(0, 1, (64, 4))
        prof = StreamProfile(ref, window=64, min_window=64)
        prof.observe(ref)
        report = prof.drift(ks=True)
        assert np.all(report.psi == 0.0)
        assert np.all(report.ks == 0.0)

    def test_shifted_window_scores_high(self):
        rng = np.random.default_rng(4)
        ref = rng.normal(0, 1, (300, 4))
        prof = StreamProfile(ref, window=128, min_window=64)
        prof.observe(rng.normal(0, 1, (128, 4)) * 2.0 + 1.5)
        report = prof.drift()
        assert report.max_psi > 0.25
        assert report.ks is None  # opt-in only
        worst = report.worst(2)
        assert len(worst) == 2 and worst[0][1] >= worst[1][1]

    def test_wrong_width_refused(self):
        prof = StreamProfile(np.zeros((20, 3)) + np.arange(3), window=8)
        with pytest.raises(ValueError):
            prof.observe(np.zeros(4))


# ---------------------------------------------------------------------- #
# uncertainty tap
# ---------------------------------------------------------------------- #
class TestUncertaintyTap:
    def test_novel_tagging_against_reference_quantile(self):
        rng = np.random.default_rng(0)
        ref_eu = rng.uniform(0, 1, 1000)
        tap = UncertaintyTap(ref_eu, window=64, novel_quantile=0.99)
        assert tap.observe(0.5) == 0
        assert tap.observe(5.0) == 1
        assert tap.n_novel == 1 and tap.n_observed == 2

    def test_window_bounded_and_quantile(self):
        tap = UncertaintyTap(np.linspace(0, 1, 100), window=8)
        tap.observe(np.full(100, 10.0))
        assert tap.window_fill == 8
        assert tap.novel_fraction() == 1.0
        assert tap.window_quantile(0.5) == 10.0

    def test_empty_window_is_defined(self):
        tap = UncertaintyTap(np.ones(10))
        assert tap.novel_fraction() == 0.0
        assert tap.window_quantile() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UncertaintyTap(np.array([]))
        with pytest.raises(ValueError):
            UncertaintyTap(np.ones(10), novel_quantile=1.5)

    def test_epistemic_sample_forest_and_missing(self, setup):
        X, y, m1, _ = setup
        eu = epistemic_sample(m1, X[:10])
        _, var = m1.predict_dist(X[:10])
        assert np.array_equal(eu, np.sqrt(var))
        with pytest.raises(TypeError):
            epistemic_sample(object(), X[:10])


# ---------------------------------------------------------------------- #
# shadow scorer
# ---------------------------------------------------------------------- #
class TestShadowScorer:
    def test_deterministic_mirroring_stride(self, setup):
        X, y, m1, m2 = setup
        reg, v1, v2 = _registry(setup)
        shadow = ShadowScorer(reg, "m", v2, fraction=0.25)
        assert shadow.stride == 4
        for row in X[:40]:
            shadow.on_result("predict", row[None, :], float(m1.predict(row[None, :])[0]))
        assert shadow.report().mirrored == 10

    def test_predict_dist_not_mirrored(self, setup):
        X, y, m1, m2 = setup
        reg, v1, v2 = _registry(setup)
        shadow = ShadowScorer(reg, "m", v2, fraction=1.0)
        shadow.on_result("predict_dist", X[0][None, :], (1.0, 2.0))
        assert shadow.report().mirrored == 0

    def test_challenger_must_be_staged(self, setup):
        reg, v1, v2 = _registry(setup)
        with pytest.raises(ValueError):
            ShadowScorer(reg, "m", v1)  # production version
        with pytest.raises(LookupError):
            ShadowScorer(reg, "m", 99)

    def test_wins_only_with_enough_better_outcomes(self, setup):
        X, y, m1, m2 = setup
        reg = ModelRegistry()
        weak = _forest(X[:60], y[:60], seed=0, trees=3)
        strong = _forest(X, y, seed=1, trees=60)
        reg.register("m", weak, promote=True)
        v2 = reg.register("m", strong)
        shadow = ShadowScorer(reg, "m", v2, fraction=1.0, min_outcomes=20)
        for row, outcome in zip(X[:19], y[:19]):
            shadow.record_outcome(row, outcome)
        assert not shadow.report().challenger_wins  # below min evidence
        for row, outcome in zip(X[19:80], y[19:80]):
            shadow.record_outcome(row, outcome)
        rep = shadow.report()
        assert rep.challenger_error < rep.champion_error
        assert rep.challenger_wins

    def test_disagreement_windowed(self, setup):
        X, y, m1, m2 = setup
        reg, v1, v2 = _registry(setup)
        shadow = ShadowScorer(reg, "m", v2, fraction=1.0, window=8)
        for row in X[:30]:
            shadow.on_result("predict", row[None, :], float(m1.predict(row[None, :])[0]))
        rep = shadow.report()
        assert rep.mirrored == 30            # lifetime count
        assert rep.disagreement_mean >= 0.0  # windowed mean over last 8


# ---------------------------------------------------------------------- #
# policy engine
# ---------------------------------------------------------------------- #
class TestPolicyEngine:
    def _state(self, reg, profile=None, tap=None, shadow=None):
        return NameState(name="m", registry=reg, profile=profile, tap=tap, shadow=shadow)

    def test_alert_records_without_touching_registry(self, setup):
        X, *_ = setup
        reg, v1, v2 = _registry(setup)
        reg.promote("m", v2)
        prof = StreamProfile(X, window=64, min_window=32)
        prof.observe(X[:64] * 3.0 + 2.0)
        clock = [100.0]
        engine = PolicyEngine(reg, clock=lambda: clock[0], cooldown_s=10.0)
        engine.add_rule(PsiThresholdRule(threshold=0.25, action="alert"))
        fired = engine.evaluate(self._state(reg, profile=prof))
        assert len(fired) == 1 and fired[0].action == "alert" and fired[0].at == 100.0
        assert reg.production_version("m") == v2  # untouched

    def test_rollback_executes_and_cooldown_holds(self, setup):
        X, *_ = setup
        reg, v1, v2 = _registry(setup)
        reg.promote("m", v2)
        prof = StreamProfile(X, window=64, min_window=32)
        prof.observe(X[:64] * 3.0 + 2.0)
        clock = [0.0]
        engine = PolicyEngine(reg, clock=lambda: clock[0], cooldown_s=30.0)
        engine.add_rule(PsiThresholdRule(threshold=0.25, action="rollback"))
        state = self._state(reg, profile=prof)
        fired = engine.evaluate(state)
        assert [e.action for e in fired] == ["rollback"]
        assert reg.production_version("m") == v1
        # still drifted, but inside the cooldown: no second firing
        assert engine.evaluate(state) == []
        clock[0] = 31.0  # cooldown expired; fires again (and fails loudly:
        # no rollback history left — recorded, not raised)
        fired = engine.evaluate(state)
        assert [e.action for e in fired] == ["rollback-failed"]
        assert reg.production_version("m") == v1

    def test_rule_scoping_by_name(self, setup):
        reg, v1, v2 = _registry(setup)
        engine = PolicyEngine(reg, clock=lambda: 0.0)
        rule = PsiThresholdRule()
        engine.add_rule(rule, names=["other"])
        assert engine.rules_for("m") == []
        assert engine.rules_for("other") == [rule]

    def test_eu_quantile_rule(self):
        reg = ModelRegistry()
        tap = UncertaintyTap(np.linspace(0, 1.0, 200), window=128)
        rule = EuQuantileRule(factor=3.0, min_window=16)
        state = NameState(name="m", registry=reg, tap=tap)
        tap.observe(np.full(20, 0.5))
        assert rule(state) is None          # in-distribution EU
        tap.observe(np.full(128, 50.0))     # the window explodes
        action, value, detail = rule(state)
        assert action == "alert" and value > 3.0 * tap.reference_threshold

    def test_shadow_winner_promotes_through_registry(self, setup):
        X, y, *_ = setup
        reg = ModelRegistry()
        weak = _forest(X[:60], y[:60], seed=0, trees=3)
        strong = _forest(X, y, seed=1, trees=60)
        reg.register("m", weak, promote=True)
        v2 = reg.register("m", strong)
        shadow = ShadowScorer(reg, "m", v2, fraction=1.0, min_outcomes=10)
        for row, outcome in zip(X[:40], y[:40]):
            shadow.record_outcome(row, outcome)
        engine = PolicyEngine(reg, clock=lambda: 0.0)
        engine.add_rule(ShadowWinnerRule())
        fired = engine.evaluate(NameState(name="m", registry=reg, shadow=shadow))
        assert [e.action for e in fired] == ["promote"]
        assert reg.production_version("m") == v2

    def test_events_bounded(self, setup):
        reg, v1, v2 = _registry(setup)
        engine = PolicyEngine(reg, clock=lambda: 0.0, max_events=4)
        engine.events.extend(range(10))
        assert len(engine.events) == 4

    def test_bad_rule_config_refused(self):
        with pytest.raises(ValueError):
            PsiThresholdRule(action="explode")
        with pytest.raises(ValueError):
            EuQuantileRule(factor=0.5)


# ---------------------------------------------------------------------- #
# the plane over a live gateway
# ---------------------------------------------------------------------- #
class TestMonitoringPlaneGateway:
    def test_monitored_bit_identical_and_detects_drift(self, setup):
        X, y, m1, m2 = setup
        rng = np.random.default_rng(7)
        rows = rng.normal(0, 1, (200, X.shape[1]))
        drifted = rows * 2.0 + 1.5

        reg, v1, v2 = _registry(setup)
        reg.promote("m", v2)
        clock = [0.0]
        plane = MonitoringPlane(reg, clock=lambda: clock[0], window=128,
                                min_window=128, eval_every=32, cooldown_s=1e9)
        plane.watch("m")
        # threshold above full-window sampling noise (~0.2 at 128 rows),
        # far below the injected shift's score (> 2)
        plane.add_rule(PsiThresholdRule(threshold=0.5, action="rollback"))

        with ServingGateway(reg, max_batch=32, max_delay=0.05) as gw:
            plane.attach(gw)
            tickets = [gw.submit("m", r) for r in rows]
            gw.flush()
            monitored = np.array([t.result(10.0) for t in tickets])
            assert not plane.events  # in-distribution: no firing

            for r in drifted:
                gw.predict("m", r, timeout=10.0)
            assert [e.action for e in plane.events] == ["rollback"]
            assert reg.production_version("m") == v1
            assert gw.tap_errors == 0

        # the same stream through an unmonitored gateway (against the same
        # production version) is bit-identical
        reg2 = ModelRegistry()
        reg2.register("m", m2, promote=True)
        with ServingGateway(reg2, max_batch=32, max_delay=0.05) as gw2:
            tickets = [gw2.submit("m", r) for r in rows]
            gw2.flush()
            plain = np.array([t.result(10.0) for t in tickets])
        assert np.array_equal(monitored, plain)

    def test_raising_tap_never_breaks_serving(self, setup):
        X, y, m1, _ = setup
        reg = ModelRegistry()
        reg.register("m", m1, promote=True)

        class BadTap:
            def on_request(self, name, row, kind):
                raise RuntimeError("boom")

            def on_result(self, name, kind, block, value):
                raise RuntimeError("boom")

        with ServingGateway(reg, max_batch=8, max_delay=0.05) as gw:
            gw.add_tap(BadTap())
            tickets = [gw.submit("m", r) for r in X[:20]]
            gw.flush()
            got = np.array([t.result(10.0) for t in tickets])
            # the serve layer's invariant is per-request parity: each
            # answer equals a direct single-row predict
            direct = np.array([float(m1.predict(r[None, :])[0]) for r in X[:20]])
            assert np.array_equal(got, direct)
            assert gw.tap_errors == 40  # 20 requests + 20 results, all swallowed

    def test_remove_tap_stops_observation(self, setup):
        X, y, m1, _ = setup
        reg = ModelRegistry()
        reg.register("m", m1, promote=True)
        reg.set_reference("m", X)
        plane = MonitoringPlane(reg, eval_every=10**9)
        plane.watch("m")
        with ServingGateway(reg, max_batch=8, max_delay=0.05) as gw:
            plane.attach(gw)
            gw.predict("m", X[0], timeout=5.0)
            plane.detach()
            gw.predict("m", X[1], timeout=5.0)
        assert plane.status()["m"]["n_observed"] == 1

    def test_eu_tap_sees_predict_dist_results(self, setup):
        X, y, m1, _ = setup
        reg = ModelRegistry()
        reg.register("m", m1, promote=True)
        reg.set_reference("m", X, eu=epistemic_sample(m1, X))
        plane = MonitoringPlane(reg, eval_every=10**9)
        plane.watch("m")
        with ServingGateway(reg, max_batch=4, max_delay=0.05) as gw:
            plane.attach(gw)
            for r in X[:8]:
                gw.predict_dist("m", r, timeout=5.0)
        status = plane.status()["m"]
        assert status["eu_observed"] == 8
        assert status["eu_novel_fraction"] <= 0.05  # in-distribution jobs

    def test_watch_requires_a_reference(self, setup):
        X, y, m1, _ = setup
        reg = ModelRegistry()
        reg.register("m", m1, promote=True)
        plane = MonitoringPlane(reg)
        with pytest.raises(ValueError):
            plane.watch("m")

    def test_shadow_promote_via_live_traffic(self, setup):
        X, y, *_ = setup
        reg = ModelRegistry()
        weak = _forest(X[:60], y[:60], seed=0, trees=3)
        strong = _forest(X, y, seed=1, trees=60)
        reg.register("m", weak, promote=True)
        reg.set_reference("m", X)
        v2 = reg.register("m", strong)
        plane = MonitoringPlane(reg, clock=lambda: 0.0, eval_every=10**9,
                                cooldown_s=0.0)
        plane.watch("m")
        shadow = plane.shadow("m", v2, fraction=0.5, min_outcomes=20)
        plane.add_rule(ShadowWinnerRule())
        with ServingGateway(reg, max_batch=16, max_delay=0.05) as gw:
            plane.attach(gw)
            tickets = [gw.submit("m", r) for r in X[:60]]
            gw.flush()
            for t in tickets:
                t.result(10.0)
            assert shadow.report().mirrored == 30
            for row, outcome in zip(X[:40], y[:40]):
                plane.record_outcome("m", row, outcome)
            fired = plane.evaluate("m")
            assert [e.action for e in fired] == ["promote"]
            assert reg.production_version("m") == v2
            # the settled shadow is retired — no re-firing forever after
            assert plane.state("m").shadow is None

    def test_wants_results_reflects_consumers(self, setup):
        X, y, m1, _ = setup
        reg = ModelRegistry()
        reg.register("m", m1, promote=True)
        v2 = reg.register("m", _forest(X, y, seed=3))
        plane = MonitoringPlane(reg)
        plane.watch("m", reference=X)          # drift-only
        assert not plane.wants_results()
        with ServingGateway(reg, max_batch=8, max_delay=0.05) as gw:
            plane.attach(gw)
            assert gw._result_taps == ()       # dispatch skipped entirely
            plane.shadow("m", v2, fraction=1.0)
            assert plane.wants_results()
            assert len(gw._result_taps) == 1   # re-attached automatically


# ---------------------------------------------------------------------- #
# the plane over a sharded cluster: detection propagates fleet-wide
# ---------------------------------------------------------------------- #
@pytest.mark.shard
class TestMonitoringPlaneCluster:
    def test_psi_rollback_propagates_to_every_shard(self, setup):
        X, y, m1, m2 = setup
        rng = np.random.default_rng(9)
        drifted = rng.normal(0, 1, (160, X.shape[1])) * 2.0 + 1.5

        reg = ModelRegistry()
        v1 = reg.register("m", m1, promote=True)
        reg.set_reference("m", X)
        v2 = reg.register("m", m2)

        with ShardedServingCluster(
            reg, n_shards=2, route="replicated", max_batch=16, max_delay=0.05,
        ) as cluster:
            reg.promote("m", v2)  # broadcast: every shard serves v2
            plane = MonitoringPlane(reg, window=128, min_window=64,
                                    eval_every=32, cooldown_s=1e9)
            plane.watch("m")
            plane.add_rule(PsiThresholdRule(threshold=0.25, action="rollback"))
            plane.attach(cluster)

            for r in drifted:
                cluster.predict("m", r, timeout=30.0)
            assert [e.action for e in plane.events] == ["rollback"]
            assert reg.production_version("m") == v1
            assert cluster.tap_errors == 0

            # ack-gated: the rollback broadcast returned before the event
            # was recorded, so every shard must already serve v1 — witness
            # each one with a probe (replicated round-robin hits both)
            probe = X[0]
            expect = float(m1.predict(probe[None, :])[0])
            shards_seen = set()
            for _ in range(8):
                ticket = cluster.submit("m", probe)
                shards_seen.add(ticket.shard_id)
                assert ticket.result(30.0) == expect
            assert shards_seen == {0, 1}

    def test_set_reference_broadcast_and_respawn(self, setup):
        import pickle

        from repro.serve.shard import _apply_control

        X, y, m1, _ = setup
        reg = ModelRegistry()
        reg.register("m", m1, promote=True)
        with ShardedServingCluster(reg, n_shards=2, max_batch=8) as cluster:
            # live broadcast: the mutating call returns only after every
            # worker acked the new baseline
            reg.set_reference("m", X, eu=np.ones(4))
            # a replica applies the same control message idempotently
            replica = ModelRegistry()
            replica.register("m", pickle.loads(pickle.dumps(m1)), version=1)
            payload = pickle.dumps(reg.get_reference("m"))
            _apply_control(replica, "set_reference", "m", payload)
            _apply_control(replica, "set_reference", "m", payload)  # replay
            ref = replica.get_reference("m")
            assert np.array_equal(ref.X, X) and not ref.X.flags.writeable
            # a respawned worker warm-starts from a snapshot that already
            # carries the reference
            cluster.kill_shard(0)
            assert cluster.respawn() == 1
            assert cluster.predict("m", X[0], timeout=30.0) == pytest.approx(
                float(m1.predict(X[0][None, :])[0])
            )
