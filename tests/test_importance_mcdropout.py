"""Tests for model interpretation tools and MC-dropout uncertainty."""

import numpy as np
import pytest

from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.importance import LocalSurrogate, partial_dependence, permutation_importance
from repro.ml.linear import RidgeRegression
from repro.ml.mcdropout import MCDropoutRegressor


def _toy(n=600, d=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0.0, 1.0, (n, d))
    y = 2.0 * X[:, 0] + 0.5 * X[:, 1] + rng.normal(0.0, 0.05, n)
    return X, y


@pytest.fixture(scope="module")
def fitted():
    X, y = _toy()
    model = GradientBoostingRegressor(n_estimators=80, max_depth=4, loss="squared").fit(X, y)
    return model, X, y


class TestPermutationImportance:
    def test_signal_features_dominate(self, fitted):
        model, X, y = fitted
        imp = permutation_importance(model, X.copy(), y, n_repeats=3)
        assert imp[0] > imp[2]
        assert imp[0] > 5.0 * max(np.abs(imp[2:]).max(), 1e-9)

    def test_does_not_mutate_input(self, fitted):
        model, X, y = fitted
        X_copy = X.copy()
        permutation_importance(model, X_copy, y, n_repeats=2)
        np.testing.assert_array_equal(X_copy, X)

    def test_deterministic_given_seed(self, fitted):
        model, X, y = fitted
        i1 = permutation_importance(model, X.copy(), y, n_repeats=2, random_state=5)
        i2 = permutation_importance(model, X.copy(), y, n_repeats=2, random_state=5)
        np.testing.assert_array_equal(i1, i2)

    def test_rejects_zero_repeats(self, fitted):
        model, X, y = fitted
        with pytest.raises(ValueError):
            permutation_importance(model, X, y, n_repeats=0)


class TestPartialDependence:
    def test_recovers_linear_slope_direction(self, fitted):
        model, X, _ = fitted
        grid, pd0 = partial_dependence(model, X, feature=0)
        assert pd0[-1] > pd0[0]  # positive coefficient on feature 0
        assert grid.shape == pd0.shape

    def test_flat_for_noise_feature(self, fitted):
        model, X, _ = fitted
        _, pd0 = partial_dependence(model, X, feature=0)
        _, pd5 = partial_dependence(model, X, feature=5)
        assert (pd5.max() - pd5.min()) < 0.25 * (pd0.max() - pd0.min())

    def test_explicit_grid(self, fitted):
        model, X, _ = fitted
        grid = np.array([-1.0, 0.0, 1.0])
        got, vals = partial_dependence(model, X, feature=0, grid=grid)
        np.testing.assert_array_equal(got, grid)
        assert vals.shape == (3,)

    def test_bad_feature_index_raises(self, fitted):
        model, X, _ = fitted
        with pytest.raises(IndexError):
            partial_dependence(model, X, feature=99)


class TestLocalSurrogate:
    def test_explains_linear_model_exactly(self):
        X, y = _toy()
        model = RidgeRegression(alpha=1e-6).fit(X, y)
        exp = LocalSurrogate(n_keep=6, random_state=0).explain(model, X, X[0])
        top = dict(zip(exp.feature_idx.tolist(), exp.weights.tolist()))
        # local weights ≈ global slope * feature scale (scale ≈ 1 here)
        assert top[0] == pytest.approx(2.0, abs=0.2)
        assert exp.local_r2 > 0.95

    def test_fidelity_reported_for_nonlinear_model(self, fitted):
        model, X, _ = fitted
        exp = LocalSurrogate(random_state=0).explain(model, X, X[3])
        assert -1.0 <= exp.local_r2 <= 1.0
        assert np.isfinite(exp.prediction)

    def test_top_names(self, fitted):
        model, X, _ = fitted
        exp = LocalSurrogate(n_keep=4).explain(model, X, X[0])
        names = [f"f{i}" for i in range(X.shape[1])]
        pairs = exp.top(names, k=2)
        assert len(pairs) == 2
        assert all(isinstance(nm, str) for nm, _ in pairs)

    def test_anchor_dimension_mismatch_raises(self, fitted):
        model, X, _ = fitted
        with pytest.raises(ValueError):
            LocalSurrogate().explain(model, X, np.zeros(3))


class TestMCDropout:
    @pytest.fixture(scope="class")
    def model(self):
        X, y = _toy(n=500)
        # small batches: Adam needs ~1k steps to converge at this scale
        m = MCDropoutRegressor(
            hidden=(64,), dropout=0.15, epochs=150, batch_size=64, n_passes=12
        ).fit(X, y)
        return m, X, y

    def test_prediction_quality(self, model):
        m, X, y = model
        mae = np.mean(np.abs(m.predict(X) - y))
        assert mae < 0.6

    def test_decomposition_shapes_and_signs(self, model):
        m, X, _ = model
        dec = m.decompose(X[:50])
        assert dec.mean.shape == (50,)
        assert np.all(dec.aleatory >= 0.0)
        assert np.all(dec.epistemic >= 0.0)

    def test_epistemic_nonzero_with_dropout(self, model):
        m, X, _ = model
        dec = m.decompose(X[:100])
        assert np.median(dec.epistemic) > 0.0

    def test_epistemic_grows_off_distribution(self, model):
        m, X, _ = model
        eu_in = m.decompose(X[:100]).epistemic
        eu_out = m.decompose(X[:100] + 10.0).epistemic
        assert np.median(eu_out) > np.median(eu_in)

    def test_rejects_zero_dropout(self):
        with pytest.raises(ValueError):
            MCDropoutRegressor(dropout=0.0)

    def test_rejects_single_pass(self):
        with pytest.raises(ValueError):
            MCDropoutRegressor(n_passes=1)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MCDropoutRegressor().predict(np.zeros((3, 2)))
